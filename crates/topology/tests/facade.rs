//! Graphs through the unified `Simulation` facade.

use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_sim::convergence::ConvergenceCriterion;
use fet_sim::engine::Fidelity;
use fet_sim::init::InitialCondition;
use fet_sim::observer::NullObserver;
use fet_sim::simulation::Simulation;
use fet_stats::rng::SeedTree;
use fet_topology::builders;
use fet_topology::engine::TopologyEngine;

#[test]
fn expander_converges_through_the_facade() {
    let mut rng = SeedTree::new(1).child("facade-graph").rng();
    let graph = builders::random_regular(300, 24, &mut rng).unwrap();
    let mut sim = Simulation::builder()
        .topology(graph)
        .seed(7)
        .stability_window(5)
        .max_rounds(20_000)
        .build()
        .unwrap();
    let report = sim.run();
    assert!(report.converged(), "{report:?}");
    assert_eq!(report.n, 300);
    assert_eq!(
        report.fidelity,
        Fidelity::Agent,
        "topology implies agent fidelity"
    );
    assert_eq!(report.report.final_fraction_correct, 1.0);
}

#[test]
fn facade_agrees_with_the_legacy_topology_engine() {
    // Same graph, same protocol family: both executions must converge and
    // stabilize at all-correct (streams differ; outcomes agree).
    let mut rng = SeedTree::new(2).child("facade-vs-legacy").rng();
    let graph = builders::erdos_renyi(250, 0.2, &mut rng).unwrap();
    let protocol = FetProtocol::for_population(250, 4.0).unwrap();
    let mut legacy = TopologyEngine::new(
        protocol,
        graph.clone(),
        1,
        Opinion::One,
        InitialCondition::AllWrong,
        13,
    )
    .unwrap();
    let legacy_report = legacy.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
    let mut facade = Simulation::builder()
        .topology(graph)
        .seed(13)
        .stability_window(5)
        .max_rounds(20_000)
        .build()
        .unwrap();
    let facade_report = facade.run();
    assert!(legacy_report.converged() && facade_report.converged());
    assert_eq!(
        legacy_report.final_fraction_correct,
        facade_report.report.final_fraction_correct
    );
}

#[test]
fn star_freeze_reproduces_through_the_facade() {
    // The E18 negative finding must survive the migration: a hub source
    // delivers unanimous observations, FET reads no trend, ties freeze.
    let graph = builders::star(400).unwrap();
    let mut sim = Simulation::builder()
        .topology(graph)
        .seed(19)
        .stability_window(5)
        .max_rounds(2_000)
        .build()
        .unwrap();
    let report = sim.run();
    assert!(
        !report.converged(),
        "star hub-source should freeze: {report:?}"
    );
    let frac = sim.fraction_correct();
    assert!(frac > 0.0 && frac < 1.0, "frozen fraction = {frac}");
}

#[test]
fn topology_with_aggregate_fidelity_is_rejected() {
    let graph = builders::complete(50).unwrap();
    let err = Simulation::builder()
        .topology(graph)
        .fidelity(Fidelity::Aggregate)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("complete graph only"), "{err}");
}

#[test]
fn topology_with_binomial_fidelity_is_rejected_in_any_order() {
    let graph = builders::complete(50).unwrap();
    let err = Simulation::builder()
        .fidelity(Fidelity::Binomial)
        .topology(graph)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("neighbor sampling is literal"),
        "{err}"
    );
}

#[test]
fn population_topology_mismatch_is_rejected() {
    let graph = builders::complete(50).unwrap();
    let err = Simulation::builder()
        .population(60)
        .topology(graph)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("disagrees with the topology"),
        "{err}"
    );
}
