//! Error type for graph construction and the topology engine.

use std::error::Error;
use std::fmt;

/// Errors produced by `fet-topology`.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A graph parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// An edge referenced a vertex outside `[0, n)`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: u32,
    },
    /// The graph contains an isolated vertex, which cannot observe anyone
    /// under the PULL model and therefore cannot run any protocol.
    IsolatedVertex {
        /// The isolated vertex id.
        vertex: u32,
    },
    /// A randomized generator exhausted its retry budget (the
    /// configuration-model pairing for random-regular graphs can collide).
    GenerationFailed {
        /// Which generator failed.
        generator: &'static str,
        /// Number of attempts made.
        attempts: u32,
    },
    /// A configuration error bubbled up from `fet-sim`.
    Sim(fet_sim::SimError),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            TopologyError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph on {n} vertices")
            }
            TopologyError::IsolatedVertex { vertex } => {
                write!(
                    f,
                    "vertex {vertex} is isolated and cannot observe any agent"
                )
            }
            TopologyError::GenerationFailed {
                generator,
                attempts,
            } => {
                write!(
                    f,
                    "generator `{generator}` failed after {attempts} attempts"
                )
            }
            TopologyError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for TopologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopologyError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fet_sim::SimError> for TopologyError {
    fn from(e: fet_sim::SimError) -> Self {
        TopologyError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        let cases: Vec<TopologyError> = vec![
            TopologyError::InvalidParameter {
                name: "p",
                detail: "must be in [0, 1]".into(),
            },
            TopologyError::VertexOutOfRange { vertex: 9, n: 5 },
            TopologyError::IsolatedVertex { vertex: 3 },
            TopologyError::GenerationFailed {
                generator: "random_regular",
                attempts: 100,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }

    #[test]
    fn sim_error_wraps_with_source() {
        let e = TopologyError::from(fet_sim::SimError::InvalidParameter {
            name: "states",
            detail: "mismatch".into(),
        });
        assert!(Error::source(&e).is_some());
    }
}
