//! The neighbor-sampling round engine.
//!
//! A thin, typed wrapper over `fet_sim::engine::Engine::with_neighborhood`:
//! an agent at vertex `v` samples (with replacement) from `neighbors(v)`
//! instead of the whole population. The round mechanics live in `fet-sim`
//! and are selected by `fet_sim::engine::ExecutionMode` exactly as on the
//! complete graph: by default (`Auto`) a graph round executes as a
//! **fused single pass** — each agent's observation is drawn on demand
//! from its neighbors' round-start opinions (a persistent double buffer —
//! ~1 byte/agent on the typed representation this engine uses, 1
//! bit/agent when the `Simulation` facade resolves bit-plane storage),
//! the update applied, the output written in place — and
//! the buffered batched pipeline remains available via
//! [`TopologyEngine::set_execution_mode`] (or `--mode batched`) as the
//! A/B reference. Work-sharded parallel graph rounds
//! (`ExecutionMode::FusedParallel`) split the vertex range into
//! contiguous shards over the `Arc`-shared adjacency. This type only adds
//! the graph-typed construction, accessors, and `TopologyError`
//! reporting. On the complete graph this engine and the flat engine
//! coincide up to the excluded self-sample — agents here never observe
//! themselves, exactly as in the paper where a sample of "other agents"
//! is drawn (§1.2).
//!
//! Sources occupy vertices `[0, num_sources)`; use
//! [`crate::graph::Graph::with_swapped`] to place the source on a
//! structurally interesting vertex first. New code should prefer
//! `fet_sim::simulation::Simulation::builder().topology(graph)`, which
//! reaches the same engine.

use crate::error::TopologyError;
use crate::graph::Graph;
use fet_core::opinion::Opinion;
use fet_core::protocol::Protocol;
use fet_sim::convergence::{ConvergenceCriterion, ConvergenceReport};
use fet_sim::engine::{Engine, ExecutionMode};
use fet_sim::init::InitialCondition;
use fet_sim::observer::RoundObserver;
use std::sync::Arc;

/// A population of agents running one protocol on an explicit graph.
///
/// # Example
///
/// ```
/// use fet_core::fet::FetProtocol;
/// use fet_core::opinion::Opinion;
/// use fet_sim::convergence::ConvergenceCriterion;
/// use fet_sim::init::InitialCondition;
/// use fet_sim::observer::NullObserver;
/// use fet_topology::builders;
/// use fet_topology::engine::TopologyEngine;
///
/// // FET still self-stabilizes when each agent only sees a random
/// // 16-regular neighborhood instead of the full population.
/// let mut rng = fet_stats::rng::SeedTree::new(1).rng();
/// let graph = builders::random_regular(300, 16, &mut rng)?;
/// let proto = FetProtocol::for_population(300, 4.0)?;
/// let mut engine = TopologyEngine::new(
///     proto, graph, 1, Opinion::One, InitialCondition::AllWrong, 7,
/// )?;
/// let report = engine.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyEngine<P: Protocol + std::fmt::Debug + Send + Sync> {
    /// The adjacency structure, shared with the inner engine's boxed
    /// `Neighborhood` (and with every engine clone) behind an `Arc`: the
    /// CSR arrays exist once, however many handles read them.
    graph: Arc<Graph>,
    inner: Engine<P>,
}

impl<P: Protocol + std::fmt::Debug + Send + Sync> TopologyEngine<P> {
    /// Creates an engine on `graph` with sources at vertices
    /// `[0, num_sources)`, non-source opinions drawn from `init`, and
    /// internal variables randomized by the protocol.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::IsolatedVertex`] when some vertex has no
    ///   neighbors to observe.
    /// * [`TopologyError::InvalidParameter`] when `num_sources` is zero or
    ///   not smaller than the number of vertices.
    pub fn new(
        protocol: P,
        graph: Graph,
        num_sources: u32,
        correct: Opinion,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, TopologyError> {
        graph.ensure_no_isolated_vertex()?;
        let n = graph.n();
        if num_sources == 0 || num_sources >= n {
            return Err(TopologyError::InvalidParameter {
                name: "num_sources",
                detail: format!("need 1 ≤ num_sources < n = {n}, got {num_sources}"),
            });
        }
        let graph = Arc::new(graph);
        let inner = Engine::with_neighborhood(
            protocol,
            Box::new(crate::graph::SharedGraph::new(Arc::clone(&graph))),
            num_sources,
            correct,
            init,
            seed,
        )
        .map_err(|e| TopologyError::InvalidParameter {
            name: "engine",
            detail: e.to_string(),
        })?;
        Ok(TopologyEngine { graph, inner })
    }

    /// Selects which round implementation executes graph rounds (default
    /// [`ExecutionMode::Auto`], which resolves to the fused single pass —
    /// see [`Engine::set_execution_mode`] for the stream caveat).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Sim`] for
    /// [`ExecutionMode::FusedParallel`] with zero threads or a protocol
    /// that opts out of parallel sharding. (Graph runs accept the whole
    /// fused family; only the complete-graph literal fidelity — which
    /// this engine never uses — rejects it.)
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) -> Result<(), TopologyError> {
        Ok(self.inner.set_execution_mode(mode)?)
    }

    /// The configured execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.inner.execution_mode()
    }

    /// Bytes of auxiliary round buffers currently allocated (see
    /// [`Engine::round_scratch_bytes`]): graph-fused rounds keep exactly
    /// the persistent ~1 byte/agent opinion double buffer, batched graph
    /// rounds add the observation/output scratch on top.
    pub fn round_scratch_bytes(&self) -> usize {
        self.inner.round_scratch_bytes()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        self.inner.protocol()
    }

    /// Current round index (0 before any [`TopologyEngine::step`]).
    pub fn round(&self) -> u64 {
        self.inner.round()
    }

    /// The correct opinion of the instance.
    pub fn correct(&self) -> Opinion {
        self.inner.correct()
    }

    /// The paper's `x_t`: fraction of all agents (sources included)
    /// currently outputting opinion 1.
    pub fn fraction_ones(&self) -> f64 {
        self.inner.fraction_ones()
    }

    /// Fraction of non-source agents whose decision equals the correct
    /// opinion.
    pub fn fraction_correct(&self) -> f64 {
        self.inner.fraction_correct()
    }

    /// `true` when every non-source agent decides correctly.
    pub fn all_correct(&self) -> bool {
        self.inner.all_correct()
    }

    /// Public outputs of all agents (vertex id order; `< num_sources` are
    /// sources).
    pub fn outputs(&self) -> &[Opinion] {
        self.inner.outputs()
    }

    /// Executes one synchronous round.
    pub fn step(&mut self) {
        self.inner.step()
    }

    /// Runs until convergence is confirmed or `max_rounds` have executed.
    ///
    /// The observer receives round 0 (the initial configuration) and every
    /// round thereafter.
    pub fn run<O: RoundObserver + ?Sized>(
        &mut self,
        max_rounds: u64,
        criterion: ConvergenceCriterion,
        observer: &mut O,
    ) -> ConvergenceReport {
        self.inner.run(max_rounds, criterion, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use fet_core::fet::FetProtocol;
    use fet_sim::observer::{NullObserver, TrajectoryRecorder};

    #[test]
    fn rejects_isolated_vertex() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let p = FetProtocol::new(4).unwrap();
        let err = TopologyEngine::new(p, g, 1, Opinion::One, InitialCondition::AllWrong, 1);
        assert!(matches!(
            err,
            Err(TopologyError::IsolatedVertex { vertex: 2 })
        ));
    }

    #[test]
    fn rejects_bad_source_count() {
        let g = builders::complete(5).unwrap();
        let p = FetProtocol::new(4).unwrap();
        for bad in [0u32, 5, 6] {
            let err = TopologyEngine::new(
                p.clone(),
                g.clone(),
                bad,
                Opinion::One,
                InitialCondition::AllWrong,
                1,
            );
            assert!(
                matches!(err, Err(TopologyError::InvalidParameter { .. })),
                "{bad}"
            );
        }
    }

    #[test]
    fn complete_graph_converges_like_flat_engine() {
        let g = builders::complete(300).unwrap();
        let p = FetProtocol::for_population(300, 4.0).unwrap();
        let mut e =
            TopologyEngine::new(p, g, 1, Opinion::One, InitialCondition::AllWrong, 11).unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        assert_eq!(report.final_fraction_correct, 1.0);
    }

    #[test]
    fn converged_state_is_absorbing_on_graphs() {
        let mut rng = fet_stats::rng::SeedTree::new(5).rng();
        let g = builders::random_regular(200, 24, &mut rng).unwrap();
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e =
            TopologyEngine::new(p, g, 1, Opinion::One, InitialCondition::AllWrong, 13).unwrap();
        let report = e.run(40_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        for _ in 0..200 {
            e.step();
            assert!(
                e.all_correct(),
                "absorbing state violated at round {}",
                e.round()
            );
        }
    }

    #[test]
    fn correct_zero_converges_to_zero() {
        let g = builders::complete(200).unwrap();
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e =
            TopologyEngine::new(p, g, 1, Opinion::Zero, InitialCondition::AllWrong, 17).unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        assert_eq!(e.fraction_ones(), 0.0);
    }

    #[test]
    fn star_with_hub_source_freezes_ties() {
        // Leaves observe only the (source) hub: every sample is unanimous,
        // so from round 1 on each leaf's two half-counts tie at ℓ and FET
        // keeps whatever opinion the first round left it with. The first
        // round itself *can* flip leaves whose arbitrary stale count is
        // below ℓ, so the fraction of correct leaves rises once and then
        // freezes — but all-correct consensus is never reached w.h.p.
        let n = 400u32;
        let g = builders::star(n).unwrap();
        let p = FetProtocol::for_population(u64::from(n), 4.0).unwrap();
        let mut e =
            TopologyEngine::new(p, g, 1, Opinion::One, InitialCondition::AllWrong, 19).unwrap();
        let report = e.run(2_000, ConvergenceCriterion::new(5), &mut NullObserver);
        assert!(
            !report.converged(),
            "star hub-source should freeze, got {report:?}"
        );
        // The frozen fraction is strictly between 0 and 1 (some leaves
        // flipped in round 1, some tied and kept the wrong opinion).
        let frac = e.fraction_correct();
        assert!(frac > 0.0 && frac < 1.0, "frozen fraction = {frac}");
        // Frozen means frozen: further rounds change nothing.
        let before = e.fraction_correct();
        for _ in 0..100 {
            e.step();
        }
        assert_eq!(e.fraction_correct(), before);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut rng = fet_stats::rng::SeedTree::new(3).rng();
            let g = builders::erdos_renyi(150, 0.2, &mut rng).unwrap();
            let p = FetProtocol::new(8).unwrap();
            let mut e =
                TopologyEngine::new(p, g, 1, Opinion::One, InitialCondition::Random, seed).unwrap();
            let mut rec = TrajectoryRecorder::new();
            e.run(300, ConvergenceCriterion::new(2), &mut rec);
            rec.into_fractions()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn observer_sees_initial_round() {
        let g = builders::complete(50).unwrap();
        let p = FetProtocol::new(6).unwrap();
        let mut e =
            TopologyEngine::new(p, g, 1, Opinion::One, InitialCondition::Random, 23).unwrap();
        let mut rec = TrajectoryRecorder::new();
        let report = e.run(50, ConvergenceCriterion::new(2), &mut rec);
        assert_eq!(rec.fractions().len() as u64, report.rounds_run + 1);
    }
}
