//! # fet-topology — PULL protocols on non-complete graphs
//!
//! The paper (§1.2) assumes a *fully-connected* population: every agent
//! samples uniformly from everyone. This crate relaxes that assumption so
//! the workspace can measure which topological properties FET's
//! trend-following actually needs (experiment E18, a §5-style extension):
//!
//! * [`graph`] — simple undirected graphs in CSR form, with degree /
//!   connectivity / diameter metrics ([`graph::GraphStats`]).
//! * [`builders`] — generators bracketing the complete graph: `K_n`
//!   itself, sparse expanders (Erdős–Rényi, random-regular), the tunable
//!   Watts–Strogatz family, and pathological extremes (ring, star,
//!   barbell).
//! * [`engine`] — [`engine::TopologyEngine`], a drop-in analogue of
//!   `fet_sim::engine::Engine` where each agent samples (with
//!   replacement) from its *neighbors*.
//!
//! ## What E18 finds
//!
//! FET keeps self-stabilizing on graphs that are *locally well-mixed with
//! enough degree* — dense Erdős–Rényi, random `d`-regular with
//! `d = Θ(log n)` — because each agent's observed count still
//! concentrates around a neighborhood average that tracks the global
//! `x_t`. Fixed degree does **not** scale: a degree-16 small world
//! converges at `n = 256` but stalls at `n = 2000` in a quenched
//! disordered state (each agent's neighborhood average is frozen noise
//! decoupled from the global trend). The star with the source at the hub
//! freezes outright — unanimous observations carry no trend, so ties lock
//! round-1 opinions — and bisection bottlenecks (barbell) slow the spread.
//! The star result is a crisp illustration of the mechanism: FET consumes
//! *temporal differences* of observations, so an observation stream with
//! no variance carries no information.
//!
//! # Example
//!
//! ```
//! use fet_stats::rng::SeedTree;
//! use fet_topology::builders;
//!
//! let mut rng = SeedTree::new(1).rng();
//! let graph = builders::random_regular(256, 16, &mut rng)?;
//! assert!(graph.is_connected());
//! assert_eq!(graph.min_degree(), 16);
//! assert_eq!(graph.max_degree(), 16);
//! # Ok::<(), fet_topology::error::TopologyError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod builders;
pub mod engine;
pub mod error;
pub mod graph;

pub use error::TopologyError;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::builders;
    pub use crate::engine::TopologyEngine;
    pub use crate::error::TopologyError;
    pub use crate::graph::{Graph, GraphStats};
}
