//! Graph generators.
//!
//! Each generator returns a simple undirected [`Graph`]. Randomized
//! generators take an explicit RNG (workspace convention: determinism by
//! construction, see `fet_stats::rng::SeedTree`).
//!
//! The menagerie is chosen to bracket the paper's fully-connected
//! assumption (§1.2):
//!
//! * [`complete`] — the paper's model, as a sanity anchor;
//! * [`erdos_renyi`] / [`random_regular`] — sparse expanders, the natural
//!   "well-mixed but not complete" relaxations;
//! * [`watts_strogatz`] — tunable between lattice and expander;
//! * [`ring_lattice`], [`star`], [`barbell`] — pathological extremes
//!   (high diameter, observation bottleneck, bisection bottleneck) where
//!   trend-following should degrade or fail.

use crate::error::TopologyError;
use crate::graph::Graph;
use rand::Rng;

/// The complete graph `K_n` — the paper's own communication model.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] for `n < 2` (a single agent
/// has nobody to observe).
pub fn complete(n: u32) -> Result<Graph, TopologyError> {
    if n < 2 {
        return Err(TopologyError::InvalidParameter {
            name: "n",
            detail: format!("complete graph needs n ≥ 2, got {n}"),
        });
    }
    let mut edges = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Ring lattice: vertices on a cycle, each adjacent to its `k` nearest
/// neighbors on both sides (degree `2k`). `k = 1` is the plain cycle.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] unless `1 ≤ k` and
/// `2k + 1 ≤ n` (otherwise far-side neighbors wrap into duplicates).
pub fn ring_lattice(n: u32, k: u32) -> Result<Graph, TopologyError> {
    if k == 0 {
        return Err(TopologyError::InvalidParameter {
            name: "k",
            detail: "ring lattice needs k ≥ 1".into(),
        });
    }
    if 2 * k + 1 > n {
        return Err(TopologyError::InvalidParameter {
            name: "k",
            detail: format!("ring lattice needs 2k + 1 ≤ n, got k = {k}, n = {n}"),
        });
    }
    let mut edges = Vec::with_capacity(n as usize * k as usize);
    for v in 0..n {
        for j in 1..=k {
            edges.push((v, (v + j) % n));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Star `K_{1,n-1}` with the hub at vertex 0.
///
/// Every leaf observes only the hub — the most extreme observation
/// bottleneck. With the source pinned at the hub, FET's trend signal is
/// constant for leaves, so ties freeze their opinions (experiment E18
/// measures exactly this).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] for `n < 2`.
pub fn star(n: u32) -> Result<Graph, TopologyError> {
    if n < 2 {
        return Err(TopologyError::InvalidParameter {
            name: "n",
            detail: format!("star needs n ≥ 2, got {n}"),
        });
    }
    let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

/// Barbell: two disjoint cliques of size `clique` joined by `bridges`
/// disjoint edges (vertex `i` of the left clique to vertex `i` of the
/// right, for `i < bridges`). A bisection bottleneck: information must
/// funnel through the bridge edges.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] unless `clique ≥ 2` and
/// `1 ≤ bridges ≤ clique`.
pub fn barbell(clique: u32, bridges: u32) -> Result<Graph, TopologyError> {
    if clique < 2 {
        return Err(TopologyError::InvalidParameter {
            name: "clique",
            detail: format!("barbell needs clique ≥ 2, got {clique}"),
        });
    }
    if bridges == 0 || bridges > clique {
        return Err(TopologyError::InvalidParameter {
            name: "bridges",
            detail: format!("barbell needs 1 ≤ bridges ≤ clique, got {bridges}"),
        });
    }
    let n = 2 * clique;
    let mut edges = Vec::new();
    for side in [0, clique] {
        for a in 0..clique {
            for b in (a + 1)..clique {
                edges.push((side + a, side + b));
            }
        }
    }
    for i in 0..bridges {
        edges.push((i, clique + i));
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges present
/// independently with probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] for `n < 2` or `p ∉ [0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: u32, p: f64, rng: &mut R) -> Result<Graph, TopologyError> {
    if n < 2 {
        return Err(TopologyError::InvalidParameter {
            name: "n",
            detail: format!("G(n, p) needs n ≥ 2, got {n}"),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(TopologyError::InvalidParameter {
            name: "p",
            detail: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let mut edges = Vec::new();
    if p >= 1.0 {
        return complete(n);
    }
    if p > 0.0 {
        // Geometric skipping over the lexicographic edge enumeration
        // (Batagelj–Brandes): jump ahead by Geometric(p) positions.
        let ln_q = (1.0 - p).ln();
        let total = (n as u64) * (n as u64 - 1) / 2;
        let mut pos: u64 = 0;
        let mut first = true;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u.ln() / ln_q).floor() as u64;
            pos = if first {
                skip
            } else {
                pos.saturating_add(skip + 1)
            };
            first = false;
            if pos >= total {
                break;
            }
            edges.push(edge_at(n as u64, pos));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Maps a lexicographic rank to the corresponding edge `(a, b)`, `a < b`,
/// over the `n(n-1)/2` edges of `K_n`.
fn edge_at(n: u64, mut rank: u64) -> (u32, u32) {
    let mut a = 0u64;
    loop {
        let row = n - a - 1; // edges (a, a+1..n)
        if rank < row {
            return (a as u32, (a + 1 + rank) as u32);
        }
        rank -= row;
        a += 1;
    }
}

/// Maximum restart attempts for [`random_regular`] before giving up.
const REGULAR_MAX_ATTEMPTS: u32 = 100;

/// Random `d`-regular graph via Steger–Wormald incremental pairing:
/// half-edge stubs are matched one pair at a time, re-drawing any pair
/// that would create a self-loop or parallel edge, and restarting from
/// scratch on the (rare) dead end where only forbidden pairs remain.
///
/// Unlike wholesale configuration-model rejection — whose acceptance
/// probability `≈ exp(-(d²-1)/4)` collapses already at `d ≈ 10` — this
/// procedure succeeds in practice for any `d` up to `Θ(n^{1/3})` and
/// beyond, and produces a distribution asymptotically close to uniform
/// over simple `d`-regular graphs (Steger & Wormald, 1999).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] unless `1 ≤ d < n` and
/// `n·d` is even, and [`TopologyError::GenerationFailed`] if the restart
/// budget is exhausted.
pub fn random_regular<R: Rng + ?Sized>(
    n: u32,
    d: u32,
    rng: &mut R,
) -> Result<Graph, TopologyError> {
    if d == 0 || d >= n {
        return Err(TopologyError::InvalidParameter {
            name: "d",
            detail: format!("random regular graph needs 1 ≤ d < n, got d = {d}, n = {n}"),
        });
    }
    if !(n as u64 * d as u64).is_multiple_of(2) {
        return Err(TopologyError::InvalidParameter {
            name: "d",
            detail: format!("n·d must be even, got n = {n}, d = {d}"),
        });
    }
    let all_stubs: Vec<u32> = (0..n)
        .flat_map(|v| std::iter::repeat_n(v, d as usize))
        .collect();
    'attempt: for _ in 0..REGULAR_MAX_ATTEMPTS {
        let mut stubs = all_stubs.clone();
        let mut taken: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::with_capacity(all_stubs.len() / 2);
        let mut edges = Vec::with_capacity(all_stubs.len() / 2);
        while stubs.len() > 1 {
            // A pair is admissible unless it is a self-loop or duplicate.
            // If no admissible pair exists among the remaining stubs we
            // are at a dead end; detect it by bounding the redraw count.
            let budget = 100 + stubs.len() * stubs.len();
            let mut found = false;
            for _ in 0..budget {
                let i = rng.gen_range(0..stubs.len());
                let j = rng.gen_range(0..stubs.len());
                if i == j {
                    continue;
                }
                let (a, b) = (stubs[i], stubs[j]);
                if a == b {
                    continue;
                }
                let key = (a.min(b), a.max(b));
                if taken.contains(&key) {
                    continue;
                }
                taken.insert(key);
                edges.push(key);
                // Remove the two stubs (larger index first).
                let (hi, lo) = (i.max(j), i.min(j));
                stubs.swap_remove(hi);
                stubs.swap_remove(lo);
                found = true;
                break;
            }
            if !found {
                continue 'attempt;
            }
        }
        return Graph::from_edges(n, &edges);
    }
    Err(TopologyError::GenerationFailed {
        generator: "random_regular",
        attempts: REGULAR_MAX_ATTEMPTS,
    })
}

/// Watts–Strogatz small world: start from [`ring_lattice`]`(n, k)` and
/// rewire the far endpoint of each lattice edge with probability `beta`
/// to a uniform non-duplicate target. `beta = 0` is the lattice;
/// `beta = 1` approaches (but is not exactly) `G(n, p)`.
///
/// Edge count is preserved exactly (`n·k`); degrees are not.
///
/// # Errors
///
/// Propagates [`ring_lattice`]'s parameter requirements, plus
/// [`TopologyError::InvalidParameter`] for `beta ∉ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: u32,
    k: u32,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, TopologyError> {
    if !(0.0..=1.0).contains(&beta) {
        return Err(TopologyError::InvalidParameter {
            name: "beta",
            detail: format!("rewiring probability must be in [0, 1], got {beta}"),
        });
    }
    // Validate (n, k) through the lattice constructor.
    ring_lattice(n, k)?;
    let mut adjacency: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n as usize];
    let insert = |adj: &mut Vec<std::collections::BTreeSet<u32>>, a: u32, b: u32| {
        adj[a as usize].insert(b);
        adj[b as usize].insert(a);
    };
    for v in 0..n {
        for j in 1..=k {
            insert(&mut adjacency, v, (v + j) % n);
        }
    }
    for v in 0..n {
        for j in 1..=k {
            let w = (v + j) % n;
            if !rng.gen_bool(beta) {
                continue;
            }
            // Choose a replacement target that keeps the graph simple.
            // Skip the rewire when v is already adjacent to everyone.
            if adjacency[v as usize].len() as u32 == n - 1 {
                continue;
            }
            let t = loop {
                let t = rng.gen_range(0..n);
                if t != v && !adjacency[v as usize].contains(&t) {
                    break t;
                }
            };
            adjacency[v as usize].remove(&w);
            adjacency[w as usize].remove(&v);
            insert(&mut adjacency, v, t);
        }
    }
    let mut edges = Vec::new();
    for v in 0..n {
        for &w in &adjacency[v as usize] {
            if v < w {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphStats;
    use fet_stats::rng::SeedTree;

    #[test]
    fn complete_graph_shape() {
        let g = complete(7).unwrap();
        assert_eq!(g.num_edges(), 21);
        assert_eq!(g.min_degree(), 6);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.diameter(), Some(1));
        assert!(complete(1).is_err());
    }

    #[test]
    fn ring_lattice_shape() {
        let g = ring_lattice(10, 2).unwrap();
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_connected());
        // Cycle of length 12 has diameter 6.
        assert_eq!(ring_lattice(12, 1).unwrap().diameter(), Some(6));
        assert!(ring_lattice(5, 0).is_err());
        assert!(ring_lattice(4, 2).is_err(), "2k + 1 > n must be rejected");
    }

    #[test]
    fn star_shape() {
        let g = star(9).unwrap();
        assert_eq!(g.degree(0), 8);
        for v in 1..9 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(g.diameter(), Some(2));
        assert!(star(1).is_err());
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(5, 2).unwrap();
        assert_eq!(g.n(), 10);
        // Two K5 (10 edges each) plus 2 bridges.
        assert_eq!(g.num_edges(), 22);
        assert!(g.is_connected());
        assert!(g.has_edge(0, 5) && g.has_edge(1, 6));
        assert!(!g.has_edge(2, 7));
        assert!(barbell(1, 1).is_err());
        assert!(barbell(4, 0).is_err());
        assert!(barbell(4, 5).is_err());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SeedTree::new(7).rng();
        let empty = erdos_renyi(20, 0.0, &mut rng).unwrap();
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(20, 1.0, &mut rng).unwrap();
        assert_eq!(full.num_edges(), 190);
        assert!(erdos_renyi(20, 1.5, &mut rng).is_err());
        assert!(erdos_renyi(20, -0.1, &mut rng).is_err());
        assert!(erdos_renyi(1, 0.5, &mut rng).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_concentrates() {
        let mut rng = SeedTree::new(11).rng();
        let n = 200u32;
        let p = 0.1;
        let total = (n as f64) * (n as f64 - 1.0) / 2.0;
        let mean = p * total;
        // Binomial(total, p): 5σ band around the mean.
        let sigma = (total * p * (1.0 - p)).sqrt();
        for _ in 0..5 {
            let g = erdos_renyi(n, p, &mut rng).unwrap();
            let m = g.num_edges() as f64;
            assert!(
                (m - mean).abs() < 5.0 * sigma,
                "edge count {m} too far from mean {mean} (σ = {sigma})"
            );
        }
    }

    #[test]
    fn edge_at_enumerates_lexicographically() {
        // n = 4: (0,1) (0,2) (0,3) (1,2) (1,3) (2,3)
        let expected = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (rank, &e) in expected.iter().enumerate() {
            assert_eq!(edge_at(4, rank as u64), e);
        }
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = SeedTree::new(13).rng();
        for &(n, d) in &[(30u32, 3u32), (40, 4), (64, 6)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert_eq!(g.min_degree(), d);
            assert_eq!(g.max_degree(), d);
            assert_eq!(g.num_edges(), (n as u64 * d as u64) / 2);
        }
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        let mut rng = SeedTree::new(17).rng();
        assert!(random_regular(10, 0, &mut rng).is_err());
        assert!(random_regular(10, 10, &mut rng).is_err());
        assert!(
            random_regular(5, 3, &mut rng).is_err(),
            "n·d odd must be rejected"
        );
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let mut rng = SeedTree::new(19).rng();
        for &beta in &[0.0, 0.1, 0.5, 1.0] {
            let g = watts_strogatz(50, 3, beta, &mut rng).unwrap();
            assert_eq!(g.num_edges(), 150, "beta = {beta}");
        }
        assert!(watts_strogatz(50, 3, 1.01, &mut rng).is_err());
    }

    #[test]
    fn watts_strogatz_beta_zero_is_the_lattice() {
        let mut rng = SeedTree::new(23).rng();
        let ws = watts_strogatz(30, 2, 0.0, &mut rng).unwrap();
        let lattice = ring_lattice(30, 2).unwrap();
        assert_eq!(ws, lattice);
    }

    #[test]
    fn watts_strogatz_shrinks_diameter() {
        let mut rng = SeedTree::new(29).rng();
        let lattice = ring_lattice(200, 2).unwrap();
        let ws = watts_strogatz(200, 2, 0.3, &mut rng).unwrap();
        let (dl, dw) = (lattice.diameter().unwrap(), ws.diameter());
        if let Some(dw) = dw {
            assert!(
                dw < dl,
                "rewiring should shorten the diameter: lattice {dl}, ws {dw}"
            );
        }
        // (A disconnected rewire is possible in principle; the seed above
        // keeps it connected, which the assertion below pins down.)
        assert!(ws.is_connected());
    }

    #[test]
    fn stats_display_smoke() {
        let g = barbell(4, 1).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.components, 1);
        assert!(s.to_string().contains("n=8"));
    }
}
