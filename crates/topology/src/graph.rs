//! Undirected graphs in compressed sparse row (CSR) form.
//!
//! The paper's model (§1.2) assumes a *fully-connected* network: every
//! agent samples uniformly from the whole population. This module provides
//! the substrate for relaxing that assumption — agents sample uniformly
//! (with replacement) from their *neighbors* instead — so the workspace can
//! measure how much of FET's behaviour survives on sparse topologies
//! (experiment E18).
//!
//! Graphs are simple (no self-loops, no parallel edges) and undirected;
//! each adjacency list is sorted, which makes membership queries
//! `O(log deg)` and keeps generators honest (duplicates would be visible).

use crate::error::TopologyError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An immutable simple undirected graph in CSR form.
///
/// Vertex ids are `u32` in `[0, n)`. Construction is through
/// [`Graph::from_edges`] or the generators in [`crate::builders`].
///
/// # Example
///
/// ```
/// use fet_topology::graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_connected());
/// # Ok::<(), fet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Self-loops and duplicate edges (in either orientation) are rejected
    /// rather than silently dropped: generators in this crate are expected
    /// to produce simple graphs, and a duplicate signals a bug.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::VertexOutOfRange`] if an endpoint is `>= n`.
    /// * [`TopologyError::InvalidParameter`] for `n = 0`, a self-loop, or a
    ///   duplicate edge.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::InvalidParameter {
                name: "n",
                detail: "graph must have at least one vertex".into(),
            });
        }
        let nu = n as usize;
        let mut degree = vec![0usize; nu];
        for &(a, b) in edges {
            for v in [a, b] {
                if v >= n {
                    return Err(TopologyError::VertexOutOfRange { vertex: v, n });
                }
            }
            if a == b {
                return Err(TopologyError::InvalidParameter {
                    name: "edges",
                    detail: format!("self-loop at vertex {a}"),
                });
            }
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(nu + 1);
        offsets.push(0usize);
        for v in 0..nu {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut neighbors = vec![0u32; offsets[nu]];
        let mut cursor = offsets.clone();
        for &(a, b) in edges {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..nu {
            let list = &mut neighbors[offsets[v]..offsets[v + 1]];
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                return Err(TopologyError::InvalidParameter {
                    name: "edges",
                    detail: format!("duplicate edge incident to vertex {v}"),
                });
            }
        }
        Ok(Graph { offsets, neighbors })
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> u64 {
        (self.neighbors.len() / 2) as u64
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: u32) -> u32 {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as u32
    }

    /// The sorted adjacency list of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `true` if `{a, b}` is an edge. `O(log deg(a))`.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        a < self.n() && b < self.n() && self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Smallest vertex degree.
    pub fn min_degree(&self) -> u32 {
        (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Largest vertex degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average vertex degree (`2·|E| / n`).
    pub fn mean_degree(&self) -> f64 {
        self.neighbors.len() as f64 / self.n() as f64
    }

    /// BFS distances from `src`; unreachable vertices get `u32::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `src >= n`.
    pub fn bfs_distances(&self, src: u32) -> Vec<u32> {
        assert!(src < self.n(), "bfs source {src} out of range");
        let mut dist = vec![u32::MAX; self.n() as usize];
        dist[src as usize] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// `true` when the graph has a single connected component.
    pub fn is_connected(&self) -> bool {
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Number of connected components.
    pub fn connected_components(&self) -> u32 {
        let nu = self.n() as usize;
        let mut seen = vec![false; nu];
        let mut components = 0;
        for start in 0..nu {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            let mut queue = VecDeque::from([start as u32]);
            while let Some(v) = queue.pop_front() {
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        components
    }

    /// Eccentricity of `src` (largest BFS distance), or `None` when some
    /// vertex is unreachable.
    pub fn eccentricity(&self, src: u32) -> Option<u32> {
        let dist = self.bfs_distances(src);
        let max = *dist.iter().max().expect("graph has at least one vertex");
        (max != u32::MAX).then_some(max)
    }

    /// Exact diameter via all-pairs BFS — `O(n·(n + m))`, intended for the
    /// moderate `n` used in experiments. `None` when disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for v in 0..self.n() {
            best = best.max(self.eccentricity(v)?);
        }
        Some(best)
    }

    /// Swaps the identities of vertices `a` and `b`, preserving the edge
    /// structure. Experiments use this to move the source agent (which the
    /// engine pins at vertex 0) onto a structurally interesting vertex —
    /// e.g. a star leaf instead of the hub.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    #[must_use]
    pub fn with_swapped(&self, a: u32, b: u32) -> Graph {
        assert!(a < self.n() && b < self.n(), "swap endpoints out of range");
        if a == b {
            return self.clone();
        }
        let relabel = |v: u32| {
            if v == a {
                b
            } else if v == b {
                a
            } else {
                v
            }
        };
        let mut edges = Vec::with_capacity(self.num_edges() as usize);
        for v in 0..self.n() {
            for &w in self.neighbors(v) {
                if v < w {
                    edges.push((relabel(v), relabel(w)));
                }
            }
        }
        Graph::from_edges(self.n(), &edges).expect("relabeling preserves simplicity")
    }

    /// Iterates over all undirected edges as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n()).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .filter_map(move |&w| (v < w).then_some((v, w)))
        })
    }

    /// Ensures no vertex is isolated — required by the PULL engine.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IsolatedVertex`] naming the first isolated
    /// vertex.
    pub fn ensure_no_isolated_vertex(&self) -> Result<(), TopologyError> {
        for v in 0..self.n() {
            if self.degree(v) == 0 {
                return Err(TopologyError::IsolatedVertex { vertex: v });
            }
        }
        Ok(())
    }

    /// The raw CSR offset array: `csr_offsets()[v]..csr_offsets()[v + 1]`
    /// indexes [`Graph::csr_neighbors`] for vertex `v` (length `n + 1`).
    ///
    /// Together with [`Graph::csr_neighbors`] this exposes the whole
    /// adjacency structure as two borrows — what shard workers of the
    /// graph-fused round read concurrently (through an
    /// `Arc<Graph>`-backed `Neighborhood`) without cloning anything.
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated sorted adjacency lists (see
    /// [`Graph::csr_offsets`]).
    pub fn csr_neighbors(&self) -> &[u32] {
        &self.neighbors
    }
}

/// Graphs plug straight into the unified `Simulation` facade:
/// `Simulation::builder().topology(graph)` runs any protocol with
/// neighbor-restricted sampling.
impl fet_sim::neighborhood::Neighborhood for Graph {
    fn population(&self) -> u32 {
        self.n()
    }

    fn neighbors_of(&self, vertex: u32) -> &[u32] {
        self.neighbors(vertex)
    }

    fn clone_box(&self) -> Box<dyn fet_sim::neighborhood::Neighborhood> {
        Box::new(self.clone())
    }
}

/// The shared-adjacency form of a [`Graph`]: an `Arc`-backed
/// `Neighborhood` whose `clone_box` is a reference-count bump instead of
/// an `O(n + m)` CSR copy.
///
/// [`crate::engine::TopologyEngine`] hands the engine this form so that
/// engine clones (trajectory snapshots, batch replication) and the
/// engine's own boxed copy all read one adjacency structure — and so
/// graph-fused shard workers share it without any duplication.
///
/// # Example
///
/// ```
/// use fet_sim::neighborhood::Neighborhood;
/// use fet_topology::graph::{Graph, SharedGraph};
/// use std::sync::Arc;
///
/// let g = Arc::new(Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])?);
/// let shared = SharedGraph::new(Arc::clone(&g));
/// let boxed = shared.clone_box(); // no CSR copy, just a refcount bump
/// assert_eq!(boxed.neighbors_of(1), g.neighbors(1));
/// # Ok::<(), fet_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedGraph(std::sync::Arc<Graph>);

impl SharedGraph {
    /// Wraps an already-shared graph.
    pub fn new(graph: std::sync::Arc<Graph>) -> Self {
        SharedGraph(graph)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.0
    }
}

impl From<Graph> for SharedGraph {
    fn from(graph: Graph) -> Self {
        SharedGraph(std::sync::Arc::new(graph))
    }
}

impl fet_sim::neighborhood::Neighborhood for SharedGraph {
    fn population(&self) -> u32 {
        self.0.n()
    }

    fn neighbors_of(&self, vertex: u32) -> &[u32] {
        self.0.neighbors(vertex)
    }

    fn clone_box(&self) -> Box<dyn fet_sim::neighborhood::Neighborhood> {
        Box::new(self.clone())
    }
}

/// Summary statistics of a graph's degree sequence and connectivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: u32,
    /// Number of undirected edges.
    pub edges: u64,
    /// Minimum degree.
    pub min_degree: u32,
    /// Maximum degree.
    pub max_degree: u32,
    /// Mean degree.
    pub mean_degree: f64,
    /// Number of connected components.
    pub components: u32,
    /// Exact diameter (`None` when disconnected).
    pub diameter: Option<u32>,
}

impl GraphStats {
    /// Computes the full summary for `g`. All-pairs BFS: intended for the
    /// moderate sizes used in experiments and tests.
    pub fn of(g: &Graph) -> GraphStats {
        GraphStats {
            n: g.n(),
            edges: g.num_edges(),
            min_degree: g.min_degree(),
            max_degree: g.max_degree(),
            mean_degree: g.mean_degree(),
            components: g.connected_components(),
            diameter: g.diameter(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} deg[{}..{}] mean={:.2} comps={} diam={}",
            self.n,
            self.edges,
            self.min_degree,
            self.max_degree,
            self.mean_degree,
            self.components,
            self.diameter.map_or("∞".into(), |d| d.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let g = Graph::from_edges(4, &[(3, 0), (0, 1), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_zero_vertices() {
        let err = Graph::from_edges(0, &[]);
        assert!(matches!(
            err,
            Err(TopologyError::InvalidParameter { name: "n", .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let err = Graph::from_edges(3, &[(0, 3)]);
        assert!(matches!(
            err,
            Err(TopologyError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        assert!(Graph::from_edges(3, &[(1, 1)]).is_err());
        assert!(Graph::from_edges(3, &[(0, 1), (1, 0)]).is_err());
        assert!(Graph::from_edges(3, &[(0, 1), (0, 1)]).is_err());
    }

    #[test]
    fn single_vertex_graph_is_connected_but_isolated() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.connected_components(), 1);
        assert!(matches!(
            g.ensure_no_isolated_vertex(),
            Err(TopologyError::IsolatedVertex { vertex: 0 })
        ));
    }

    #[test]
    fn has_edge_is_symmetric_and_correct() {
        let g = path(5);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 9)); // out of range is just `false`
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.bfs_distances(2), vec![2, 1, 0, 1, 2]);
        assert_eq!(g.eccentricity(2), Some(2));
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn disconnected_graph_reports_components_and_no_diameter() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.connected_components(), 2);
        assert_eq!(g.diameter(), None);
        assert_eq!(g.eccentricity(0), None);
    }

    #[test]
    fn with_swapped_preserves_structure() {
        // Star with hub 0; after swapping 0 and 3, the hub is vertex 3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let h = g.with_swapped(0, 3);
        assert_eq!(h.degree(3), 3);
        assert_eq!(h.degree(0), 1);
        assert_eq!(h.num_edges(), g.num_edges());
        assert!(h.is_connected());
        // Swapping a vertex with itself is the identity.
        assert_eq!(g.with_swapped(2, 2), g);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = path(6);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges.len() as u64, g.num_edges());
        for (a, b) in edges {
            assert!(a < b);
            assert!(g.has_edge(a, b));
        }
    }

    #[test]
    fn stats_summarize_path() {
        let s = GraphStats::of(&path(5));
        assert_eq!(s.n, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 1);
        assert_eq!(s.diameter, Some(4));
        assert!(s.to_string().contains("diam=4"));
    }
}
