//! Scalar heatmaps and categorical maps (the domain-map figures).

use std::collections::BTreeMap;
use std::fmt;

/// Shade ramp from light to dark.
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// A scalar heatmap over a row-major matrix.
///
/// Rows are rendered top-to-bottom in the order given; callers plotting
/// `y`-up data (like the state-space square) should pass rows already
/// flipped, or use [`Heatmap::render_flipped`].
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    values: Vec<Vec<f64>>,
    title: Option<String>,
}

impl Heatmap {
    /// Creates a heatmap from row-major values.
    ///
    /// # Panics
    ///
    /// Panics when rows are empty or ragged.
    pub fn new(values: Vec<Vec<f64>>) -> Self {
        assert!(
            !values.is_empty() && !values[0].is_empty(),
            "heatmap needs data"
        );
        let w = values[0].len();
        assert!(
            values.iter().all(|r| r.len() == w),
            "heatmap rows must be equal length"
        );
        Heatmap {
            values,
            title: None,
        }
    }

    /// Sets the title.
    pub fn title(&mut self, t: impl Into<String>) -> &mut Self {
        self.title = Some(t.into());
        self
    }

    fn render_rows<'a>(&self, rows: impl Iterator<Item = &'a Vec<f64>>) -> String {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in &self.values {
            for &v in row {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        if !lo.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        if (hi - lo).abs() < 1e-300 {
            hi = lo + 1.0;
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        for row in rows {
            for &v in row {
                let c = if v.is_finite() {
                    let f = (v - lo) / (hi - lo);
                    RAMP[((f * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
                } else {
                    '?'
                };
                out.push(c);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "scale: '{}' = {lo:.3} … '{}' = {hi:.3}\n",
            RAMP[0],
            RAMP[RAMP.len() - 1]
        ));
        out
    }

    /// Renders rows top-to-bottom as stored.
    pub fn render(&self) -> String {
        self.render_rows(self.values.iter())
    }

    /// Renders with the row order flipped (for `y`-up data).
    pub fn render_flipped(&self) -> String {
        self.render_rows(self.values.iter().rev())
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A categorical map: each cell holds a label; labels are assigned stable
/// single-character glyphs and listed in a legend. This is what draws the
/// Figure 1a / Figure 2 domain partitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CategoricalMap {
    cells: Vec<Vec<String>>,
    title: Option<String>,
}

/// Glyph pool for categories, in assignment order.
const GLYPHS: &[char] = &[
    'G', 'g', 'P', 'p', 'R', 'r', 'C', 'c', 'Y', 'A', 'a', 'B', 'b', 'D', 'd', '1', '2', '3', '4',
    '5',
];

impl CategoricalMap {
    /// Creates a map from row-major labels.
    ///
    /// # Panics
    ///
    /// Panics when rows are empty or ragged.
    pub fn new(cells: Vec<Vec<String>>) -> Self {
        assert!(
            !cells.is_empty() && !cells[0].is_empty(),
            "categorical map needs data"
        );
        let w = cells[0].len();
        assert!(
            cells.iter().all(|r| r.len() == w),
            "rows must be equal length"
        );
        CategoricalMap { cells, title: None }
    }

    /// Sets the title.
    pub fn title(&mut self, t: impl Into<String>) -> &mut Self {
        self.title = Some(t.into());
        self
    }

    /// Renders with the row order flipped (for `y`-up data) plus a legend.
    pub fn render_flipped(&self) -> String {
        // Stable glyph assignment: lexicographic label order.
        let mut labels: Vec<&String> = self.cells.iter().flatten().collect();
        labels.sort();
        labels.dedup();
        let mut glyph_of: BTreeMap<&String, char> = BTreeMap::new();
        for (i, l) in labels.iter().enumerate() {
            glyph_of.insert(l, *GLYPHS.get(i).unwrap_or(&'?'));
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        for row in self.cells.iter().rev() {
            for cell in row {
                out.push(glyph_of[cell]);
            }
            out.push('\n');
        }
        out.push_str("legend: ");
        let mut first = true;
        for (label, glyph) in &glyph_of {
            if !first {
                out.push_str(", ");
            }
            out.push_str(&format!("{glyph}={label}"));
            first = false;
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_renders_extremes() {
        let mut h = Heatmap::new(vec![vec![0.0, 0.5], vec![0.5, 1.0]]);
        h.title("t");
        let s = h.render();
        assert!(s.contains('t'));
        assert!(s.contains('@'), "max value should use the darkest glyph");
        assert!(s.contains("scale:"));
    }

    #[test]
    fn heatmap_flip_reverses_rows() {
        let h = Heatmap::new(vec![vec![0.0, 0.0], vec![1.0, 1.0]]);
        let normal: Vec<String> = h.render().lines().map(String::from).collect();
        let flipped: Vec<String> = h.render_flipped().lines().map(String::from).collect();
        assert_eq!(normal[0], flipped[1]);
        assert_eq!(normal[1], flipped[0]);
    }

    #[test]
    fn heatmap_handles_nan() {
        let h = Heatmap::new(vec![vec![f64::NAN, 1.0]]);
        assert!(h.render().contains('?'));
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_heatmap_rejected() {
        let _ = Heatmap::new(vec![]);
    }

    #[test]
    fn categorical_legend_is_stable() {
        let m = CategoricalMap::new(vec![
            vec!["Yellow".to_string(), "Green1".to_string()],
            vec!["Green1".to_string(), "Green1".to_string()],
        ]);
        let s = m.render_flipped();
        assert!(s.contains("legend:"));
        assert!(s.contains("Green1"));
        assert!(s.contains("Yellow"));
        // Rendering twice gives the same glyph assignment.
        assert_eq!(s, m.render_flipped());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = CategoricalMap::new(vec![vec!["a".into()], vec!["a".into(), "b".into()]]);
    }
}
