//! ASCII line/scatter charts.

use std::fmt;

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Axis {
    /// Linear axis.
    #[default]
    Linear,
    /// Base-10 logarithmic axis (requires positive coordinates).
    Log10,
}

impl Axis {
    fn transform(&self, v: f64) -> f64 {
        match self {
            Axis::Linear => v,
            Axis::Log10 => v.log10(),
        }
    }
}

/// One named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Marker character.
    pub marker: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, marker: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            marker,
            points,
        }
    }
}

/// An ASCII chart canvas.
///
/// # Example
///
/// ```
/// use fet_plot::chart::{Axis, LineChart, Series};
///
/// let mut chart = LineChart::new(40, 10);
/// chart.add_series(Series::new("t(n)", '*', vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]));
/// let s = chart.render();
/// assert!(s.contains('*'));
/// assert!(s.contains("t(n)"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    width: usize,
    height: usize,
    x_axis: Axis,
    y_axis: Axis,
    series: Vec<Series>,
    title: Option<String>,
}

impl LineChart {
    /// Creates an empty canvas of `width × height` plot cells.
    ///
    /// # Panics
    ///
    /// Panics when `width < 8` or `height < 4`.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width >= 8 && height >= 4,
            "canvas too small: {width}×{height}"
        );
        LineChart {
            width,
            height,
            x_axis: Axis::Linear,
            y_axis: Axis::Linear,
            series: Vec::new(),
            title: None,
        }
    }

    /// Sets the chart title.
    pub fn title(&mut self, t: impl Into<String>) -> &mut Self {
        self.title = Some(t.into());
        self
    }

    /// Sets axis scalings.
    pub fn axes(&mut self, x: Axis, y: Axis) -> &mut Self {
        self.x_axis = x;
        self.y_axis = y;
        self
    }

    /// Adds a series.
    pub fn add_series(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    /// Renders the chart with axis ranges and legend.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| {
                let tx = self.x_axis.transform(*x);
                let ty = self.y_axis.transform(*y);
                tx.is_finite() && ty.is_finite()
            })
            .collect();
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        if pts.is_empty() {
            out.push_str("(no finite data)\n");
            return out;
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            let tx = self.x_axis.transform(x);
            let ty = self.y_axis.transform(y);
            x_lo = x_lo.min(tx);
            x_hi = x_hi.max(tx);
            y_lo = y_lo.min(ty);
            y_hi = y_hi.max(ty);
        }
        if (x_hi - x_lo).abs() < 1e-300 {
            x_hi = x_lo + 1.0;
        }
        if (y_hi - y_lo).abs() < 1e-300 {
            y_hi = y_lo + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                let tx = self.x_axis.transform(x);
                let ty = self.y_axis.transform(y);
                if !tx.is_finite() || !ty.is_finite() {
                    continue;
                }
                let col = ((tx - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
                let row = ((ty - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
                let r = self.height - 1 - row.min(self.height - 1);
                grid[r][col.min(self.width - 1)] = s.marker;
            }
        }
        let y_label = |v: f64| -> String {
            match self.y_axis {
                Axis::Linear => format!("{v:9.3}"),
                Axis::Log10 => format!("{:9.3}", 10f64.powf(v)),
            }
        };
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                y_label(y_hi)
            } else if r == self.height - 1 {
                y_label(y_lo)
            } else {
                " ".repeat(9)
            };
            out.push_str(&label);
            out.push_str(" |");
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(9));
        out.push_str(" +");
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let x_left = match self.x_axis {
            Axis::Linear => format!("{x_lo:.3}"),
            Axis::Log10 => format!("{:.3}", 10f64.powf(x_lo)),
        };
        let x_right = match self.x_axis {
            Axis::Linear => format!("{x_hi:.3}"),
            Axis::Log10 => format!("{:.3}", 10f64.powf(x_hi)),
        };
        let pad = self.width.saturating_sub(x_left.len() + x_right.len());
        out.push_str(&" ".repeat(11));
        out.push_str(&x_left);
        out.push_str(&" ".repeat(pad));
        out.push_str(&x_right);
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("  {} {}\n", s.marker, s.label));
        }
        out
    }
}

impl fmt::Display for LineChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let mut c = LineChart::new(20, 6);
        c.title("demo");
        c.add_series(Series::new("up", '*', vec![(0.0, 0.0), (1.0, 1.0)]));
        c.add_series(Series::new("down", 'o', vec![(0.0, 1.0), (1.0, 0.0)]));
        let s = c.render();
        assert!(s.contains("demo"));
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("up") && s.contains("down"));
    }

    #[test]
    fn log_axes_render_raw_values() {
        let mut c = LineChart::new(20, 6);
        c.axes(Axis::Log10, Axis::Log10);
        c.add_series(Series::new(
            "p",
            '*',
            vec![(10.0, 100.0), (1000.0, 10000.0)],
        ));
        let s = c.render();
        // The x labels show untransformed endpoints.
        assert!(s.contains("10.000"));
        assert!(s.contains("1000.000"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let c = LineChart::new(20, 6);
        assert!(c.render().contains("no finite data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut c = LineChart::new(20, 6);
        c.add_series(Series::new("flat", '*', vec![(1.0, 5.0), (2.0, 5.0)]));
        let s = c.render();
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let _ = LineChart::new(4, 2);
    }
}
