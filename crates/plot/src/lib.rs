//! # fet-plot — terminal plotting and tabulation
//!
//! Minimal, dependency-free rendering for the experiment harness: every
//! figure the reproduction regenerates is drawn in the terminal and
//! exported as CSV.
//!
//! * [`table`] — aligned text tables with per-column formatting.
//! * [`chart`] — ASCII line/scatter charts with linear or logarithmic axes.
//! * [`heatmap`] — scalar heatmaps (shade ramp) and categorical maps with
//!   legends (the Figure 1a / Figure 2 domain maps).
//! * [`csv`] — CSV writing with proper quoting.
//!
//! # Example
//!
//! ```
//! use fet_plot::table::Table;
//!
//! let mut table = Table::new(vec!["n".into(), "t_con".into()]);
//! table.add_display_row(&[500u64, 23]);
//! let rendered = table.render();
//! assert!(rendered.contains("t_con"), "headers render: {rendered}");
//! assert!(rendered.contains("500"));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod chart;
pub mod csv;
pub mod heatmap;
pub mod table;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::chart::{Axis, LineChart, Series};
    pub use crate::csv::CsvWriter;
    pub use crate::heatmap::{CategoricalMap, Heatmap};
    pub use crate::table::Table;
}
