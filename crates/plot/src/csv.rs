//! CSV export with correct quoting.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A CSV writer over any `io::Write` sink.
///
/// # Example
///
/// ```
/// use fet_plot::csv::CsvWriter;
///
/// let mut buf = Vec::new();
/// {
///     let mut w = CsvWriter::new(&mut buf, &["n", "time"]).unwrap();
///     w.write_record(&["1024", "97.5"]).unwrap();
/// }
/// let text = String::from_utf8(buf).unwrap();
/// assert_eq!(text, "n,time\n1024,97.5\n");
/// ```
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    sink: W,
    columns: usize,
}

impl CsvWriter<BufWriter<File>> {
    /// Creates a CSV file at `path` (parent directories included) and
    /// writes the header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create<P: AsRef<Path>>(path: P, header: &[&str]) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = BufWriter::new(File::create(path)?);
        CsvWriter::new(file, header)
    }
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a sink and writes the header row.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn new(mut sink: W, header: &[&str]) -> io::Result<Self> {
        write_row(&mut sink, header.iter().copied())?;
        Ok(CsvWriter {
            sink,
            columns: header.len(),
        })
    }

    /// Writes one record of string fields.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    ///
    /// # Panics
    ///
    /// Panics when the record's arity differs from the header's.
    pub fn write_record<S: AsRef<str>>(&mut self, record: &[S]) -> io::Result<()> {
        assert_eq!(
            record.len(),
            self.columns,
            "record has {} fields, header has {}",
            record.len(),
            self.columns
        );
        write_row(&mut self.sink, record.iter().map(|s| s.as_ref()))
    }

    /// Writes one record of displayable values.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn write_display_record<T: fmt::Display>(&mut self, record: &[T]) -> io::Result<()> {
        let fields: Vec<String> = record.iter().map(|v| v.to_string()).collect();
        self.write_record(&fields)
    }

    /// Flushes the sink.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> io::Result<()> {
        self.sink.flush()
    }
}

fn write_row<'a, W: Write>(sink: &mut W, fields: impl Iterator<Item = &'a str>) -> io::Result<()> {
    let mut first = true;
    for f in fields {
        if !first {
            sink.write_all(b",")?;
        }
        first = false;
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            let escaped = f.replace('"', "\"\"");
            write!(sink, "\"{escaped}\"")?;
        } else {
            sink.write_all(f.as_bytes())?;
        }
    }
    sink.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_string(build: impl FnOnce(&mut CsvWriter<&mut Vec<u8>>)) -> String {
        let mut buf = Vec::new();
        {
            let mut w = CsvWriter::new(&mut buf, &["a", "b"]).unwrap();
            build(&mut w);
        }
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn plain_fields() {
        let s = to_string(|w| w.write_record(&["1", "2"]).unwrap());
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let s = to_string(|w| w.write_record(&["x,y", "say \"hi\""]).unwrap());
        assert_eq!(s, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn display_records() {
        let s = to_string(|w| w.write_display_record(&[1.5, 2.5]).unwrap());
        assert!(s.ends_with("1.5,2.5\n"));
    }

    #[test]
    #[should_panic(expected = "record has 1 fields")]
    fn arity_checked() {
        let mut buf = Vec::new();
        let mut w = CsvWriter::new(&mut buf, &["a", "b"]).unwrap();
        let _ = w.write_record(&["only"]);
    }

    #[test]
    fn create_writes_file() {
        let dir = std::env::temp_dir().join("fet-plot-test");
        let path = dir.join("out.csv");
        {
            let mut w = CsvWriter::create(&path, &["k"]).unwrap();
            w.write_record(&["v"]).unwrap();
            w.flush().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k\nv\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
