//! Aligned text tables.

use std::fmt;

/// A simple aligned table: headers plus string rows, rendered with
/// box-drawing-free ASCII so output pastes cleanly anywhere.
///
/// # Example
///
/// ```
/// use fet_plot::table::Table;
///
/// let mut t = Table::new(vec!["n".into(), "t_con".into()]);
/// t.add_row(vec!["1024".into(), "97.5".into()]);
/// let s = t.render();
/// assert!(s.contains("n"));
/// assert!(s.contains("97.5"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row's arity differs from the header's.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn add_display_row<T: fmt::Display>(&mut self, row: &[T]) -> &mut Self {
        self.add_row(row.iter().map(|v| v.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float compactly for table cells: trims to a sensible number
/// of significant digits by magnitude.
pub fn fmt_float(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bee".into()]);
        t.add_row(vec!["long-cell".into(), "x".into()]);
        t.add_row(vec!["s".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The separator spans the width of the widest content.
        assert!(lines[1].len() >= "long-cell  bee".len() - 2);
        // Cells are aligned: both data rows start their second column at
        // the same offset.
        let col = lines[2].find('x').unwrap();
        assert_eq!(lines[3].find('y').unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn display_row_helper() {
        let mut t = Table::new(vec!["v".into(), "w".into()]);
        t.add_display_row(&[1.5, 2.25]);
        assert!(t.render().contains("2.25"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting_regimes() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(12345.6), "12346");
        assert_eq!(fmt_float(42.25), "42.2");
        assert_eq!(fmt_float(0.5), "0.500");
        assert!(fmt_float(0.0001).contains('e'));
        assert_eq!(fmt_float(f64::NAN), "NaN");
    }
}
