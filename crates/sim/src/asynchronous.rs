//! Asynchronous (population-protocol-style) execution.
//!
//! The paper's model is synchronous: every agent samples and updates each
//! round. Its related work, however, lives largely in *population
//! protocols* (Angluin et al.; Alistarh & Gelashvili), where a scheduler
//! activates one random agent per tick. This module runs FET-family
//! protocols under that scheduler as an extension study (experiment E17):
//! the activated agent draws its full `m`-sample and updates alone, and
//! time is counted in *parallel rounds* (`n` activations ≈ one round) to
//! stay comparable with the synchronous engine.
//!
//! Under asynchrony the "two consecutive rounds" that FET's trend estimate
//! relies on become "my previous activation vs now" — a per-agent clock
//! rather than a global one. **Measured finding (a negative result of this
//! reproduction):** FET does *not* converge under this scheduler. The
//! population oscillates around the middle indefinitely — in 300k parallel
//! rounds at `n ∈ {200, 1000}` it never once reaches consensus. The
//! synchronous round structure is load-bearing: the paper's Green-domain
//! sprint needs every agent to react to the *same* `(x_t, x_{t+1})` trend
//! simultaneously, and scattered per-agent references destroy that
//! coherent wave while near-consensus states leak at a constant
//! per-activation rate. (Exact consensus would still be absorbing — ties
//! keep — but it is unreachable.) Experiment E17 quantifies this.

use crate::convergence::{ConvergenceCriterion, ConvergenceDetector, ConvergenceReport};
use crate::error::SimError;
use crate::init::InitialCondition;
use fet_core::config::ProblemSpec;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use fet_core::source::Source;
use fet_stats::rng::SeedTree;
use rand::rngs::SmallRng;
use rand::Rng;

/// Asynchronous engine: one uniformly random non-source agent activates
/// per tick.
///
/// # Example
///
/// ```
/// use fet_core::config::ProblemSpec;
/// use fet_core::fet::FetProtocol;
/// use fet_core::opinion::Opinion;
/// use fet_sim::asynchronous::AsyncEngine;
/// use fet_sim::convergence::ConvergenceCriterion;
/// use fet_sim::init::InitialCondition;
///
/// let spec = ProblemSpec::single_source(300, Opinion::One)?;
/// let protocol = FetProtocol::for_population(300, 4.0)?;
/// let mut engine = AsyncEngine::new(protocol, spec, InitialCondition::AllWrong, 5)?;
/// let report = engine.run_parallel_rounds(500, ConvergenceCriterion::new(3));
/// // The negative finding: asynchrony breaks FET (see module docs).
/// assert!(!report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsyncEngine<P: Protocol> {
    protocol: P,
    spec: ProblemSpec,
    source: Source,
    outputs: Vec<Opinion>,
    states: Vec<P::State>,
    ones_count: u64,
    rng: SmallRng,
    ticks: u64,
}

impl<P: Protocol> AsyncEngine<P> {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedPopulation`] when `n` does not fit in
    /// memory for per-agent simulation.
    pub fn new(
        protocol: P,
        spec: ProblemSpec,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        if spec.n() > u32::MAX as u64 {
            return Err(SimError::UnsupportedPopulation {
                detail: format!("n = {} too large for the async engine", spec.n()),
            });
        }
        let mut rng = SeedTree::new(seed).child("async").rng();
        let n = spec.n() as usize;
        let num_sources = spec.num_sources() as usize;
        let source = Source::new(spec.correct());
        let mut outputs = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n - num_sources);
        for _ in 0..num_sources {
            outputs.push(source.output());
        }
        for _ in num_sources..n {
            let opinion = init.draw(spec.correct(), &mut rng);
            let state = protocol.init_state(opinion, &mut rng);
            outputs.push(protocol.output(&state));
            states.push(state);
        }
        let ones_count = outputs.iter().filter(|o| o.is_one()).count() as u64;
        Ok(AsyncEngine {
            protocol,
            spec,
            source,
            outputs,
            states,
            ones_count,
            rng,
            ticks: 0,
        })
    }

    /// The problem specification.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// Total activations so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Elapsed time in parallel rounds (`ticks / n`).
    pub fn parallel_rounds(&self) -> u64 {
        self.ticks / self.spec.n()
    }

    /// Heap bytes resident in the per-agent state and output buffers.
    pub fn resident_state_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<P::State>()
            + self.outputs.capacity() * std::mem::size_of::<Opinion>()
    }

    /// The paper's `x_t` (fraction of ones over the whole population).
    pub fn fraction_ones(&self) -> f64 {
        self.ones_count as f64 / self.spec.n() as f64
    }

    /// `true` when every non-source agent decides the correct opinion.
    pub fn all_correct(&self) -> bool {
        let correct = self.source.correct();
        self.states
            .iter()
            .all(|s| self.protocol.decision(s) == correct)
    }

    /// Fraction of non-source agents currently deciding the correct
    /// opinion (an `O(n)` scan; intended for once-per-parallel-round use).
    pub fn fraction_correct(&self) -> f64 {
        let correct = self.source.correct();
        self.states
            .iter()
            .filter(|s| self.protocol.decision(s) == correct)
            .count() as f64
            / self.spec.num_non_sources() as f64
    }

    /// Activates one uniformly random non-source agent.
    pub fn tick(&mut self) {
        let n = self.outputs.len();
        let num_sources = self.spec.num_sources() as usize;
        let j = self.rng.gen_range(0..self.states.len());
        let agent_index = num_sources + j;
        let m = self.protocol.samples_per_round();
        let mut ones = 0u32;
        for _ in 0..m {
            let k = self.rng.gen_range(0..n);
            if self.outputs[k].is_one() {
                ones += 1;
            }
        }
        let obs = Observation::new(ones, m).expect("count bounded by sample size");
        let ctx = RoundContext::new(self.parallel_rounds());
        let before = self.outputs[agent_index];
        let after = self
            .protocol
            .step(&mut self.states[j], &obs, &ctx, &mut self.rng);
        self.outputs[agent_index] = after;
        match (before.is_one(), after.is_one()) {
            (false, true) => self.ones_count += 1,
            (true, false) => self.ones_count -= 1,
            _ => {}
        }
        self.ticks += 1;
    }

    /// Runs up to `max_parallel_rounds` (each = `n` activations), checking
    /// convergence once per parallel round.
    pub fn run_parallel_rounds(
        &mut self,
        max_parallel_rounds: u64,
        criterion: ConvergenceCriterion,
    ) -> ConvergenceReport {
        let n = self.spec.n();
        let mut detector = ConvergenceDetector::new(criterion);
        let mut round = self.parallel_rounds();
        let mut done = detector.observe(round, self.all_correct());
        while !done && round < max_parallel_rounds {
            for _ in 0..n {
                self.tick();
            }
            round = self.parallel_rounds();
            done = detector.observe(round, self.all_correct());
        }
        let correct = self.source.correct();
        let frac = self
            .states
            .iter()
            .filter(|s| self.protocol.decision(s) == correct)
            .count() as f64
            / self.spec.num_non_sources() as f64;
        ConvergenceReport {
            converged_at: detector.converged_at(),
            rounds_run: round,
            final_fraction_correct: frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_core::fet::FetProtocol;

    fn spec(n: u64) -> ProblemSpec {
        ProblemSpec::single_source(n, Opinion::One).unwrap()
    }

    #[test]
    fn async_fet_fails_to_converge_the_negative_finding() {
        // The reproduction finding documented in the module docs: the
        // asynchronous scheduler breaks FET. Assert the measured behaviour
        // so any future change that *fixes* asynchrony shows up loudly.
        let protocol = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = AsyncEngine::new(protocol, spec(200), InitialCondition::AllWrong, 3).unwrap();
        let report = e.run_parallel_rounds(20_000, ConvergenceCriterion::new(3));
        assert!(
            !report.converged(),
            "async FET unexpectedly converged — a finding changed: {report:?}"
        );
        // And it is genuinely wandering, not stuck at the start.
        assert!(report.final_fraction_correct > 0.02);
    }

    #[test]
    fn exact_consensus_is_absorbing_under_asynchrony() {
        // Even though consensus is unreachable under asynchrony, it IS
        // absorbing: at unanimity count′ = ℓ ≥ any stored count, so agents
        // adopt or keep 1 forever.
        let protocol = FetProtocol::for_population(150, 4.0).unwrap();
        let mut e = AsyncEngine::new(protocol, spec(150), InitialCondition::AllCorrect, 5).unwrap();
        assert!((e.fraction_ones() - 1.0).abs() < 1e-12);
        for _ in 0..150 * 50 {
            e.tick();
            assert!((e.fraction_ones() - 1.0).abs() < 1e-12, "consensus broke");
        }
    }

    #[test]
    fn tick_counting() {
        let protocol = FetProtocol::new(4).unwrap();
        let mut e = AsyncEngine::new(protocol, spec(10), InitialCondition::Random, 7).unwrap();
        for _ in 0..25 {
            e.tick();
        }
        assert_eq!(e.ticks(), 25);
        assert_eq!(e.parallel_rounds(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let protocol = FetProtocol::new(6).unwrap();
            let mut e =
                AsyncEngine::new(protocol, spec(60), InitialCondition::Random, seed).unwrap();
            let r = e.run_parallel_rounds(5_000, ConvergenceCriterion::new(2));
            (r.converged_at, e.ticks())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn oversized_population_rejected() {
        let protocol = FetProtocol::new(4).unwrap();
        let spec_big = ProblemSpec::single_source(1 << 40, Opinion::One).unwrap();
        assert!(matches!(
            AsyncEngine::new(protocol, spec_big, InitialCondition::Random, 1),
            Err(SimError::UnsupportedPopulation { .. })
        ));
    }
}
