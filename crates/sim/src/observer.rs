//! Round observers: hooks for recording trajectories and statistics.

use serde::{Deserialize, Serialize};

/// Per-round snapshot delivered to observers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundSnapshot {
    /// Round index `t` (0 is the initial configuration).
    pub round: u64,
    /// Fraction of *all* agents (sources included) holding opinion 1 —
    /// the paper's `x_t`.
    pub fraction_ones: f64,
    /// Fraction of non-source agents currently deciding the correct
    /// opinion.
    pub fraction_correct: f64,
}

/// Observer of a simulation run; called once per recorded round, including
/// round 0 (the initial configuration).
pub trait RoundObserver {
    /// Receives one round snapshot.
    fn on_round(&mut self, snapshot: RoundSnapshot);
}

/// Observer that ignores everything (zero-cost default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    fn on_round(&mut self, _snapshot: RoundSnapshot) {}
}

/// Records the full `x_t` trajectory.
///
/// # Example
///
/// ```
/// use fet_sim::observer::{RoundObserver, RoundSnapshot, TrajectoryRecorder};
///
/// let mut rec = TrajectoryRecorder::new();
/// rec.on_round(RoundSnapshot { round: 0, fraction_ones: 0.25, fraction_correct: 0.25 });
/// assert_eq!(rec.fractions(), &[0.25]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrajectoryRecorder {
    fractions: Vec<f64>,
    correct: Vec<f64>,
}

impl TrajectoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TrajectoryRecorder::default()
    }

    /// The recorded `x_t` series, one entry per round starting at round 0.
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// The recorded fraction-correct series.
    pub fn fractions_correct(&self) -> &[f64] {
        &self.correct
    }

    /// Consumes the recorder, returning the `x_t` series.
    pub fn into_fractions(self) -> Vec<f64> {
        self.fractions
    }

    /// Consecutive pairs `(x_t, x_{t+1})` — the paper's grid points.
    pub fn pairs(&self) -> Vec<(f64, f64)> {
        self.fractions.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

impl RoundObserver for TrajectoryRecorder {
    fn on_round(&mut self, snapshot: RoundSnapshot) {
        self.fractions.push(snapshot.fraction_ones);
        self.correct.push(snapshot.fraction_correct);
    }
}

/// Fans one snapshot stream out to two observers.
#[derive(Debug, Default)]
pub struct PairObserver<A, B> {
    /// First observer.
    pub first: A,
    /// Second observer.
    pub second: B,
}

impl<A: RoundObserver, B: RoundObserver> RoundObserver for PairObserver<A, B> {
    fn on_round(&mut self, snapshot: RoundSnapshot) {
        self.first.on_round(snapshot);
        self.second.on_round(snapshot);
    }
}

impl<F: FnMut(RoundSnapshot)> RoundObserver for F {
    fn on_round(&mut self, snapshot: RoundSnapshot) {
        self(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(round: u64, x: f64) -> RoundSnapshot {
        RoundSnapshot {
            round,
            fraction_ones: x,
            fraction_correct: x,
        }
    }

    #[test]
    fn trajectory_records_in_order() {
        let mut rec = TrajectoryRecorder::new();
        for (t, x) in [(0u64, 0.1), (1, 0.4), (2, 0.9)] {
            rec.on_round(snap(t, x));
        }
        assert_eq!(rec.fractions(), &[0.1, 0.4, 0.9]);
        assert_eq!(rec.pairs(), vec![(0.1, 0.4), (0.4, 0.9)]);
    }

    #[test]
    fn pair_observer_feeds_both() {
        let mut pair = PairObserver {
            first: TrajectoryRecorder::new(),
            second: TrajectoryRecorder::new(),
        };
        pair.on_round(snap(0, 0.5));
        assert_eq!(pair.first.fractions(), &[0.5]);
        assert_eq!(pair.second.fractions(), &[0.5]);
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut f = |s: RoundSnapshot| seen.push(s.round);
            f.on_round(snap(3, 0.2));
        }
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn null_observer_is_inert() {
        let mut n = NullObserver;
        n.on_round(snap(0, 0.0)); // must not panic
    }
}
