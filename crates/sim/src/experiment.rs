//! One-call experiment entry points.
//!
//! [`ExperimentSpec`] bundles everything a single convergence run needs —
//! population, protocol parameterization, fidelity, budgets, seed — behind
//! a builder, and [`run_fet_once`]/[`run_protocol_once`] execute it
//! through the unified [`Simulation`] facade. Prefer the facade directly for anything beyond a plain
//! single-run; this module remains as the stable one-call surface the
//! bench harness sweeps are written against.

use crate::convergence::{ConvergenceCriterion, ConvergenceReport};
use crate::engine::Fidelity;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::init::InitialCondition;
use crate::simulation::Simulation;
use fet_core::config::ProblemSpec;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_core::protocol::Protocol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default sample-size constant: `ℓ = ⌈c·ln n⌉` with `c = 4`.
pub use crate::simulation::DEFAULT_SAMPLE_CONSTANT;

/// Everything one convergence run needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Population size.
    pub n: u64,
    /// Number of source agents.
    pub num_sources: u64,
    /// The correct opinion.
    pub correct: Opinion,
    /// Sample-size constant `c` in `ℓ = ⌈c·ln n⌉`.
    pub sample_constant: f64,
    /// Explicit `ℓ` override (wins over `sample_constant` when set).
    pub ell_override: Option<u32>,
    /// Observation-generation fidelity.
    pub fidelity: Fidelity,
    /// Round budget.
    pub max_rounds: u64,
    /// Consecutive all-correct rounds required to confirm convergence.
    pub stability_window: u64,
    /// Root seed.
    pub seed: u64,
    /// Fault plan (defaults to none).
    pub fault: FaultPlan,
}

impl ExperimentSpec {
    /// Starts a builder for a population of `n` agents.
    pub fn builder(n: u64) -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::new(n)
    }

    /// The `ℓ` this spec resolves to.
    pub fn ell(&self) -> u32 {
        match self.ell_override {
            Some(e) => e,
            None => fet_core::config::ell_for_population(self.n, self.sample_constant),
        }
    }

    /// The problem instance.
    ///
    /// # Errors
    ///
    /// Propagates `ProblemSpec` validation failures as [`SimError::Core`].
    pub fn problem(&self) -> Result<ProblemSpec, SimError> {
        Ok(ProblemSpec::new(self.n, self.num_sources, self.correct)?)
    }

    /// The FET protocol instance this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates protocol validation failures as [`SimError::Core`].
    pub fn fet(&self) -> Result<FetProtocol, SimError> {
        Ok(FetProtocol::new(self.ell())?)
    }

    /// The convergence criterion.
    pub fn criterion(&self) -> ConvergenceCriterion {
        ConvergenceCriterion::new(self.stability_window)
    }
}

/// Builder for [`ExperimentSpec`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    spec: ExperimentSpec,
}

impl ExperimentSpecBuilder {
    fn new(n: u64) -> Self {
        ExperimentSpecBuilder {
            spec: ExperimentSpec {
                n,
                num_sources: 1,
                correct: Opinion::One,
                sample_constant: DEFAULT_SAMPLE_CONSTANT,
                ell_override: None,
                fidelity: Fidelity::Binomial,
                max_rounds: crate::simulation::default_max_rounds(n),
                stability_window: 3,
                seed: 0,
                fault: FaultPlan::none(),
            },
        }
    }

    /// Sets the number of sources.
    pub fn num_sources(&mut self, k: u64) -> &mut Self {
        self.spec.num_sources = k;
        self
    }

    /// Sets the correct opinion.
    pub fn correct(&mut self, o: Opinion) -> &mut Self {
        self.spec.correct = o;
        self
    }

    /// Sets the sample constant `c` (ℓ = ⌈c·ln n⌉).
    pub fn sample_constant(&mut self, c: f64) -> &mut Self {
        self.spec.sample_constant = c;
        self
    }

    /// Overrides `ℓ` directly (e.g. for the constant-sample-size sweep).
    pub fn ell(&mut self, ell: u32) -> &mut Self {
        self.spec.ell_override = Some(ell);
        self
    }

    /// Sets the fidelity.
    pub fn fidelity(&mut self, f: Fidelity) -> &mut Self {
        self.spec.fidelity = f;
        self
    }

    /// Sets the round budget.
    pub fn max_rounds(&mut self, r: u64) -> &mut Self {
        self.spec.max_rounds = r;
        self
    }

    /// Sets the stability window.
    pub fn stability_window(&mut self, w: u64) -> &mut Self {
        self.spec.stability_window = w;
        self
    }

    /// Sets the root seed.
    pub fn seed(&mut self, s: u64) -> &mut Self {
        self.spec.seed = s;
        self
    }

    /// Sets the fault plan.
    pub fn fault(&mut self, f: FaultPlan) -> &mut Self {
        self.spec.fault = f;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the population or protocol parameters are
    /// invalid, or when the fidelity is [`Fidelity::Aggregate`] — the
    /// one-call helpers drive per-agent engines whose protocol is only
    /// chosen at run time, so aggregate runs go through
    /// [`Simulation::builder`](crate::simulation::Simulation::builder)
    /// where the protocol's Observation 1 structure can be checked.
    pub fn build(&self) -> Result<ExperimentSpec, SimError> {
        self.spec.problem()?;
        self.spec.fet()?;
        if self.spec.fidelity == Fidelity::Aggregate {
            return Err(SimError::InvalidParameter {
                name: "fidelity",
                detail: "ExperimentSpec drives per-agent runs; use \
                         `Simulation::builder().fidelity(Fidelity::Aggregate)` instead"
                    .into(),
            });
        }
        Ok(self.spec)
    }
}

/// Outcome of one run: the convergence report plus the recorded `x_t`
/// trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Convergence result.
    pub report: ConvergenceReport,
    /// `x_t` per round, starting at round 0.
    pub trajectory: Vec<f64>,
}

impl RunOutcome {
    /// `true` when the run converged within budget.
    pub fn converged(&self) -> bool {
        self.report.converged()
    }
}

/// Runs FET once per `spec` from the given initial condition.
///
/// # Panics
///
/// Panics if the spec fails validation — build specs through
/// [`ExperimentSpec::builder`], which validates eagerly.
pub fn run_fet_once(spec: &ExperimentSpec, init: InitialCondition) -> RunOutcome {
    let protocol = spec.fet().expect("spec validated at build time");
    run_protocol_once(protocol, spec, init)
}

/// Runs an arbitrary protocol once per `spec` from the given initial
/// condition, through the unified [`Simulation`] facade.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn run_protocol_once<P>(
    protocol: P,
    spec: &ExperimentSpec,
    init: InitialCondition,
) -> RunOutcome
where
    P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    let mut sim = Simulation::builder()
        .population(spec.n)
        .sources(spec.num_sources)
        .correct(spec.correct)
        .protocol(protocol)
        .fidelity(spec.fidelity)
        .init(init)
        .fault(spec.fault)
        .seed(spec.seed)
        .max_rounds(spec.max_rounds)
        .stability_window(spec.stability_window)
        .record_trajectory(true)
        .build()
        .expect("spec validated at build time");
    let run = sim.run();
    RunOutcome {
        report: run.report,
        trajectory: run.trajectory.expect("trajectory recording requested"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let spec = ExperimentSpec::builder(1000).build().unwrap();
        assert_eq!(spec.num_sources, 1);
        assert_eq!(spec.correct, Opinion::One);
        assert!(spec.ell() >= 27, "ℓ = 4·ln(1000) ≈ 27.6 → 28");
        assert!(spec.max_rounds > 1000);
    }

    #[test]
    fn ell_override_wins() {
        let spec = ExperimentSpec::builder(1000).ell(5).build().unwrap();
        assert_eq!(spec.ell(), 5);
    }

    #[test]
    fn builder_rejects_bad_population() {
        assert!(ExperimentSpec::builder(1).build().is_err());
        assert!(ExperimentSpec::builder(10).num_sources(10).build().is_err());
    }

    #[test]
    fn builder_rejects_aggregate_fidelity() {
        // The one-call helpers would otherwise panic at run time with a
        // message claiming the spec was validated.
        let err = ExperimentSpec::builder(1_000)
            .fidelity(Fidelity::Aggregate)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("Simulation::builder"), "{err}");
    }

    #[test]
    fn run_fet_once_converges_and_records() {
        let spec = ExperimentSpec::builder(400).seed(21).build().unwrap();
        let outcome = run_fet_once(&spec, InitialCondition::AllWrong);
        assert!(outcome.converged(), "{:?}", outcome.report);
        assert_eq!(
            outcome.trajectory.len() as u64,
            outcome.report.rounds_run + 1
        );
        assert_eq!(*outcome.trajectory.last().unwrap(), 1.0);
        // Starts all-wrong: only the source holds 1.
        assert!((outcome.trajectory[0] - 1.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let spec = ExperimentSpec::builder(300).seed(77).build().unwrap();
        let a = run_fet_once(&spec, InitialCondition::Random);
        let b = run_fet_once(&spec, InitialCondition::Random);
        assert_eq!(a, b);
    }

    #[test]
    fn correct_zero_round_trip() {
        let spec = ExperimentSpec::builder(300)
            .correct(Opinion::Zero)
            .seed(5)
            .build()
            .unwrap();
        let outcome = run_fet_once(&spec, InitialCondition::AllWrong);
        assert!(outcome.converged());
        assert_eq!(*outcome.trajectory.last().unwrap(), 0.0);
    }
}
