//! One-call experiment entry points.
//!
//! [`ExperimentSpec`] bundles everything a single convergence run needs —
//! population, protocol parameterization, fidelity, budgets, seed — behind
//! a builder, and [`run_fet_once`]/[`run_protocol_once`] execute it. The
//! examples, CLI, and bench harness are all thin layers over this module.

use crate::convergence::{ConvergenceCriterion, ConvergenceReport};
use crate::engine::{Engine, Fidelity};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::init::InitialCondition;
use crate::observer::TrajectoryRecorder;
use fet_core::config::ProblemSpec;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_core::protocol::Protocol;
use serde::{Deserialize, Serialize};

/// Default sample-size constant: `ℓ = ⌈c·ln n⌉` with `c = 4`.
pub const DEFAULT_SAMPLE_CONSTANT: f64 = 4.0;

/// Everything one convergence run needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Population size.
    pub n: u64,
    /// Number of source agents.
    pub num_sources: u64,
    /// The correct opinion.
    pub correct: Opinion,
    /// Sample-size constant `c` in `ℓ = ⌈c·ln n⌉`.
    pub sample_constant: f64,
    /// Explicit `ℓ` override (wins over `sample_constant` when set).
    pub ell_override: Option<u32>,
    /// Observation-generation fidelity.
    pub fidelity: Fidelity,
    /// Round budget.
    pub max_rounds: u64,
    /// Consecutive all-correct rounds required to confirm convergence.
    pub stability_window: u64,
    /// Root seed.
    pub seed: u64,
    /// Fault plan (defaults to none).
    pub fault: FaultPlan,
}

impl ExperimentSpec {
    /// Starts a builder for a population of `n` agents.
    pub fn builder(n: u64) -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::new(n)
    }

    /// The `ℓ` this spec resolves to.
    pub fn ell(&self) -> u32 {
        match self.ell_override {
            Some(e) => e,
            None => ((self.sample_constant * (self.n as f64).ln()).ceil() as u32).max(1),
        }
    }

    /// The problem instance.
    ///
    /// # Errors
    ///
    /// Propagates `ProblemSpec` validation failures as [`SimError::Core`].
    pub fn problem(&self) -> Result<ProblemSpec, SimError> {
        Ok(ProblemSpec::new(self.n, self.num_sources, self.correct)?)
    }

    /// The FET protocol instance this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates protocol validation failures as [`SimError::Core`].
    pub fn fet(&self) -> Result<FetProtocol, SimError> {
        Ok(FetProtocol::new(self.ell())?)
    }

    /// The convergence criterion.
    pub fn criterion(&self) -> ConvergenceCriterion {
        ConvergenceCriterion::new(self.stability_window)
    }
}

/// Builder for [`ExperimentSpec`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    spec: ExperimentSpec,
}

impl ExperimentSpecBuilder {
    fn new(n: u64) -> Self {
        ExperimentSpecBuilder {
            spec: ExperimentSpec {
                n,
                num_sources: 1,
                correct: Opinion::One,
                sample_constant: DEFAULT_SAMPLE_CONSTANT,
                ell_override: None,
                fidelity: Fidelity::Binomial,
                max_rounds: default_max_rounds(n),
                stability_window: 3,
                seed: 0,
                fault: FaultPlan::none(),
            },
        }
    }

    /// Sets the number of sources.
    pub fn num_sources(&mut self, k: u64) -> &mut Self {
        self.spec.num_sources = k;
        self
    }

    /// Sets the correct opinion.
    pub fn correct(&mut self, o: Opinion) -> &mut Self {
        self.spec.correct = o;
        self
    }

    /// Sets the sample constant `c` (ℓ = ⌈c·ln n⌉).
    pub fn sample_constant(&mut self, c: f64) -> &mut Self {
        self.spec.sample_constant = c;
        self
    }

    /// Overrides `ℓ` directly (e.g. for the constant-sample-size sweep).
    pub fn ell(&mut self, ell: u32) -> &mut Self {
        self.spec.ell_override = Some(ell);
        self
    }

    /// Sets the fidelity.
    pub fn fidelity(&mut self, f: Fidelity) -> &mut Self {
        self.spec.fidelity = f;
        self
    }

    /// Sets the round budget.
    pub fn max_rounds(&mut self, r: u64) -> &mut Self {
        self.spec.max_rounds = r;
        self
    }

    /// Sets the stability window.
    pub fn stability_window(&mut self, w: u64) -> &mut Self {
        self.spec.stability_window = w;
        self
    }

    /// Sets the root seed.
    pub fn seed(&mut self, s: u64) -> &mut Self {
        self.spec.seed = s;
        self
    }

    /// Sets the fault plan.
    pub fn fault(&mut self, f: FaultPlan) -> &mut Self {
        self.spec.fault = f;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the population or protocol parameters are
    /// invalid.
    pub fn build(&self) -> Result<ExperimentSpec, SimError> {
        self.spec.problem()?;
        self.spec.fet()?;
        Ok(self.spec)
    }
}

/// Generous default budget: `200 · log²(n)` rounds, far above the paper's
/// `O(log^{5/2} n)` expectation at practical sizes while still bounded.
fn default_max_rounds(n: u64) -> u64 {
    let ln = (n.max(2) as f64).ln();
    (200.0 * ln * ln).ceil() as u64
}

/// Outcome of one run: the convergence report plus the recorded `x_t`
/// trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Convergence result.
    pub report: ConvergenceReport,
    /// `x_t` per round, starting at round 0.
    pub trajectory: Vec<f64>,
}

impl RunOutcome {
    /// `true` when the run converged within budget.
    pub fn converged(&self) -> bool {
        self.report.converged()
    }
}

/// Runs FET once per `spec` from the given initial condition.
///
/// # Panics
///
/// Panics if the spec fails validation — build specs through
/// [`ExperimentSpec::builder`], which validates eagerly.
pub fn run_fet_once(spec: &ExperimentSpec, init: InitialCondition) -> RunOutcome {
    let protocol = spec.fet().expect("spec validated at build time");
    run_protocol_once(protocol, spec, init)
}

/// Runs an arbitrary protocol once per `spec` from the given initial
/// condition.
///
/// # Panics
///
/// Panics if the spec fails validation.
pub fn run_protocol_once<P: Protocol>(
    protocol: P,
    spec: &ExperimentSpec,
    init: InitialCondition,
) -> RunOutcome {
    let problem = spec.problem().expect("spec validated at build time");
    let mut engine = Engine::new(protocol, problem, spec.fidelity, init, spec.seed)
        .expect("spec validated at build time");
    engine.set_fault_plan(spec.fault);
    let mut recorder = TrajectoryRecorder::new();
    let report = engine.run(spec.max_rounds, spec.criterion(), &mut recorder);
    RunOutcome { report, trajectory: recorder.into_fractions() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let spec = ExperimentSpec::builder(1000).build().unwrap();
        assert_eq!(spec.num_sources, 1);
        assert_eq!(spec.correct, Opinion::One);
        assert!(spec.ell() >= 27, "ℓ = 4·ln(1000) ≈ 27.6 → 28");
        assert!(spec.max_rounds > 1000);
    }

    #[test]
    fn ell_override_wins() {
        let spec = ExperimentSpec::builder(1000).ell(5).build().unwrap();
        assert_eq!(spec.ell(), 5);
    }

    #[test]
    fn builder_rejects_bad_population() {
        assert!(ExperimentSpec::builder(1).build().is_err());
        assert!(ExperimentSpec::builder(10).num_sources(10).build().is_err());
    }

    #[test]
    fn run_fet_once_converges_and_records() {
        let spec = ExperimentSpec::builder(400).seed(21).build().unwrap();
        let outcome = run_fet_once(&spec, InitialCondition::AllWrong);
        assert!(outcome.converged(), "{:?}", outcome.report);
        assert_eq!(outcome.trajectory.len() as u64, outcome.report.rounds_run + 1);
        assert_eq!(*outcome.trajectory.last().unwrap(), 1.0);
        // Starts all-wrong: only the source holds 1.
        assert!((outcome.trajectory[0] - 1.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let spec = ExperimentSpec::builder(300).seed(77).build().unwrap();
        let a = run_fet_once(&spec, InitialCondition::Random);
        let b = run_fet_once(&spec, InitialCondition::Random);
        assert_eq!(a, b);
    }

    #[test]
    fn correct_zero_round_trip() {
        let spec =
            ExperimentSpec::builder(300).correct(Opinion::Zero).seed(5).build().unwrap();
        let outcome = run_fet_once(&spec, InitialCondition::AllWrong);
        assert!(outcome.converged());
        assert_eq!(*outcome.trajectory.last().unwrap(), 0.0);
    }
}
