//! The communication-structure abstraction.
//!
//! The paper's model is fully connected: every agent samples the whole
//! population. `fet-topology` relaxes that to explicit graphs — but it
//! sits *above* this crate in the dependency order, so the engine cannot
//! name its `Graph` type. [`Neighborhood`] inverts the dependency: it is
//! the minimal object-safe view of a communication structure the engine
//! needs (vertex count + observable-neighbor lists), implemented by
//! `fet_topology::graph::Graph` and by anything else downstream crates
//! dream up (dynamic graphs, weighted overlays, …).

use crate::error::SimError;
use std::fmt;

/// Who each agent may observe: the engine-facing view of a topology.
///
/// Vertices are `0..population()`; sources occupy the lowest indices. An
/// agent at vertex `v` samples **with replacement** from `neighbors_of(v)`.
pub trait Neighborhood: fmt::Debug + Send + Sync {
    /// Number of vertices (= population size).
    fn population(&self) -> u32;

    /// The agents observable from `vertex`, as a slice of vertex ids.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `vertex ≥ population()`.
    fn neighbors_of(&self, vertex: u32) -> &[u32];

    /// Clones the structure behind a box (engines are `Clone`).
    fn clone_box(&self) -> Box<dyn Neighborhood>;
}

impl Clone for Box<dyn Neighborhood> {
    fn clone(&self) -> Self {
        (**self).clone_box()
    }
}

/// Validates that every vertex can observe someone; an isolated vertex
/// would deadlock the PULL model (no observation to deliver).
pub fn ensure_observable(topology: &dyn Neighborhood) -> Result<(), SimError> {
    for v in 0..topology.population() {
        if topology.neighbors_of(v).is_empty() {
            return Err(SimError::InvalidParameter {
                name: "topology",
                detail: format!("vertex {v} has no neighbors to observe"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A ring, directly on the trait (no `fet-topology` available here).
    #[derive(Debug, Clone)]
    pub(crate) struct Ring {
        pub(crate) links: Vec<Vec<u32>>,
    }

    impl Ring {
        pub(crate) fn new(n: u32) -> Ring {
            let links = (0..n).map(|v| vec![(v + n - 1) % n, (v + 1) % n]).collect();
            Ring { links }
        }
    }

    impl Neighborhood for Ring {
        fn population(&self) -> u32 {
            self.links.len() as u32
        }
        fn neighbors_of(&self, vertex: u32) -> &[u32] {
            &self.links[vertex as usize]
        }
        fn clone_box(&self) -> Box<dyn Neighborhood> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn boxed_clone_preserves_structure() {
        let b: Box<dyn Neighborhood> = Box::new(Ring::new(5));
        let c = b.clone();
        assert_eq!(c.population(), 5);
        assert_eq!(c.neighbors_of(0), &[4, 1]);
    }

    #[test]
    fn ensure_observable_flags_isolated_vertices() {
        let mut ring = Ring::new(4);
        assert!(ensure_observable(&ring).is_ok());
        ring.links[2].clear();
        let err = ensure_observable(&ring).unwrap_err();
        assert!(err.to_string().contains("vertex 2"));
    }
}
