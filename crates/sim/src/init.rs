//! Basic initial conditions for non-source agents.
//!
//! Self-stabilization quantifies over *all* initial configurations; these
//! are the standard ones every experiment needs. The genuinely adversarial
//! constructions (targeted `(x_0, x_1)` placement, worst-case search, the
//! §1.2 impossibility states) live in `fet-adversary`, which builds on the
//! accessors the engine exposes.

use fet_core::opinion::Opinion;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How non-source agents' *opinions* are set at round 0 (internal protocol
/// variables are always drawn arbitrarily via `Protocol::init_state`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitialCondition {
    /// Every non-source agent starts on the **wrong** opinion — the classic
    /// hard case (rumor-spreading-style protocols die here).
    AllWrong,
    /// Every non-source agent starts on the correct opinion (tests that
    /// consensus on the correct value is stable).
    AllCorrect,
    /// Each non-source agent holds the *correct* opinion independently with
    /// the given probability.
    FractionCorrect(f64),
    /// Uniformly random opinions (`FractionCorrect(0.5)` semantics).
    Random,
}

impl InitialCondition {
    /// Draws the initial opinion of one non-source agent, given the correct
    /// opinion of the instance.
    pub fn draw<R: Rng + ?Sized>(&self, correct: Opinion, rng: &mut R) -> Opinion {
        match self {
            InitialCondition::AllWrong => !correct,
            InitialCondition::AllCorrect => correct,
            InitialCondition::FractionCorrect(p) => {
                if rng.gen::<f64>() < *p {
                    correct
                } else {
                    !correct
                }
            }
            InitialCondition::Random => {
                if rng.gen::<bool>() {
                    correct
                } else {
                    !correct
                }
            }
        }
    }

    /// A short label for tables and CSV output.
    pub fn label(&self) -> String {
        match self {
            InitialCondition::AllWrong => "all-wrong".to_string(),
            InitialCondition::AllCorrect => "all-correct".to_string(),
            InitialCondition::FractionCorrect(p) => format!("frac-correct-{p:.2}"),
            InitialCondition::Random => "random".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    #[test]
    fn deterministic_conditions() {
        let mut rng = SeedTree::new(1).child("init").rng();
        for correct in [Opinion::Zero, Opinion::One] {
            assert_eq!(InitialCondition::AllWrong.draw(correct, &mut rng), !correct);
            assert_eq!(
                InitialCondition::AllCorrect.draw(correct, &mut rng),
                correct
            );
        }
    }

    #[test]
    fn fraction_correct_statistics() {
        let mut rng = SeedTree::new(2).child("frac").rng();
        let cond = InitialCondition::FractionCorrect(0.8);
        let n = 50_000;
        let correct_hits = (0..n)
            .filter(|_| cond.draw(Opinion::One, &mut rng) == Opinion::One)
            .count();
        let frac = correct_hits as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn random_is_balanced() {
        let mut rng = SeedTree::new(3).child("rand").rng();
        let n = 50_000;
        let ones = (0..n)
            .filter(|_| InitialCondition::Random.draw(Opinion::One, &mut rng) == Opinion::One)
            .count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> = [
            InitialCondition::AllWrong,
            InitialCondition::AllCorrect,
            InitialCondition::FractionCorrect(0.25),
            InitialCondition::Random,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
