//! Deterministic multi-threaded replication.
//!
//! Every replicate derives its seed from the experiment's [`SeedTree`] by
//! index, so results are bit-identical regardless of thread count — the
//! batch layer only changes *when* replicates run, never *what* they
//! compute.
//!
//! Since PR 6 the execution itself is delegated to the workspace-wide
//! work-stealing runner ([`fet_core::pool`]) — the same injector +
//! per-worker-deque scheduler the episode-parallel sweep engine
//! (`fet-sweep`) saturates cores with. This module keeps only the
//! replicate-shaped API (`parallel_map`, [`run_replicated`]) and the
//! summary statistics; its former bespoke chunked thread loop is gone.
//!
//! [`SeedTree`]: fet_stats::rng::SeedTree

use crate::convergence::ConvergenceReport;
use fet_stats::summary::{wilson_interval, Summary, WelfordAccumulator};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// Runs on the workspace work-stealing pool
/// ([`fet_core::pool::run_indexed`]): jobs are keyed by index and write
/// only their own result slot, so the output is identical for every
/// thread count.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
///
/// # Example
///
/// ```
/// use fet_sim::batch::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fet_core::pool::run_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Aggregated outcome of a batch of convergence runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Number of replicates.
    pub replicates: u64,
    /// Number that converged within budget.
    pub successes: u64,
    /// Wilson 95% interval for the success probability.
    pub success_ci: (f64, f64),
    /// Convergence-time statistics over *successful* replicates
    /// (`None` when none succeeded).
    pub time: Option<TimeStats>,
}

/// Convergence-time statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeStats {
    /// Mean convergence round.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum observed.
    pub max: f64,
}

impl BatchSummary {
    /// Builds a summary from individual reports.
    ///
    /// # Panics
    ///
    /// Panics when `reports` is empty.
    pub fn from_reports(reports: &[ConvergenceReport]) -> Self {
        assert!(
            !reports.is_empty(),
            "batch summary needs at least one report"
        );
        let replicates = reports.len() as u64;
        let times: Vec<f64> = reports
            .iter()
            .filter_map(|r| r.converged_at.map(|t| t as f64))
            .collect();
        let successes = times.len() as u64;
        let success_ci = wilson_interval(successes, replicates, 0.95);
        let time = if times.is_empty() {
            None
        } else {
            let s = Summary::from_slice(&times).expect("nonempty, finite");
            Some(TimeStats {
                mean: s.mean(),
                std: s.std(),
                median: s.median(),
                p95: s.quantile(0.95),
                max: s.max(),
            })
        };
        BatchSummary {
            replicates,
            successes,
            success_ci,
            time,
        }
    }

    /// Empirical success rate.
    pub fn success_rate(&self) -> f64 {
        self.successes as f64 / self.replicates as f64
    }
}

/// Runs `replicates` convergence experiments in parallel and summarizes.
///
/// `run` receives the replicate index and must be deterministic in it
/// (derive seeds from it).
pub fn run_replicated<F>(
    replicates: u64,
    threads: usize,
    run: F,
) -> (Vec<ConvergenceReport>, BatchSummary)
where
    F: Fn(u64) -> ConvergenceReport + Sync,
{
    let indices: Vec<u64> = (0..replicates).collect();
    let reports = parallel_map(&indices, threads, |&i| run(i));
    let summary = BatchSummary::from_reports(&reports);
    (reports, summary)
}

/// A thread-safe streaming accumulator for scalar metrics collected during
/// batches (shared via reference across workers).
#[derive(Debug, Default)]
pub struct SharedAccumulator {
    inner: Mutex<WelfordAccumulator>,
}

impl SharedAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SharedAccumulator::default()
    }

    /// Records one observation.
    pub fn push(&self, x: f64) {
        self.inner
            .lock()
            .expect("accumulator lock poisoned")
            .push(x);
    }

    /// Snapshot of the current statistics.
    pub fn snapshot(&self) -> WelfordAccumulator {
        *self.inner.lock().expect("accumulator lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, 7, |&x| x * 2);
        for (i, &v) in doubled.iter().enumerate() {
            assert_eq!(v, 2 * i as u64);
        }
    }

    #[test]
    fn parallel_map_thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let one = parallel_map(&items, 1, |&x| x.wrapping_mul(x) ^ 0xabc);
        let many = parallel_map(&items, 16, |&x| x.wrapping_mul(x) ^ 0xabc);
        assert_eq!(one, many);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u64], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn batch_summary_mixed_outcomes() {
        let ok = |t: u64| ConvergenceReport {
            converged_at: Some(t),
            rounds_run: t + 1,
            final_fraction_correct: 1.0,
        };
        let fail = ConvergenceReport {
            converged_at: None,
            rounds_run: 100,
            final_fraction_correct: 0.3,
        };
        let reports = vec![ok(10), ok(20), ok(30), fail];
        let s = BatchSummary::from_reports(&reports);
        assert_eq!(s.replicates, 4);
        assert_eq!(s.successes, 3);
        assert!((s.success_rate() - 0.75).abs() < 1e-12);
        let t = s.time.unwrap();
        assert!((t.mean - 20.0).abs() < 1e-12);
        assert_eq!(t.median, 20.0);
        assert_eq!(t.max, 30.0);
    }

    #[test]
    fn batch_summary_all_failures_has_no_time() {
        let fail = ConvergenceReport {
            converged_at: None,
            rounds_run: 5,
            final_fraction_correct: 0.0,
        };
        let s = BatchSummary::from_reports(&[fail, fail]);
        assert_eq!(s.successes, 0);
        assert!(s.time.is_none());
    }

    #[test]
    fn run_replicated_is_deterministic() {
        let run = |i: u64| ConvergenceReport {
            converged_at: Some(i * 3 % 17),
            rounds_run: 100,
            final_fraction_correct: 1.0,
        };
        let (r1, s1) = run_replicated(50, 4, run);
        let (r2, s2) = run_replicated(50, 2, run);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn shared_accumulator_collects_across_threads() {
        let acc = SharedAccumulator::new();
        let items: Vec<u64> = (1..=100).collect();
        parallel_map(&items, 8, |&x| acc.push(x as f64));
        let snap = acc.snapshot();
        assert_eq!(snap.count(), 100);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }
}
