//! Convergence detection.
//!
//! The paper defines the running time `t_con` as "the first round that the
//! configuration of opinions reached a consensus on the correct opinion,
//! and remained unchanged forever after". A finite run cannot certify
//! "forever"; the detector instead requires the all-correct configuration
//! to persist for a configurable *stability window*. For FET with a source
//! the all-correct configuration is genuinely absorbing — once everyone
//! agrees, every sample is unanimous, every comparison ties, and ties keep —
//! so any window ≥ 1 identifies the true `t_con`; baselines without an
//! absorbing state need larger windows.

use crate::fault::FaultEventKind;
use serde::{Deserialize, Serialize};

/// When to declare convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceCriterion {
    /// Number of consecutive all-correct rounds required.
    pub stability_window: u64,
}

impl ConvergenceCriterion {
    /// Criterion with the given stability window (clamped to ≥ 1).
    pub fn new(stability_window: u64) -> Self {
        ConvergenceCriterion {
            stability_window: stability_window.max(1),
        }
    }

    /// The paper-appropriate default for a population of `n`:
    /// `⌈log₂ n⌉` rounds.
    pub fn for_population(n: u64) -> Self {
        ConvergenceCriterion::new((64 - n.leading_zeros() as u64).max(1))
    }
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        ConvergenceCriterion::new(1)
    }
}

/// Streaming detector fed once per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceDetector {
    criterion: ConvergenceCriterion,
    streak_start: Option<u64>,
    confirmed_at: Option<u64>,
}

impl ConvergenceDetector {
    /// Creates a detector.
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        ConvergenceDetector {
            criterion,
            streak_start: None,
            confirmed_at: None,
        }
    }

    /// Feeds the state of one round: whether *all* non-source agents
    /// currently decide the correct opinion. Returns `true` once
    /// convergence is confirmed (and from then on).
    pub fn observe(&mut self, round: u64, all_correct: bool) -> bool {
        if self.confirmed_at.is_some() {
            return true;
        }
        if all_correct {
            let start = *self.streak_start.get_or_insert(round);
            if round + 1 - start >= self.criterion.stability_window {
                self.confirmed_at = Some(start);
                return true;
            }
        } else {
            self.streak_start = None;
        }
        false
    }

    /// The confirmed convergence round `t_con` (start of the surviving
    /// streak), if any.
    pub fn converged_at(&self) -> Option<u64> {
        self.confirmed_at
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// `t_con`: first round of the stability-confirmed all-correct streak.
    pub converged_at: Option<u64>,
    /// Total rounds executed.
    pub rounds_run: u64,
    /// Fraction of non-source agents deciding correctly at the end.
    pub final_fraction_correct: f64,
}

impl ConvergenceReport {
    /// `true` when the run converged within its round budget.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Convergence time as a float, or `NaN` when the run failed —
    /// convenient for summaries that filter with `is_finite`.
    pub fn time_or_nan(&self) -> f64 {
        self.converged_at.map_or(f64::NAN, |t| t as f64)
    }
}

/// Recovery outcome of one fault-schedule event.
///
/// A record opens when its event fires and tracks two milestones against
/// the *post-event* correct opinion:
///
/// * **adaptation** — the first round at which every non-source agent
///   decides correctly again (`adapted_at`);
/// * **re-stabilization** — the start of the first all-correct streak
///   that persists for the run's stability window (`restabilized_at`).
///
/// Both stay `None` when the run never recovers before the next event or
/// the round budget — under persistent noise that is the expected
/// outcome, not an error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Round at whose start the event fired.
    pub event_round: u64,
    /// What kind of event perturbed the run.
    pub kind: FaultEventKind,
    /// First all-correct round at or after the event, if any.
    pub adapted_at: Option<u64>,
    /// Start of the first stability-window-long all-correct streak at or
    /// after the event, if any.
    pub restabilized_at: Option<u64>,
}

impl RecoveryRecord {
    /// Rounds from the event to the first all-correct round.
    pub fn adaptation_latency(&self) -> Option<u64> {
        self.adapted_at.map(|r| r - self.event_round)
    }

    /// Rounds from the event to the start of the surviving streak.
    pub fn restabilization_time(&self) -> Option<u64> {
        self.restabilized_at.map(|r| r - self.event_round)
    }
}

/// Streaming per-event recovery bookkeeping, fed once per round like
/// [`ConvergenceDetector`]. Opening an event closes the previous one (its
/// milestones freeze), so each record measures recovery within its own
/// inter-event window.
#[derive(Debug, Clone)]
pub struct RecoveryTracker {
    criterion: ConvergenceCriterion,
    records: Vec<RecoveryRecord>,
    /// Index of the still-open record, with its current streak start.
    open: Option<(usize, Option<u64>)>,
}

impl RecoveryTracker {
    /// Creates a tracker confirming re-stabilization with `criterion`.
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        RecoveryTracker {
            criterion,
            records: Vec::new(),
            open: None,
        }
    }

    /// Registers an event firing at the start of `round`: freezes the
    /// previous record (if still open) and opens a new one.
    pub fn on_event(&mut self, round: u64, kind: FaultEventKind) {
        self.records.push(RecoveryRecord {
            event_round: round,
            kind,
            adapted_at: None,
            restabilized_at: None,
        });
        self.open = Some((self.records.len() - 1, None));
    }

    /// Feeds the state of one round (same convention as
    /// [`ConvergenceDetector::observe`]).
    pub fn observe(&mut self, round: u64, all_correct: bool) {
        let Some((idx, streak_start)) = self.open.as_mut() else {
            return;
        };
        if all_correct {
            let record = &mut self.records[*idx];
            record.adapted_at.get_or_insert(round);
            let start = *streak_start.get_or_insert(round);
            if round + 1 - start >= self.criterion.stability_window {
                record.restabilized_at = Some(start);
                self.open = None;
            }
        } else {
            *streak_start = None;
        }
    }

    /// Replaces the re-stabilization criterion. Called at run entry so
    /// the tracker honors the run's stability window even when events
    /// were installed before the criterion was known.
    pub fn set_criterion(&mut self, criterion: ConvergenceCriterion) {
        self.criterion = criterion;
    }

    /// Drops all records and any open streak — used when a fresh
    /// schedule is installed.
    pub fn reset(&mut self) {
        self.records.clear();
        self.open = None;
    }

    /// `true` when no record is still waiting for re-stabilization.
    pub fn is_settled(&self) -> bool {
        self.open.is_none()
    }

    /// The per-event records so far (the last may still be open).
    pub fn records(&self) -> &[RecoveryRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_of_one_confirms_immediately() {
        let mut d = ConvergenceDetector::new(ConvergenceCriterion::new(1));
        assert!(!d.observe(0, false));
        assert!(d.observe(1, true));
        assert_eq!(d.converged_at(), Some(1));
    }

    #[test]
    fn broken_streak_resets() {
        let mut d = ConvergenceDetector::new(ConvergenceCriterion::new(3));
        assert!(!d.observe(0, true));
        assert!(!d.observe(1, true));
        assert!(!d.observe(2, false)); // streak dies at length 2
        assert!(!d.observe(3, true));
        assert!(!d.observe(4, true));
        assert!(d.observe(5, true));
        assert_eq!(d.converged_at(), Some(3), "t_con is the streak start");
    }

    #[test]
    fn confirmation_is_sticky() {
        let mut d = ConvergenceDetector::new(ConvergenceCriterion::new(1));
        assert!(d.observe(0, true));
        // Later rounds cannot un-confirm (the engine stops feeding anyway).
        assert!(d.observe(1, false));
        assert_eq!(d.converged_at(), Some(0));
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let c = ConvergenceCriterion::new(0);
        assert_eq!(c.stability_window, 1);
    }

    #[test]
    fn for_population_scales_logarithmically() {
        assert_eq!(
            ConvergenceCriterion::for_population(1024).stability_window,
            11
        );
        assert_eq!(ConvergenceCriterion::for_population(2).stability_window, 2);
    }

    #[test]
    fn recovery_tracker_measures_adaptation_and_restabilization() {
        let mut t = RecoveryTracker::new(ConvergenceCriterion::new(3));
        assert!(t.is_settled());
        t.observe(0, true); // no open record: ignored
        t.on_event(5, FaultEventKind::TrendSwitch);
        assert!(!t.is_settled());
        t.observe(5, false);
        t.observe(6, true); // adaptation
        t.observe(7, false); // streak broken
        t.observe(8, true);
        t.observe(9, true);
        assert!(!t.is_settled());
        t.observe(10, true); // streak of 3 starting at 8
        assert!(t.is_settled());
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].event_round, 5);
        assert_eq!(records[0].kind, FaultEventKind::TrendSwitch);
        assert_eq!(records[0].adapted_at, Some(6));
        assert_eq!(records[0].restabilized_at, Some(8));
        assert_eq!(records[0].adaptation_latency(), Some(1));
        assert_eq!(records[0].restabilization_time(), Some(3));
    }

    #[test]
    fn next_event_freezes_an_unrecovered_record() {
        let mut t = RecoveryTracker::new(ConvergenceCriterion::new(2));
        t.on_event(0, FaultEventKind::StateCorruption);
        t.observe(0, false);
        t.observe(1, true); // adapted, but streak too short
        t.on_event(2, FaultEventKind::TrendSwitch);
        t.observe(2, true);
        t.observe(3, true);
        let records = t.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].adapted_at, Some(1));
        assert_eq!(
            records[0].restabilized_at, None,
            "frozen by the next event before confirming"
        );
        assert_eq!(records[1].restabilized_at, Some(2));
        assert!(t.is_settled());
    }

    #[test]
    fn report_helpers() {
        let ok = ConvergenceReport {
            converged_at: Some(7),
            rounds_run: 20,
            final_fraction_correct: 1.0,
        };
        assert!(ok.converged());
        assert_eq!(ok.time_or_nan(), 7.0);
        let bad = ConvergenceReport {
            converged_at: None,
            rounds_run: 20,
            final_fraction_correct: 0.4,
        };
        assert!(!bad.converged());
        assert!(bad.time_or_nan().is_nan());
    }
}
