//! Convergence detection.
//!
//! The paper defines the running time `t_con` as "the first round that the
//! configuration of opinions reached a consensus on the correct opinion,
//! and remained unchanged forever after". A finite run cannot certify
//! "forever"; the detector instead requires the all-correct configuration
//! to persist for a configurable *stability window*. For FET with a source
//! the all-correct configuration is genuinely absorbing — once everyone
//! agrees, every sample is unanimous, every comparison ties, and ties keep —
//! so any window ≥ 1 identifies the true `t_con`; baselines without an
//! absorbing state need larger windows.

use serde::{Deserialize, Serialize};

/// When to declare convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceCriterion {
    /// Number of consecutive all-correct rounds required.
    pub stability_window: u64,
}

impl ConvergenceCriterion {
    /// Criterion with the given stability window (clamped to ≥ 1).
    pub fn new(stability_window: u64) -> Self {
        ConvergenceCriterion {
            stability_window: stability_window.max(1),
        }
    }

    /// The paper-appropriate default for a population of `n`:
    /// `⌈log₂ n⌉` rounds.
    pub fn for_population(n: u64) -> Self {
        ConvergenceCriterion::new((64 - n.leading_zeros() as u64).max(1))
    }
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        ConvergenceCriterion::new(1)
    }
}

/// Streaming detector fed once per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceDetector {
    criterion: ConvergenceCriterion,
    streak_start: Option<u64>,
    confirmed_at: Option<u64>,
}

impl ConvergenceDetector {
    /// Creates a detector.
    pub fn new(criterion: ConvergenceCriterion) -> Self {
        ConvergenceDetector {
            criterion,
            streak_start: None,
            confirmed_at: None,
        }
    }

    /// Feeds the state of one round: whether *all* non-source agents
    /// currently decide the correct opinion. Returns `true` once
    /// convergence is confirmed (and from then on).
    pub fn observe(&mut self, round: u64, all_correct: bool) -> bool {
        if self.confirmed_at.is_some() {
            return true;
        }
        if all_correct {
            let start = *self.streak_start.get_or_insert(round);
            if round + 1 - start >= self.criterion.stability_window {
                self.confirmed_at = Some(start);
                return true;
            }
        } else {
            self.streak_start = None;
        }
        false
    }

    /// The confirmed convergence round `t_con` (start of the surviving
    /// streak), if any.
    pub fn converged_at(&self) -> Option<u64> {
        self.confirmed_at
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    /// `t_con`: first round of the stability-confirmed all-correct streak.
    pub converged_at: Option<u64>,
    /// Total rounds executed.
    pub rounds_run: u64,
    /// Fraction of non-source agents deciding correctly at the end.
    pub final_fraction_correct: f64,
}

impl ConvergenceReport {
    /// `true` when the run converged within its round budget.
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Convergence time as a float, or `NaN` when the run failed —
    /// convenient for summaries that filter with `is_finite`.
    pub fn time_or_nan(&self) -> f64 {
        self.converged_at.map_or(f64::NAN, |t| t as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_of_one_confirms_immediately() {
        let mut d = ConvergenceDetector::new(ConvergenceCriterion::new(1));
        assert!(!d.observe(0, false));
        assert!(d.observe(1, true));
        assert_eq!(d.converged_at(), Some(1));
    }

    #[test]
    fn broken_streak_resets() {
        let mut d = ConvergenceDetector::new(ConvergenceCriterion::new(3));
        assert!(!d.observe(0, true));
        assert!(!d.observe(1, true));
        assert!(!d.observe(2, false)); // streak dies at length 2
        assert!(!d.observe(3, true));
        assert!(!d.observe(4, true));
        assert!(d.observe(5, true));
        assert_eq!(d.converged_at(), Some(3), "t_con is the streak start");
    }

    #[test]
    fn confirmation_is_sticky() {
        let mut d = ConvergenceDetector::new(ConvergenceCriterion::new(1));
        assert!(d.observe(0, true));
        // Later rounds cannot un-confirm (the engine stops feeding anyway).
        assert!(d.observe(1, false));
        assert_eq!(d.converged_at(), Some(0));
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let c = ConvergenceCriterion::new(0);
        assert_eq!(c.stability_window, 1);
    }

    #[test]
    fn for_population_scales_logarithmically() {
        assert_eq!(
            ConvergenceCriterion::for_population(1024).stability_window,
            11
        );
        assert_eq!(ConvergenceCriterion::for_population(2).stability_window, 2);
    }

    #[test]
    fn report_helpers() {
        let ok = ConvergenceReport {
            converged_at: Some(7),
            rounds_run: 20,
            final_fraction_correct: 1.0,
        };
        assert!(ok.converged());
        assert_eq!(ok.time_or_nan(), 7.0);
        let bad = ConvergenceReport {
            converged_at: None,
            rounds_run: 20,
            final_fraction_correct: 0.4,
        };
        assert!(!bad.converged());
        assert!(bad.time_or_nan().is_nan());
    }
}
