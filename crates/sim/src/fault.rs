//! Fault injection (extension features, experiment E15).
//!
//! The paper's related work studies rumor spreading under message
//! corruption (Feinerman et al. 2017, Boczkowski et al. 2018a); its §1.2
//! adversary may re-target the source at time 0. This module generalizes
//! both into a per-run [`FaultPlan`]:
//!
//! * **observation noise** — each sampled opinion bit flips independently
//!   with probability `flip_prob` before being counted;
//! * **sleepy agents** — each non-source agent independently skips its
//!   update with probability `sleep_prob` each round (it keeps its output);
//! * **source retargeting** — at a chosen round the correct bit flips,
//!   modelling an environment change after (possible) convergence.

use fet_core::opinion::Opinion;
use fet_stats::binomial::sample_binomial;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Fault schedule for one run. The default plan is fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that each observed opinion bit is flipped (i.i.d.).
    pub flip_prob: f64,
    /// Probability that a non-source agent skips its update in a round.
    pub sleep_prob: f64,
    /// If set, at the start of round `.0` the correct opinion becomes `.1`.
    pub source_retarget: Option<(u64, Opinion)>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Plan with observation noise only.
    ///
    /// # Panics
    ///
    /// Panics when `flip_prob ∉ [0, 1]`.
    pub fn with_noise(flip_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_prob),
            "flip_prob out of range: {flip_prob}"
        );
        FaultPlan {
            flip_prob,
            ..FaultPlan::default()
        }
    }

    /// Plan with sleepy agents only.
    ///
    /// # Panics
    ///
    /// Panics when `sleep_prob ∉ [0, 1]`.
    pub fn with_sleep(sleep_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sleep_prob),
            "sleep_prob out of range: {sleep_prob}"
        );
        FaultPlan {
            sleep_prob,
            ..FaultPlan::default()
        }
    }

    /// Plan that flips the correct bit to `correct` at `round`.
    pub fn with_source_retarget(round: u64, correct: Opinion) -> Self {
        FaultPlan {
            source_retarget: Some((round, correct)),
            ..FaultPlan::default()
        }
    }

    /// `true` when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.flip_prob == 0.0 && self.sleep_prob == 0.0 && self.source_retarget.is_none()
    }

    /// Applies observation bit-flip noise to a true count of `ones` among
    /// `sample_size` observed bits: flipped ones become zeros and vice
    /// versa. Exact (two binomial draws), not an approximation.
    pub fn corrupt_count(&self, ones: u32, sample_size: u32, rng: &mut dyn RngCore) -> u32 {
        if self.flip_prob <= 0.0 {
            return ones;
        }
        let lost = sample_binomial(u64::from(ones), self.flip_prob, rng) as u32;
        let gained = sample_binomial(u64::from(sample_size - ones), self.flip_prob, rng) as u32;
        ones - lost + gained
    }

    /// Draws whether an agent sleeps this round.
    pub fn draws_sleep(&self, rng: &mut dyn RngCore) -> bool {
        self.sleep_prob > 0.0 && (*rng).gen::<f64>() < self.sleep_prob
    }

    /// The retargeted correct opinion if this round triggers it.
    pub fn retarget_at(&self, round: u64) -> Option<Opinion> {
        match self.source_retarget {
            Some((r, o)) if r == round => Some(o),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut rng = SeedTree::new(5).child("none").rng();
        assert_eq!(plan.corrupt_count(7, 16, &mut rng), 7);
        assert!(!plan.draws_sleep(&mut rng));
        assert_eq!(plan.retarget_at(3), None);
    }

    #[test]
    fn corrupt_count_statistics() {
        // With flip probability p, E[observed] = k(1−p) + (m−k)p.
        let plan = FaultPlan::with_noise(0.2);
        let mut rng = SeedTree::new(6).child("noise").rng();
        let (k, m) = (30u32, 40u32);
        let reps = 40_000;
        let mean: f64 = (0..reps)
            .map(|_| f64::from(plan.corrupt_count(k, m, &mut rng)))
            .sum::<f64>()
            / f64::from(reps);
        let expect = f64::from(k) * 0.8 + f64::from(m - k) * 0.2;
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn corrupt_count_stays_in_range() {
        let plan = FaultPlan::with_noise(0.5);
        let mut rng = SeedTree::new(7).child("range").rng();
        for _ in 0..1000 {
            let c = plan.corrupt_count(5, 10, &mut rng);
            assert!(c <= 10);
        }
    }

    #[test]
    fn full_noise_inverts_count() {
        let plan = FaultPlan::with_noise(1.0);
        let mut rng = SeedTree::new(8).child("invert").rng();
        assert_eq!(plan.corrupt_count(3, 10, &mut rng), 7);
    }

    #[test]
    fn sleep_probability_respected() {
        let plan = FaultPlan::with_sleep(0.3);
        let mut rng = SeedTree::new(9).child("sleep").rng();
        let n = 50_000;
        let slept = (0..n).filter(|_| plan.draws_sleep(&mut rng)).count();
        let frac = slept as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "sleep fraction {frac}");
    }

    #[test]
    fn retarget_fires_only_at_round() {
        let plan = FaultPlan::with_source_retarget(5, Opinion::Zero);
        assert_eq!(plan.retarget_at(4), None);
        assert_eq!(plan.retarget_at(5), Some(Opinion::Zero));
        assert_eq!(plan.retarget_at(6), None);
    }

    #[test]
    #[should_panic(expected = "flip_prob out of range")]
    fn noise_validation() {
        let _ = FaultPlan::with_noise(1.5);
    }
}
