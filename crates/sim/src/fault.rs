//! Fault injection (extension features, experiment E15) and round-indexed
//! fault schedules (the robustness tier).
//!
//! The paper's related work studies rumor spreading under message
//! corruption (Feinerman et al. 2017, Boczkowski et al. 2018a); its §1.2
//! adversary may re-target the source at time 0. This module generalizes
//! both in two layers:
//!
//! * [`FaultPlan`] — the *ambient* fault environment of a run:
//!   - **observation noise** — each sampled opinion bit flips independently
//!     with probability `flip_prob` before being counted;
//!   - **sleepy agents** — each non-source agent independently skips its
//!     update with probability `sleep_prob` each round (keeping its
//!     output);
//!   - **source retargeting** — at a chosen round the correct bit flips,
//!     modelling an environment change after (possible) convergence.
//! * [`FaultSchedule`] — a round-indexed *adversary script*: an ordered
//!   list of [`FaultEvent`]s (repeated trend switches, timed noise-level
//!   changes, bounded noise bursts, and mid-run state corruption — the
//!   literal self-stabilization adversary) layered over a base
//!   [`FaultPlan`]. Schedules compose deterministically with every
//!   execution mode and storage representation: event side effects draw
//!   from a dedicated `SeedTree` lane (`"fault-schedule"`), so a schedule
//!   with no events is bit-identical to running its base plan alone.

use crate::error::SimError;
use fet_core::opinion::Opinion;
use fet_stats::binomial::sample_binomial;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ambient fault environment for one run. The default plan is fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that each observed opinion bit is flipped (i.i.d.).
    pub flip_prob: f64,
    /// Probability that a non-source agent skips its update in a round.
    pub sleep_prob: f64,
    /// If set, at the start of round `.0` the correct opinion becomes `.1`.
    pub source_retarget: Option<(u64, Opinion)>,
}

/// `InvalidParameter { name: "fault" }` with an axis-naming detail line,
/// matching the builder's validation style.
fn fault_error(detail: String) -> SimError {
    SimError::InvalidParameter {
        name: "fault",
        detail,
    }
}

/// Validates a probability-like knob, naming the offending axis.
fn check_unit(axis: &str, p: f64) -> Result<(), SimError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(fault_error(format!(
            "offending axis: {axis} — must lie in [0, 1], got {p}"
        )))
    }
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Plan with observation noise only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `flip_prob ∉ [0, 1]`.
    pub fn with_noise(flip_prob: f64) -> Result<Self, SimError> {
        check_unit("flip_prob", flip_prob)?;
        Ok(FaultPlan {
            flip_prob,
            ..FaultPlan::default()
        })
    }

    /// Plan with sleepy agents only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `sleep_prob ∉ [0, 1]`.
    pub fn with_sleep(sleep_prob: f64) -> Result<Self, SimError> {
        check_unit("sleep_prob", sleep_prob)?;
        Ok(FaultPlan {
            sleep_prob,
            ..FaultPlan::default()
        })
    }

    /// Plan that flips the correct bit to `correct` at `round`.
    pub fn with_source_retarget(round: u64, correct: Opinion) -> Self {
        FaultPlan {
            source_retarget: Some((round, correct)),
            ..FaultPlan::default()
        }
    }

    /// `true` when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.flip_prob == 0.0 && self.sleep_prob == 0.0 && self.source_retarget.is_none()
    }

    /// Validates every knob, naming the offending axis.
    pub fn validate(&self) -> Result<(), SimError> {
        check_unit("flip_prob", self.flip_prob)?;
        check_unit("sleep_prob", self.sleep_prob)
    }

    /// Applies observation bit-flip noise to a true count of `ones` among
    /// `sample_size` observed bits: flipped ones become zeros and vice
    /// versa. Exact (two binomial draws), not an approximation.
    pub fn corrupt_count(&self, ones: u32, sample_size: u32, rng: &mut dyn RngCore) -> u32 {
        if self.flip_prob <= 0.0 {
            return ones;
        }
        let lost = sample_binomial(u64::from(ones), self.flip_prob, rng) as u32;
        let gained = sample_binomial(u64::from(sample_size - ones), self.flip_prob, rng) as u32;
        ones - lost + gained
    }

    /// Draws whether an agent sleeps this round.
    pub fn draws_sleep(&self, rng: &mut dyn RngCore) -> bool {
        self.sleep_prob > 0.0 && (*rng).gen::<f64>() < self.sleep_prob
    }

    /// The retargeted correct opinion if this round triggers it.
    pub fn retarget_at(&self, round: u64) -> Option<Opinion> {
        match self.source_retarget {
            Some((r, o)) if r == round => Some(o),
            _ => None,
        }
    }
}

/// The kind of a [`FaultEvent`] — carried into recovery records so
/// per-event metrics can be partitioned by what perturbed the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// The correct opinion flipped ([`FaultEvent::TrendSwitch`]).
    TrendSwitch,
    /// The ambient noise level changed ([`FaultEvent::NoiseChange`]).
    NoiseChange,
    /// A bounded noise burst started ([`FaultEvent::NoiseBurst`]).
    NoiseBurst,
    /// Agent states were rewritten ([`FaultEvent::StateCorruption`]).
    StateCorruption,
}

impl FaultEventKind {
    /// Stable kebab-case label, used by manifests and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultEventKind::TrendSwitch => "trend-switch",
            FaultEventKind::NoiseChange => "noise-change",
            FaultEventKind::NoiseBurst => "noise-burst",
            FaultEventKind::StateCorruption => "state-corruption",
        }
    }

    /// Parses the label written by [`FaultEventKind::as_str`].
    pub fn parse(label: &str) -> Option<FaultEventKind> {
        match label {
            "trend-switch" => Some(FaultEventKind::TrendSwitch),
            "noise-change" => Some(FaultEventKind::NoiseChange),
            "noise-burst" => Some(FaultEventKind::NoiseBurst),
            "state-corruption" => Some(FaultEventKind::StateCorruption),
            _ => None,
        }
    }
}

impl fmt::Display for FaultEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One round-indexed adversary action. Events fire at the *start* of
/// their round, before that round's observations are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The correct opinion becomes `correct` — the paper's trend switch.
    TrendSwitch {
        /// Round at whose start the switch happens.
        round: u64,
        /// The new correct opinion.
        correct: Opinion,
    },
    /// The ambient observation flip probability becomes `flip_prob` and
    /// stays there until the next noise event.
    NoiseChange {
        /// Round at whose start the level changes.
        round: u64,
        /// The new flip probability.
        flip_prob: f64,
    },
    /// For `rounds` rounds starting at `round` the flip probability is
    /// `flip_prob`; afterwards the pre-burst level is restored.
    NoiseBurst {
        /// First round of the burst.
        round: u64,
        /// Burst length in rounds (≥ 1).
        rounds: u64,
        /// Flip probability during the burst.
        flip_prob: f64,
    },
    /// Each non-source agent's state is independently rewritten with
    /// probability `fraction`: a fresh protocol-initial state around a
    /// uniformly random opinion — the literal self-stabilization
    /// adversary.
    StateCorruption {
        /// Round at whose start states are rewritten.
        round: u64,
        /// Per-agent rewrite probability.
        fraction: f64,
    },
}

impl FaultEvent {
    /// The round at whose start this event fires.
    pub fn round(&self) -> u64 {
        match *self {
            FaultEvent::TrendSwitch { round, .. }
            | FaultEvent::NoiseChange { round, .. }
            | FaultEvent::NoiseBurst { round, .. }
            | FaultEvent::StateCorruption { round, .. } => round,
        }
    }

    /// The event's kind tag.
    pub fn kind(&self) -> FaultEventKind {
        match self {
            FaultEvent::TrendSwitch { .. } => FaultEventKind::TrendSwitch,
            FaultEvent::NoiseChange { .. } => FaultEventKind::NoiseChange,
            FaultEvent::NoiseBurst { .. } => FaultEventKind::NoiseBurst,
            FaultEvent::StateCorruption { .. } => FaultEventKind::StateCorruption,
        }
    }

    fn validate(&self, index: usize) -> Result<(), SimError> {
        match *self {
            FaultEvent::TrendSwitch { .. } => Ok(()),
            FaultEvent::NoiseChange { flip_prob, .. } => check_unit("flip_prob", flip_prob)
                .map_err(|_| {
                    fault_error(format!(
                        "offending axis: events — event {index} (noise-change) flip_prob \
                         must lie in [0, 1], got {flip_prob}"
                    ))
                }),
            FaultEvent::NoiseBurst {
                rounds, flip_prob, ..
            } => {
                if rounds == 0 {
                    return Err(fault_error(format!(
                        "offending axis: events — event {index} (noise-burst) needs at \
                         least one round"
                    )));
                }
                check_unit("flip_prob", flip_prob).map_err(|_| {
                    fault_error(format!(
                        "offending axis: events — event {index} (noise-burst) flip_prob \
                         must lie in [0, 1], got {flip_prob}"
                    ))
                })
            }
            FaultEvent::StateCorruption { fraction, .. } => check_unit("fraction", fraction)
                .map_err(|_| {
                    fault_error(format!(
                        "offending axis: events — event {index} (state-corruption) \
                         fraction must lie in [0, 1], got {fraction}"
                    ))
                }),
        }
    }
}

/// A round-indexed fault schedule: an ordered list of [`FaultEvent`]s
/// layered over a base [`FaultPlan`].
///
/// Construction validates ordering (events sorted by round), every
/// probability knob, and burst overlap (a [`FaultEvent::NoiseBurst`]
/// window may not contain another noise event — the restore level would
/// be ambiguous). A schedule with no events runs bit-identically to its
/// base plan alone: event side effects draw from a dedicated RNG lane
/// that fault-free streams never touch.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    base: FaultPlan,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule: no base faults, no events.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A schedule that only carries a base plan (no events). Always
    /// bit-identical to running `base` directly.
    pub fn from_plan(base: FaultPlan) -> Self {
        FaultSchedule {
            base,
            events: Vec::new(),
        }
    }

    /// Builds and validates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] (name `fault`, with an
    /// `offending axis:` detail) when a knob is out of range, events are
    /// not sorted by round, a burst is empty, or a burst window contains
    /// another noise event.
    pub fn new(base: FaultPlan, events: Vec<FaultEvent>) -> Result<Self, SimError> {
        base.validate()?;
        for (i, event) in events.iter().enumerate() {
            event.validate(i)?;
            if i > 0 && events[i - 1].round() > event.round() {
                return Err(fault_error(format!(
                    "offending axis: events — events must be sorted by round, but event \
                     {i} at round {} follows round {}",
                    event.round(),
                    events[i - 1].round()
                )));
            }
        }
        // Burst windows must not contain another noise-level event: the
        // level to restore at burst end would be ambiguous.
        for (i, event) in events.iter().enumerate() {
            if let FaultEvent::NoiseBurst { round, rounds, .. } = *event {
                let end = round.saturating_add(rounds);
                for (j, other) in events.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let noisy = matches!(
                        other,
                        FaultEvent::NoiseChange { .. } | FaultEvent::NoiseBurst { .. }
                    );
                    if noisy && other.round() >= round && other.round() < end {
                        return Err(fault_error(format!(
                            "offending axis: events — event {j} ({}) at round {} falls \
                             inside the noise-burst window [{round}, {end}) of event {i}",
                            other.kind(),
                            other.round()
                        )));
                    }
                }
            }
        }
        Ok(FaultSchedule { base, events })
    }

    /// The base (ambient) fault plan.
    pub fn base(&self) -> FaultPlan {
        self.base
    }

    /// The validated, round-sorted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when the schedule injects nothing at all.
    pub fn is_trivial(&self) -> bool {
        self.base.is_none() && self.events.is_empty()
    }

    /// The round of the last event, if any.
    pub fn final_event_round(&self) -> Option<u64> {
        self.events.last().map(FaultEvent::round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut rng = SeedTree::new(5).child("none").rng();
        assert_eq!(plan.corrupt_count(7, 16, &mut rng), 7);
        assert!(!plan.draws_sleep(&mut rng));
        assert_eq!(plan.retarget_at(3), None);
    }

    #[test]
    fn corrupt_count_statistics() {
        // With flip probability p, E[observed] = k(1−p) + (m−k)p.
        let plan = FaultPlan::with_noise(0.2).unwrap();
        let mut rng = SeedTree::new(6).child("noise").rng();
        let (k, m) = (30u32, 40u32);
        let reps = 40_000;
        let mean: f64 = (0..reps)
            .map(|_| f64::from(plan.corrupt_count(k, m, &mut rng)))
            .sum::<f64>()
            / f64::from(reps);
        let expect = f64::from(k) * 0.8 + f64::from(m - k) * 0.2;
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn corrupt_count_stays_in_range() {
        let plan = FaultPlan::with_noise(0.5).unwrap();
        let mut rng = SeedTree::new(7).child("range").rng();
        for _ in 0..1000 {
            let c = plan.corrupt_count(5, 10, &mut rng);
            assert!(c <= 10);
        }
    }

    #[test]
    fn full_noise_inverts_count() {
        let plan = FaultPlan::with_noise(1.0).unwrap();
        let mut rng = SeedTree::new(8).child("invert").rng();
        assert_eq!(plan.corrupt_count(3, 10, &mut rng), 7);
    }

    #[test]
    fn sleep_probability_respected() {
        let plan = FaultPlan::with_sleep(0.3).unwrap();
        let mut rng = SeedTree::new(9).child("sleep").rng();
        let n = 50_000;
        let slept = (0..n).filter(|_| plan.draws_sleep(&mut rng)).count();
        let frac = slept as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "sleep fraction {frac}");
    }

    #[test]
    fn retarget_fires_only_at_round() {
        let plan = FaultPlan::with_source_retarget(5, Opinion::Zero);
        assert_eq!(plan.retarget_at(4), None);
        assert_eq!(plan.retarget_at(5), Some(Opinion::Zero));
        assert_eq!(plan.retarget_at(6), None);
    }

    #[test]
    fn out_of_range_knobs_are_typed_errors() {
        for bad in [FaultPlan::with_noise(1.5), FaultPlan::with_noise(f64::NAN)] {
            let err = bad.unwrap_err();
            assert!(
                matches!(&err, SimError::InvalidParameter { name: "fault", .. })
                    && err.to_string().contains("flip_prob"),
                "{err}"
            );
        }
        let err = FaultPlan::with_sleep(-0.1).unwrap_err();
        assert!(err.to_string().contains("sleep_prob"), "{err}");
    }

    #[test]
    fn schedule_validates_ordering_and_knobs() {
        // Sorted events build; same-round events are fine.
        let ok = FaultSchedule::new(
            FaultPlan::none(),
            vec![
                FaultEvent::TrendSwitch {
                    round: 10,
                    correct: Opinion::Zero,
                },
                FaultEvent::StateCorruption {
                    round: 10,
                    fraction: 0.5,
                },
                FaultEvent::NoiseChange {
                    round: 20,
                    flip_prob: 0.01,
                },
            ],
        );
        assert!(ok.is_ok(), "{ok:?}");

        // Unsorted events are rejected.
        let err = FaultSchedule::new(
            FaultPlan::none(),
            vec![
                FaultEvent::NoiseChange {
                    round: 20,
                    flip_prob: 0.01,
                },
                FaultEvent::TrendSwitch {
                    round: 10,
                    correct: Opinion::Zero,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("sorted"), "{err}");

        // Out-of-range knobs are rejected with the event index named.
        let err = FaultSchedule::new(
            FaultPlan::none(),
            vec![FaultEvent::StateCorruption {
                round: 5,
                fraction: 1.5,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("event 0"), "{err}");

        // Empty bursts are rejected.
        let err = FaultSchedule::new(
            FaultPlan::none(),
            vec![FaultEvent::NoiseBurst {
                round: 5,
                rounds: 0,
                flip_prob: 0.1,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least one round"), "{err}");
    }

    #[test]
    fn burst_windows_exclude_other_noise_events() {
        let burst = FaultEvent::NoiseBurst {
            round: 10,
            rounds: 5,
            flip_prob: 0.2,
        };
        // A noise change inside [10, 15) is ambiguous.
        let err = FaultSchedule::new(
            FaultPlan::none(),
            vec![
                burst,
                FaultEvent::NoiseChange {
                    round: 12,
                    flip_prob: 0.05,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("noise-burst window"), "{err}");

        // A trend switch inside the window is fine; a noise change at the
        // window end (round 15) is too.
        let ok = FaultSchedule::new(
            FaultPlan::none(),
            vec![
                burst,
                FaultEvent::TrendSwitch {
                    round: 12,
                    correct: Opinion::Zero,
                },
                FaultEvent::NoiseChange {
                    round: 15,
                    flip_prob: 0.05,
                },
            ],
        );
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn schedule_accessors() {
        let base = FaultPlan::with_noise(0.01).unwrap();
        let schedule = FaultSchedule::new(
            base,
            vec![FaultEvent::TrendSwitch {
                round: 7,
                correct: Opinion::Zero,
            }],
        )
        .unwrap();
        assert_eq!(schedule.base(), base);
        assert_eq!(schedule.events().len(), 1);
        assert_eq!(schedule.final_event_round(), Some(7));
        assert!(!schedule.is_trivial());
        assert!(FaultSchedule::none().is_trivial());
        assert!(!FaultSchedule::from_plan(base).is_trivial());
        assert!(FaultSchedule::from_plan(FaultPlan::none()).is_trivial());
    }

    #[test]
    fn event_kind_labels_round_trip() {
        for kind in [
            FaultEventKind::TrendSwitch,
            FaultEventKind::NoiseChange,
            FaultEventKind::NoiseBurst,
            FaultEventKind::StateCorruption,
        ] {
            assert_eq!(FaultEventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FaultEventKind::parse("nope"), None);
    }
}
