//! # fet-sim — synchronous PULL-model simulation engine
//!
//! Drives `fet-core` protocols against an actual population, implementing
//! the paper's model (§1.2): synchronous rounds; each agent observes the
//! opinions of uniformly random agents (with replacement); one or more
//! source agents constantly output the correct opinion; all non-source
//! agents start from arbitrary states.
//!
//! ## Three fidelities
//!
//! Sampling with replacement makes every per-round observation count an
//! exact `Binomial(m, x_t)` draw — the identity on which the paper's own
//! Observation 1 rests. The engine exploits this at three levels:
//!
//! | fidelity | what is simulated | cost/round | use |
//! |---|---|---|---|
//! | [`engine::Fidelity::Agent`]    | literal index sampling | `O(n·m)` | ground truth |
//! | [`engine::Fidelity::Binomial`] | per-agent binomial counts | `O(n)`+ | large populations |
//! | [`aggregate::AggregateFetChain`] | the `(x_t, x_{t+1})` chain of Observation 1 | `O(ℓ)` | `n` up to `10^9` |
//!
//! The first two are *distributionally identical* by construction; the third
//! is identical for FET specifically (it is Observation 1 executed
//! literally). Property tests in this crate and integration tests at the
//! workspace root verify the agreement empirically.
//!
//! ## Other services
//!
//! * [`convergence`] — detecting `t_con` (first round from which every
//!   non-source agent holds the correct opinion, sustained).
//! * [`observer`] — round hooks and trajectory recording.
//! * [`init`] — basic initial conditions (the advanced adversarial ones
//!   live in `fet-adversary`).
//! * [`fault`] — extension features: observation noise, sleepy agents,
//!   mid-run source retargeting.
//! * [`batch`] — deterministic multi-threaded replication.
//! * [`experiment`] — one-call experiment entry points used by the examples
//!   and the bench harness.
//!
//! # Example
//!
//! The one-stop entry point is the [`simulation::Simulation`] builder;
//! synchronous runs execute on the zero-copy population-erased path (see
//! [`engine::PopulationEngine`]):
//!
//! ```
//! use fet_sim::simulation::Simulation;
//!
//! let report = Simulation::builder()
//!     .population(300)
//!     .seed(7)
//!     .build()?
//!     .run();
//! assert!(report.converged());
//! assert_eq!(report.protocol, "fet");
//! # Ok::<(), fet_sim::SimError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod aggregate;
pub mod asynchronous;
pub mod batch;
pub mod convergence;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod fault;
pub mod init;
pub mod neighborhood;
pub mod observer;
pub mod simulation;
pub mod sources;

pub use error::SimError;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::aggregate::AggregateFetChain;
    pub use crate::asynchronous::AsyncEngine;
    pub use crate::batch::{parallel_map, BatchSummary};
    pub use crate::convergence::{ConvergenceCriterion, ConvergenceReport};
    pub use crate::engine::{Engine, ExecutionMode, Fidelity, PopulationEngine};
    pub use crate::error::SimError;
    pub use crate::experiment::{run_fet_once, ExperimentSpec, RunOutcome};
    pub use crate::fault::FaultPlan;
    pub use crate::init::InitialCondition;
    pub use crate::neighborhood::Neighborhood;
    pub use crate::observer::{NullObserver, RoundObserver, TrajectoryRecorder};
    pub use crate::simulation::{RunReport, Scheduler, Simulation, SimulationBuilder, Storage};
    pub use crate::sources::{GraphSource, GraphSourceFactory};
}
