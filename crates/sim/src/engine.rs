//! The synchronous round engine.
//!
//! Implements the paper's execution model: in every round each non-source
//! agent observes the opinion bits of `m = samples_per_round()` agents
//! chosen uniformly at random **with replacement** from the whole
//! population, then updates its state through the protocol. All updates
//! within a round are synchronous (they read the round-`t` outputs).
//!
//! Two exact fidelities are provided (see the crate docs): literal index
//! sampling ([`Fidelity::Agent`]) and the distributionally identical
//! per-agent binomial shortcut ([`Fidelity::Binomial`]), which exploits the
//! fact that a with-replacement sample of size `m` from a population with
//! 1-fraction `x` contains `Binomial(m, x)` ones. The `O(ℓ)`-per-round
//! aggregate chain lives in [`crate::aggregate`].
//!
//! # One round loop, two front ends
//!
//! The round mechanics — snapshotting, observation generation, fault
//! injection, the batched protocol dispatch, counter folding — are written
//! once, generically over [`Population`] (the object-safe contiguous-state
//! container from `fet-core`). Two front ends instantiate them:
//!
//! * [`Engine<P>`] — the typed engine. Owns a
//!   [`TypedPopulation<P>`](fet_core::population::TypedPopulation), so
//!   every population call monomorphizes away: this is the fastest path
//!   and the one with typed state access for adversarial surgery.
//! * [`PopulationEngine`] — the runtime-selected engine. Owns a
//!   `Box<dyn DynPopulation>` (built by
//!   [`ErasedProtocol::population`](fet_core::erased::ErasedProtocol::population)
//!   or the `fet-protocols` registry), paying exactly one virtual dispatch
//!   per round on the batched path — *not* the per-agent boxing and
//!   per-round buffer copies of the older `Engine<ErasedProtocol>` route,
//!   which remains supported but deprecated in spirit.
//!
//! Both front ends share every line of round code, so their random streams
//! are identical by construction: a facade run selected by registry name
//! reproduces a typed `Engine<P>` run bit for bit given the same seed.
//!
//! # Round implementations: batched, fused, and parallel fused
//!
//! A synchronous round can execute three ways ([`ExecutionMode`]):
//!
//! * **batched** — the buffered pipeline: snapshot the outputs, fill an
//!   observation buffer, one [`Population::step_batch`] dispatch, fold the
//!   counters out of an output buffer. The A/B reference implementation,
//!   and the only one for [`Fidelity::Agent`]'s literal complete-graph
//!   index sampling.
//! * **fused** — the single-pass streaming kernel: one
//!   [`Population::step_fused`] dispatch draws each agent's observation
//!   from an on-demand source, applies the update, writes the output, and
//!   accumulates the round counters in **one pass** — no observation
//!   buffer, no output scratch. On the mean-field fidelities
//!   ([`Fidelity::Binomial`], [`Fidelity::WithoutReplacement`] on the
//!   complete graph) the source is the round's global sampler and the
//!   round keeps `O(1)` auxiliary memory; on neighborhood
//!   ([`Neighborhood`]) runs the source reads neighbors' round-start
//!   opinions from a **persistent double buffer** (~1 byte/agent,
//!   allocated once and rotated by pointer swap each round — still no
//!   per-round allocation and no typed-state clone).
//! * **fused-parallel** — the fused kernel, work-sharded: the population
//!   splits into `threads` balanced contiguous agent ranges, every shard
//!   runs the fused pass against the *round-start* state (global 1-count,
//!   or the shared opinion double buffer plus adjacency on graphs) with
//!   an independent RNG stream derived by a counter-based split of
//!   `(seed, round, shard index)` (see [`fet_core::shard`]), and the
//!   per-shard counters reduce into the round totals. One
//!   [`Population::step_fused_parallel`] dispatch; scoped OS threads, no
//!   `O(n)` auxiliary memory beyond the graph double buffer.
//!
//! [`ExecutionMode::Auto`] (the default) selects a fused path exactly when
//! an on-demand observation source exists — any mean-field fidelity, and
//! any neighborhood run — parallelizing it above
//! [`FUSED_PARALLEL_AUTO_MIN_N`] agents when the host has more than one
//! core, and falls back to the batched pipeline only for the literal
//! [`Fidelity::Agent`] on the complete graph; sleepy-fault rounds always
//! take the per-agent loop (a sleeping agent must skip its update
//! entirely).
//!
//! **Stream-compatibility caveat:** the fused kernel interleaves RNG draws
//! per agent (observation, then update) where the batched pipeline draws
//! all observations first, and the parallel path re-keys the draws per
//! shard. The modes are therefore *distinct deterministic streams* of the
//! same distribution: a fused run replays bit-for-bit against any other
//! fused run of the same seed — across typed, boxed, and population
//! representations, exactly like the batched stream-identity story above
//! — and a parallel run replays bit-for-bit for a fixed `(seed, thread
//! count)` regardless of how many OS threads actually execute it (the
//! shard *count* keys the stream; the worker count never does, which is
//! what the CI determinism job enforces by re-running the identity suite
//! under different `FET_PARALLEL_WORKERS`). Fused, parallel-fused (per
//! shard count), and batched trajectories for one seed agree
//! statistically, not bitwise (`tests/fused_equivalence.rs` and
//! `tests/parallel_equivalence.rs` enforce all of these properties).

use crate::convergence::{
    ConvergenceCriterion, ConvergenceDetector, ConvergenceReport, RecoveryRecord, RecoveryTracker,
};
use crate::error::SimError;
use crate::fault::{FaultEvent, FaultPlan, FaultSchedule};
use crate::init::InitialCondition;
use crate::neighborhood::{ensure_observable, Neighborhood};
use crate::observer::{RoundObserver, RoundSnapshot};
use crate::sources::{
    GraphSourceFactory, MeanFieldSampler, MeanFieldSource, MeanFieldSourceFactory, SnapshotView,
};
use fet_core::bitplane::BitPlane;
use fet_core::config::ProblemSpec;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::population::{DynPopulation, Population, TypedPopulation};
use fet_core::protocol::{FusedCounters, Protocol, RoundContext};
use fet_core::shard::ShardPlan;
use fet_core::source::Source;
use fet_stats::binomial::BinomialSampler;
use fet_stats::hypergeometric::Hypergeometric;
use fet_stats::rng::{counter_split, counter_stream_base, SeedTree};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How per-agent observations are generated.
///
/// [`Fidelity::Agent`] and [`Fidelity::Binomial`] sample *exactly* the
/// paper's with-replacement model and differ only in cost.
/// [`Fidelity::WithoutReplacement`] is a deliberate model variation for
/// robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Literal sampling: draw `m` uniform agent indices, read their output
    /// bits. `O(n·m)` per round.
    Agent,
    /// Distributional shortcut: draw each agent's observed count from
    /// `Binomial(m, x_t)` directly. `O(n)` per round (plus protocol work).
    Binomial,
    /// Model variation — sampling **without** replacement: each agent's
    /// count is `Hypergeometric(n, ones_t, m)`, i.e. it scans `m`
    /// *distinct* agents. The paper assumes with-replacement sampling
    /// (which makes Observation 1's binomial identity exact); this
    /// fidelity measures how much of the behaviour that assumption
    /// carries. For `m ≪ n` the two are statistically close (variance
    /// shrinks by the factor `(n−m)/(n−1)`), so convergence shapes should
    /// match — which experiment E10's drift harness confirms.
    WithoutReplacement,
    /// Population-level shortcut: simulate only the `(x_t, x_{t+1})` chain
    /// of Observation 1 — `O(ℓ)` per round, *independent of `n`*, and
    /// distributionally exact for FET. Handled by
    /// [`crate::aggregate::AggregateFetChain`] via the `Simulation` facade
    /// ([`crate::simulation`]); the per-agent engines reject it because
    /// they have no per-agent states to drive at this fidelity.
    Aggregate,
}

/// Which synchronous round implementation executes (see the
/// [module docs](self) for the batched/fused/parallel trade-off and the
/// stream-compatibility caveat).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Select automatically: a fused kernel wherever an on-demand
    /// observation source exists (mean-field fidelities *and* neighborhood
    /// runs) — parallelized above [`FUSED_PARALLEL_AUTO_MIN_N`] agents
    /// when more than one core is available — and the batched pipeline
    /// for the literal complete-graph [`Fidelity::Agent`]. The default.
    ///
    /// Note: because the auto-parallel shard count follows the host's
    /// core count, trajectories of `Auto` runs above the threshold are
    /// reproducible per machine class, not across arbitrary machines; pin
    /// [`ExecutionMode::FusedParallel`] for cross-machine replays.
    #[default]
    Auto,
    /// Always run the buffered batched pipeline — the PR 2 behaviour,
    /// useful for replaying batched-stream seeds and for A/B measurement.
    Batched,
    /// Force the fused single-pass kernel — on mean-field fidelities and
    /// on neighborhood (graph) runs alike. Rejected (at
    /// [`Engine::set_execution_mode`] /
    /// `Simulation::builder().execution_mode(..)` time) only for the one
    /// configuration with no on-demand observation source: the literal
    /// [`Fidelity::Agent`] on the complete graph. Sleepy-fault rounds
    /// still take the per-agent loop.
    Fused,
    /// Force the work-sharded parallel fused kernel with `threads` shards
    /// (and at most that many worker threads; `FET_PARALLEL_WORKERS`
    /// overrides the worker count without touching the stream). Rejected
    /// wherever [`ExecutionMode::Fused`] is, for `threads == 0`, and for
    /// protocols that opt out of
    /// [`parallel_eligible`](fet_core::protocol::Protocol::parallel_eligible).
    /// The trajectory is keyed by `(seed, threads)`: same thread count ⇒
    /// bit-identical replay on any host.
    FusedParallel {
        /// Shard count — the RNG stream partition, and the worker-thread
        /// cap.
        threads: u32,
    },
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionMode::Auto => f.write_str("auto"),
            ExecutionMode::Batched => f.write_str("batched"),
            ExecutionMode::Fused => f.write_str("fused"),
            ExecutionMode::FusedParallel { threads } => {
                write!(f, "fused-parallel({threads})")
            }
        }
    }
}

/// Population size above which [`ExecutionMode::Auto`] parallelizes the
/// fused round (when the host has more than one core). Below it, per-round
/// thread-spawn overhead outweighs the sharded work.
pub const FUSED_PARALLEL_AUTO_MIN_N: u64 = 2_000_000;

/// Shard-count cap for auto-selected parallelism: beyond this, per-shard
/// work at [`FUSED_PARALLEL_AUTO_MIN_N`] no longer amortizes spawn costs,
/// and the auto stream stays comparable across common host sizes.
const FUSED_PARALLEL_AUTO_MAX_THREADS: u32 = 8;

/// The round implementation a fault-free round resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundImpl {
    Batched,
    Fused,
    FusedParallel { shards: u32 },
}

/// [`ExecutionMode::Auto`]'s selection rule, as a pure function: the
/// batched pipeline when no on-demand observation source exists (the
/// literal [`Fidelity::Agent`] on the complete graph); everywhere else —
/// mean-field fidelities *and* neighborhood (graph) runs — the parallel
/// fused round once the population clears [`FUSED_PARALLEL_AUTO_MIN_N`]
/// on a multi-core host (unless the protocol opts out of parallel
/// sharding), and the single-threaded fused kernel otherwise.
fn auto_round_impl(
    fused_capable: bool,
    auto_threads: u32,
    n: u64,
    parallel_eligible: bool,
) -> RoundImpl {
    if !fused_capable {
        RoundImpl::Batched
    } else if parallel_eligible && auto_threads > 1 && n >= FUSED_PARALLEL_AUTO_MIN_N {
        RoundImpl::FusedParallel {
            shards: auto_threads,
        }
    } else {
        RoundImpl::Fused
    }
}

/// Settles a round's decision count from the count folded out of the
/// round's outputs: passive protocols (decision ≡ output) take the folded
/// count directly, decoupled baselines are recounted from their states.
/// Shared by all three round paths (batched, fused, sleepy) so the
/// passive-count contract cannot drift between them. The debug guard
/// catches a protocol that overrides `decision()` but forgets to override
/// `is_passive()` — the folded count is only valid when decision ≡ output
/// actually holds.
fn settle_correct_decisions<A: Population + ?Sized>(
    pop: &A,
    correct: Opinion,
    folded_count: u64,
) -> u64 {
    let passive = pop.is_passive();
    debug_assert!(
        !passive || folded_count == pop.count_correct_decisions(correct),
        "protocol `{}` reports is_passive() but decision() != output()",
        pop.protocol_name()
    );
    if passive {
        folded_count
    } else {
        pop.count_correct_decisions(correct)
    }
}

/// Draws one agent's raw observed 1-count for the round: from its
/// neighborhood when one is set, else via the fidelity's per-round
/// sampler, else by literal index sampling. Shared by the batched and
/// sleepy round paths so the sampling semantics cannot drift between
/// them.
#[allow(clippy::too_many_arguments)]
fn draw_raw_count(
    neighborhood: Option<&dyn Neighborhood>,
    binomial: Option<&BinomialSampler>,
    hypergeometric: Option<&Hypergeometric>,
    snapshot: &[Opinion],
    vertex: usize,
    n: usize,
    m: u32,
    rng: &mut SmallRng,
) -> u32 {
    if let Some(nb) = neighborhood {
        let neighbors = nb.neighbors_of(vertex as u32);
        let mut c = 0u32;
        for _ in 0..m {
            let k = neighbors[rng.gen_range(0..neighbors.len())];
            if snapshot[k as usize].is_one() {
                c += 1;
            }
        }
        c
    } else if let Some(sampler) = binomial {
        sampler.sample(rng) as u32
    } else if let Some(h) = hypergeometric {
        h.sample(rng) as u32
    } else {
        let mut c = 0u32;
        for _ in 0..m {
            let k = rng.gen_range(0..n);
            if snapshot[k].is_one() {
                c += 1;
            }
        }
        c
    }
}

fn checked_n(spec: &ProblemSpec) -> Result<usize, SimError> {
    let n = spec.n();
    if n > (u32::MAX as u64) {
        return Err(SimError::UnsupportedPopulation {
            detail: format!("n = {n} exceeds per-agent simulation limits; use the aggregate chain"),
        });
    }
    Ok(n as usize)
}

fn check_fidelity(samples_per_round: u32, fidelity: Fidelity, n: usize) -> Result<(), SimError> {
    if fidelity == Fidelity::Aggregate {
        return Err(SimError::InvalidParameter {
            name: "fidelity",
            detail: "the aggregate fidelity has no per-agent states; run it through \
                     `Simulation::builder()` (or `AggregateFetChain` directly)"
                .into(),
        });
    }
    if fidelity == Fidelity::WithoutReplacement
        && usize::try_from(samples_per_round).expect("u32 fits usize") > n
    {
        return Err(SimError::InvalidParameter {
            name: "fidelity",
            detail: format!(
                "without-replacement sampling needs m ≤ n, got m = {samples_per_round} and n = {n}"
            ),
        });
    }
    Ok(())
}

/// Everything a synchronous engine is *besides* its agents: the problem
/// instance, the sampling machinery, the fault plan, the cached output
/// bits and counters, and the round loop itself.
///
/// All round methods are generic over [`Population`]; `Engine<P>` calls
/// them with a monomorphized [`TypedPopulation<P>`], `PopulationEngine`
/// with a `dyn DynPopulation`. Keeping one implementation guarantees the
/// two paths consume identical random streams.
#[derive(Debug, Clone)]
struct EngineCore {
    spec: ProblemSpec,
    source: Source,
    fidelity: Fidelity,
    mode: ExecutionMode,
    neighborhood: Option<Box<dyn Neighborhood>>,
    fault: FaultPlan,
    /// Round-sorted fault-schedule events still to fire;
    /// [`EngineCore::next_event`] indexes the first pending one. Empty
    /// unless a [`FaultSchedule`] was installed.
    schedule_events: Vec<FaultEvent>,
    next_event: usize,
    /// Active noise burst: `(first round after the burst, flip level to
    /// restore)`.
    burst_restore: Option<(u64, f64)>,
    /// Dedicated RNG lane for fault-schedule side effects (the state
    /// corruption draws). Fault-free runs never touch it, so installing
    /// an event-free schedule leaves every other stream bit-identical.
    fault_stream: u64,
    /// Per-event recovery bookkeeping, fed once per executed round.
    recovery: RecoveryTracker,
    outputs: Vec<Opinion>,
    snapshot: Vec<Opinion>,
    obs_buf: Vec<Observation>,
    out_buf: Vec<Opinion>,
    /// `true` when the population stores opinions as packed bit planes
    /// ([`Population::supports_inplace_rounds`]): the engine then keeps
    /// **no** byte-addressed `outputs` buffer at all — the population's
    /// own opinion plane is the output store, rounds run through the
    /// in-place fused kernels, and graph rounds double-buffer round-start
    /// opinions in [`EngineCore::bit_snapshot`] (1 bit/agent instead of
    /// 1 byte/agent).
    bit_store: bool,
    /// The round-start opinion plane copy for bit-plane graph rounds
    /// (word-copied from the population each round; empty on mean-field
    /// runs and on byte-addressed populations).
    bit_snapshot: BitPlane,
    ones_count: u64,
    correct_decisions: u64,
    rng: SmallRng,
    round: u64,
    /// Run-level seed for the parallel fused round's split-RNG streams —
    /// a separate `SeedTree` lane, so enabling parallelism never perturbs
    /// the main engine stream (batched/fused trajectories are unchanged).
    parallel_stream: u64,
    /// Run-level seed lane for graph-fused index draws: every
    /// [`crate::sources::GraphSource`]'s owned index stream splits from
    /// `(this, round, shard range start)` — again without ever consuming
    /// the main engine RNG.
    graph_index_stream: u64,
    /// Host core count (capped), cached for [`ExecutionMode::Auto`]'s
    /// parallel selection.
    auto_threads: u32,
    /// Worker-thread override from `FET_PARALLEL_WORKERS` (a CI/testing
    /// knob: caps the OS threads actually spawned without touching the
    /// shard count, hence without touching the stream). Kept raw and
    /// parsed only when a parallel round actually runs, so a malformed
    /// value in the environment cannot abort batched/fused runs — but a
    /// parallel run fails loudly rather than silently ignoring it (CI's
    /// determinism job depends on the two worker counts differing).
    parallel_workers: Option<String>,
    /// Whether the population's protocol admits parallel sharding
    /// ([`Protocol::parallel_eligible`]); cached at construction since a
    /// population never changes protocol. Consulted by explicit
    /// [`ExecutionMode::FusedParallel`] selection *and* by
    /// [`ExecutionMode::Auto`]'s parallel pick.
    parallel_eligible: bool,
}

impl EngineCore {
    /// Creates the core and fills `pop` with non-source agents drawn from
    /// `init` (one opinion draw then one state init per agent, in agent
    /// order — the random stream every construction path shares).
    fn construct<A: Population + ?Sized>(
        pop: &mut A,
        spec: ProblemSpec,
        fidelity: Fidelity,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        let mut rng = SeedTree::new(seed).child("engine").rng();
        let n = checked_n(&spec)?;
        check_fidelity(pop.samples_per_round(), fidelity, n)?;
        let num_sources = spec.num_sources() as usize;
        let source = Source::new(spec.correct());
        // Bit-plane populations keep no byte output buffer: the opinion
        // plane itself is the output store. The construction RNG stream
        // (one draw + one init per agent, in order) is shared either way.
        let bits = pop.supports_inplace_rounds();
        let mut outputs = Vec::new();
        if !bits {
            outputs.reserve(n);
            for _ in 0..num_sources {
                outputs.push(source.output());
            }
        }
        pop.reserve(n - num_sources);
        for _ in num_sources..n {
            let opinion = init.draw(spec.correct(), &mut rng);
            let out = pop.push_agent(opinion, &mut rng);
            if !bits {
                outputs.push(out);
            }
        }
        Ok(Self::assemble(
            pop, spec, source, fidelity, outputs, rng, seed,
        ))
    }

    /// Creates the core over an already-filled population (the adversarial
    /// entry point).
    fn construct_filled<A: Population + ?Sized>(
        pop: &mut A,
        spec: ProblemSpec,
        fidelity: Fidelity,
        seed: u64,
    ) -> Result<Self, SimError> {
        let rng = SeedTree::new(seed).child("engine").rng();
        let n = checked_n(&spec)?;
        check_fidelity(pop.samples_per_round(), fidelity, n)?;
        let num_sources = spec.num_sources() as usize;
        if pop.len() != n - num_sources {
            return Err(SimError::InvalidParameter {
                name: "states",
                detail: format!(
                    "expected {} non-source states, got {}",
                    n - num_sources,
                    pop.len()
                ),
            });
        }
        let source = Source::new(spec.correct());
        let outputs = if pop.supports_inplace_rounds() {
            Vec::new()
        } else {
            let mut outputs = vec![source.output(); n];
            pop.write_outputs(&mut outputs[num_sources..]);
            outputs
        };
        Ok(Self::assemble(
            pop, spec, source, fidelity, outputs, rng, seed,
        ))
    }

    fn assemble<A: Population + ?Sized>(
        pop: &A,
        spec: ProblemSpec,
        source: Source,
        fidelity: Fidelity,
        outputs: Vec<Opinion>,
        rng: SmallRng,
        seed: u64,
    ) -> Self {
        let ones_count =
            spec.num_sources() * u64::from(source.output().is_one()) + pop.count_output_ones();
        let correct_decisions = pop.count_correct_decisions(source.correct());
        EngineCore {
            spec,
            source,
            fidelity,
            mode: ExecutionMode::Auto,
            neighborhood: None,
            fault: FaultPlan::none(),
            schedule_events: Vec::new(),
            next_event: 0,
            burst_restore: None,
            fault_stream: SeedTree::new(seed).child("fault-schedule").seed(),
            recovery: RecoveryTracker::new(ConvergenceCriterion::default()),
            outputs,
            // All three round scratch buffers start unallocated; rounds
            // that never read them (the fused path, mean-field batched
            // snapshots) never allocate them — the `O(1)`-auxiliary-memory
            // guarantee `round_scratch_bytes` reports on.
            snapshot: Vec::new(),
            obs_buf: Vec::new(),
            out_buf: Vec::new(),
            bit_store: pop.supports_inplace_rounds(),
            bit_snapshot: BitPlane::new(),
            ones_count,
            correct_decisions,
            rng,
            round: 0,
            parallel_stream: SeedTree::new(seed).child("engine-parallel").seed(),
            graph_index_stream: SeedTree::new(seed).child("graph-index").seed(),
            auto_threads: std::thread::available_parallelism()
                .map_or(1, |p| p.get() as u32)
                .min(FUSED_PARALLEL_AUTO_MAX_THREADS),
            parallel_workers: std::env::var("FET_PARALLEL_WORKERS").ok(),
            parallel_eligible: pop.parallel_eligible(),
        }
    }

    fn fraction_ones(&self) -> f64 {
        self.ones_count as f64 / self.spec.n() as f64
    }

    fn fraction_correct(&self) -> f64 {
        self.correct_decisions as f64 / self.spec.num_non_sources() as f64
    }

    fn all_correct(&self) -> bool {
        self.correct_decisions == self.spec.num_non_sources()
    }

    /// Re-derives outputs and counters from the population's states.
    fn refresh_caches<A: Population + ?Sized>(&mut self, pop: &A) {
        let num_sources = self.spec.num_sources() as usize;
        if !self.bit_store {
            for i in 0..num_sources {
                self.outputs[i] = self.source.output();
            }
            pop.write_outputs(&mut self.outputs[num_sources..]);
        }
        self.ones_count =
            num_sources as u64 * u64::from(self.source.output().is_one()) + pop.count_output_ones();
        self.correct_decisions = pop.count_correct_decisions(self.source.correct());
    }

    /// `true` when observations are a pure function of the round's global
    /// 1-count — the precondition for skipping the snapshot entirely
    /// (mean-field fused rounds keep no opinion buffer at all, and even
    /// mean-field *batched* rounds skip the snapshot copy).
    fn mean_field(&self) -> bool {
        self.neighborhood.is_none() && self.fidelity != Fidelity::Agent
    }

    /// `true` when the run has an on-demand observation source — the
    /// precondition for the fused family. Mean-field fidelities stream
    /// from the round's global 1-count; neighborhood runs stream from the
    /// round-start opinion double buffer through [`crate::sources::GraphSource`]. Only the
    /// literal [`Fidelity::Agent`] on the complete graph is left out: it
    /// is the A/B reference for the mean-field shortcut and deliberately
    /// keeps the PR 2 snapshot-driven batched semantics.
    fn fused_capable(&self) -> bool {
        self.neighborhood.is_some() || self.fidelity != Fidelity::Agent
    }

    /// The round implementation a fault-free round runs under the current
    /// mode. (Fused modes are validated to imply `fused_capable` at set
    /// time.)
    fn resolve_round_impl(&self) -> RoundImpl {
        match self.mode {
            ExecutionMode::Batched => RoundImpl::Batched,
            ExecutionMode::Fused if self.fused_capable() => RoundImpl::Fused,
            ExecutionMode::Fused => RoundImpl::Batched,
            ExecutionMode::FusedParallel { threads } if self.fused_capable() => {
                RoundImpl::FusedParallel { shards: threads }
            }
            ExecutionMode::FusedParallel { .. } => RoundImpl::Batched,
            ExecutionMode::Auto => auto_round_impl(
                self.fused_capable(),
                self.auto_threads,
                self.spec.n(),
                self.parallel_eligible,
            ),
        }
    }

    /// Installs an execution mode, rejecting the fused modes for the one
    /// configuration with no on-demand observation source (the literal
    /// [`Fidelity::Agent`] on the complete graph), and the parallel mode
    /// additionally for zero threads and for protocols that opted out of
    /// parallel sharding.
    fn set_mode(&mut self, mode: ExecutionMode) -> Result<(), SimError> {
        let fused_family = matches!(
            mode,
            ExecutionMode::Fused | ExecutionMode::FusedParallel { .. }
        );
        if fused_family && !self.fused_capable() {
            return Err(SimError::InvalidParameter {
                name: "mode",
                detail: "offending axis: fidelity — the literal Agent fidelity on the complete \
                         graph has no on-demand observation source and keeps the snapshot-driven \
                         batched path; fused modes run on the mean-field fidelities \
                         (Binomial/WithoutReplacement) and on neighborhood (graph) runs"
                    .into(),
            });
        }
        if self.bit_store && mode == ExecutionMode::Batched {
            return Err(SimError::InvalidParameter {
                name: "mode",
                detail: "offending axis: storage — bit-plane populations keep no byte output \
                         buffer, so the buffered batched pipeline cannot run on them; use a \
                         fused mode (or byte storage for batched A/B replays)"
                    .into(),
            });
        }
        if let ExecutionMode::FusedParallel { threads } = mode {
            if threads == 0 {
                return Err(SimError::InvalidParameter {
                    name: "mode",
                    detail: "offending axis: threads — fused-parallel needs at least one thread"
                        .into(),
                });
            }
            if !self.parallel_eligible {
                return Err(SimError::InvalidParameter {
                    name: "mode",
                    detail: "offending axis: protocol — this protocol opts out of parallel \
                             sharding (Protocol::parallel_eligible() is false)"
                        .into(),
                });
            }
        }
        self.mode = mode;
        Ok(())
    }

    /// Bytes of per-round auxiliary buffers currently allocated (output
    /// snapshot + observation buffer + output scratch). Stays `0` for runs
    /// whose every round went through the mean-field fused path — the
    /// measurable form of its `O(1)`-auxiliary-memory guarantee. Graph
    /// (neighborhood) fused runs report exactly the persistent opinion
    /// double buffer (~1 byte/agent, allocated once, rotated thereafter —
    /// or ~1 **bit**/agent on bit-plane populations, whose round-start
    /// snapshot is a packed word plane); batched runs additionally keep
    /// the ~9 bytes/agent observation/output buffers.
    fn scratch_bytes(&self) -> usize {
        self.snapshot.capacity() * std::mem::size_of::<Opinion>()
            + self.obs_buf.capacity() * std::mem::size_of::<Observation>()
            + self.out_buf.capacity() * std::mem::size_of::<Opinion>()
            + self.bit_snapshot.resident_bytes()
    }

    /// Fires every schedule event due at the start of the current round.
    /// Runs before the round's snapshot rotation, so trend switches and
    /// state corruption are visible to this round's observations in every
    /// execution mode and storage representation.
    fn apply_schedule<A: Population + ?Sized>(&mut self, pop: &mut A) {
        if let Some((end, restore)) = self.burst_restore {
            if self.round >= end {
                self.fault.flip_prob = restore;
                self.burst_restore = None;
            }
        }
        while let Some(&event) = self.schedule_events.get(self.next_event) {
            if event.round() > self.round {
                break;
            }
            self.next_event += 1;
            if event.round() < self.round {
                // Installed mid-run after its round already passed: never
                // fires (firing late would desynchronize replays).
                continue;
            }
            self.recovery.on_event(self.round, event.kind());
            match event {
                FaultEvent::TrendSwitch { correct, .. } => {
                    self.source.retarget(correct);
                    self.refresh_caches(pop);
                }
                FaultEvent::NoiseChange { flip_prob, .. } => {
                    self.fault.flip_prob = flip_prob;
                    self.burst_restore = None;
                }
                FaultEvent::NoiseBurst {
                    rounds, flip_prob, ..
                } => {
                    self.burst_restore =
                        Some((self.round.saturating_add(rounds), self.fault.flip_prob));
                    self.fault.flip_prob = flip_prob;
                }
                FaultEvent::StateCorruption { fraction, .. } => {
                    self.corrupt_states(pop, fraction);
                }
            }
        }
    }

    /// Rewrites a Bernoulli(`fraction`) subset of non-source agents to
    /// fresh protocol-initial states with uniformly random opinions. All
    /// randomness comes from the dedicated `fault-schedule` counter lane,
    /// keyed by `(round, event index)` — deterministic per seed and
    /// independent of execution mode, shard count, and storage.
    fn corrupt_states<A: Population + ?Sized>(&mut self, pop: &mut A, fraction: f64) {
        if fraction <= 0.0 {
            return;
        }
        let base = counter_stream_base(self.fault_stream, self.round);
        let mut rng = SmallRng::seed_from_u64(counter_split(base, self.next_event as u64));
        for idx in 0..pop.len() {
            if rng.gen::<f64>() < fraction {
                let opinion = if rng.gen::<bool>() {
                    Opinion::One
                } else {
                    Opinion::Zero
                };
                pop.corrupt_agent(idx, opinion, &mut rng);
            }
        }
        self.refresh_caches(pop);
    }

    /// `true` once every schedule event has fired and the last one's
    /// recovery record has confirmed re-stabilization (or there was no
    /// schedule at all). [`EngineCore::run`] keeps stepping until this
    /// holds, so pre-switch convergence cannot end the run early.
    fn schedule_settled(&self) -> bool {
        self.next_event >= self.schedule_events.len() && self.recovery.is_settled()
    }

    /// Installs a fault schedule: the base plan replaces the current
    /// [`FaultPlan`], events are armed from the top, and recovery records
    /// are cleared.
    fn set_schedule(&mut self, schedule: &FaultSchedule) {
        self.fault = schedule.base();
        self.schedule_events = schedule.events().to_vec();
        self.next_event = 0;
        self.burst_restore = None;
        self.recovery.reset();
    }

    /// Executes one synchronous round (see [`Engine::step`]).
    fn step<A: Population + ?Sized>(&mut self, pop: &mut A) {
        self.apply_schedule(pop);
        // Legacy one-shot environment change: the correct bit itself flips.
        if let Some(new_correct) = self.fault.retarget_at(self.round) {
            self.source.retarget(new_correct);
            self.refresh_caches(pop);
        }
        if self.fault.sleep_prob > 0.0 {
            assert!(
                !self.bit_store,
                "sleepy-agent faults need the per-agent byte output buffer; \
                 run them on byte storage"
            );
            // Synchrony: all observations read the round-t outputs.
            // Mean-field rounds consume only the global 1-count, so the
            // O(n) snapshot copy is skipped there.
            if !self.mean_field() {
                self.snapshot.clone_from(&self.outputs);
            }
            self.step_with_sleep(pop);
        } else {
            let round_impl = self.resolve_round_impl();
            if !self.mean_field() {
                match round_impl {
                    // The buffered pipeline copies the round-start outputs
                    // (it overwrites `outputs` only after all draws).
                    RoundImpl::Batched => self.snapshot.clone_from(&self.outputs),
                    // Fused graph rounds write outputs in place while the
                    // graph source still reads round-start opinions: rotate
                    // the persistent double buffer instead of copying —
                    // or, on bit-plane populations, word-copy the packed
                    // opinion plane into the 1 bit/agent word snapshot.
                    RoundImpl::Fused | RoundImpl::FusedParallel { .. } => {
                        if self.bit_store {
                            self.refresh_bit_snapshot(pop);
                        } else {
                            self.rotate_opinion_buffer();
                        }
                    }
                }
            }
            match round_impl {
                RoundImpl::Batched => self.step_batched(pop),
                RoundImpl::Fused => self.step_fused_round(pop),
                RoundImpl::FusedParallel { shards } => self.step_fused_parallel_round(pop, shards),
            }
        }
        self.round += 1;
        self.recovery.observe(self.round, self.all_correct());
    }

    /// Rotates the round-start opinion double buffer for graph-fused
    /// rounds: after the swap, `snapshot` holds the round-`t` outputs for
    /// graph sources to read, and `outputs` is the write target the kernel
    /// fills completely (the source prefix is re-stamped here; every
    /// non-source slot is overwritten by the fused pass). No copy, no
    /// allocation after the buffer exists — the ~1 byte/agent `snapshot`
    /// vector is the *only* persistent auxiliary memory of graph-fused
    /// execution.
    fn rotate_opinion_buffer(&mut self) {
        if self.snapshot.len() != self.outputs.len() {
            // First graph-fused round: materialize the second buffer once.
            self.snapshot.clone_from(&self.outputs);
        }
        std::mem::swap(&mut self.snapshot, &mut self.outputs);
        let num_sources = self.spec.num_sources() as usize;
        let output = self.source.output();
        for slot in &mut self.outputs[..num_sources] {
            *slot = output;
        }
    }

    /// The bit-plane analogue of [`EngineCore::rotate_opinion_buffer`]:
    /// word-copies the population's packed opinion plane into the
    /// persistent round-start snapshot (1 bit/agent, allocated once).
    /// Graph sources then read it through [`SnapshotView::Bits`] while
    /// the in-place kernel overwrites the population plane.
    fn refresh_bit_snapshot<A: Population + ?Sized>(&mut self, pop: &A) {
        if self.bit_snapshot.len() != pop.len() {
            self.bit_snapshot = BitPlane::zeroed(pop.len());
        }
        pop.write_opinion_words(self.bit_snapshot.words_mut());
    }

    /// Per-round samplers for the current fidelity (`None` = literal).
    fn round_samplers(&self, m: u32) -> (Option<BinomialSampler>, Option<Hypergeometric>) {
        // Sized from the spec, not the byte output buffer — bit-plane
        // populations keep no such buffer.
        let n = self.spec.n() as usize;
        let x_t = self.ones_count as f64 / n as f64;
        match self.fidelity {
            Fidelity::Agent => (None, None),
            Fidelity::Binomial => (
                Some(
                    BinomialSampler::new(u64::from(m), x_t)
                        .expect("x_t is a fraction of counts, always in [0, 1]"),
                ),
                None,
            ),
            Fidelity::WithoutReplacement => (
                None,
                Some(
                    Hypergeometric::new(n as u64, self.ones_count, u64::from(m))
                        .expect("m ≤ n is validated at engine construction"),
                ),
            ),
            Fidelity::Aggregate => unreachable!("rejected at engine construction"),
        }
    }

    /// The batched round path: observations into `obs_buf`, one
    /// `step_batch` over the contiguous state buffer, counters folded from
    /// `out_buf` plus one decision count.
    fn step_batched<A: Population + ?Sized>(&mut self, pop: &mut A) {
        let n = self.spec.n() as usize;
        let num_sources = self.spec.num_sources() as usize;
        let num_agents = pop.len();
        let m = pop.samples_per_round();
        let ctx = RoundContext::new(self.round);
        let (binomial, hypergeometric) = self.round_samplers(m);
        self.obs_buf.clear();
        self.obs_buf.reserve(num_agents);
        for j in 0..num_agents {
            let raw_ones = draw_raw_count(
                self.neighborhood.as_deref(),
                binomial.as_ref(),
                hypergeometric.as_ref(),
                &self.snapshot,
                num_sources + j,
                n,
                m,
                &mut self.rng,
            );
            let seen = self.fault.corrupt_count(raw_ones, m, &mut self.rng);
            self.obs_buf
                .push(Observation::new(seen, m).expect("corrupt_count preserves the bound"));
        }
        self.out_buf.clear();
        self.out_buf.resize(num_agents, Opinion::Zero);
        pop.step_batch(&self.obs_buf, &ctx, &mut self.rng, &mut self.out_buf);
        // For passive protocols decision ≡ output, so the decision count
        // folds out of `out_buf` in the same pass; only decoupled
        // (non-passive) protocols need the extra scan over agent states.
        let correct = self.source.correct();
        let mut ones_count = num_sources as u64 * u64::from(self.source.output().is_one());
        let mut correct_decisions = 0u64;
        for (j, out) in self.out_buf.iter().enumerate() {
            self.outputs[num_sources + j] = *out;
            ones_count += u64::from(out.is_one());
            correct_decisions += u64::from(*out == correct);
        }
        self.ones_count = ones_count;
        self.correct_decisions = settle_correct_decisions(pop, correct, correct_decisions);
    }

    /// The fused round path: one [`Population::step_fused`] dispatch draws
    /// each agent's observation, applies the update, writes the output in
    /// place, and hands back the round counters — a single pass. On
    /// mean-field rounds the observation source is the round's global
    /// sampler (`O(1)` auxiliary memory); on neighborhood rounds it is a
    /// [`crate::sources::GraphSource`] over the round-start opinion double buffer (the
    /// only auxiliary memory, ~1 byte/agent, rotated — never reallocated —
    /// each round).
    fn step_fused_round<A: Population + ?Sized>(&mut self, pop: &mut A) {
        let num_sources = self.spec.num_sources() as usize;
        let m = pop.samples_per_round();
        let ctx = RoundContext::new(self.round);
        let correct = self.source.correct();
        let fault = (self.fault.flip_prob > 0.0).then_some(&self.fault);
        let num_sources_u32 = u32::try_from(num_sources).expect("num_sources < n fits u32");
        let counters = if let Some(nb) = self.neighborhood.as_deref() {
            let view = if self.bit_store {
                SnapshotView::Bits {
                    source_output: self.source.output(),
                    num_sources: num_sources_u32,
                    words: self.bit_snapshot.words(),
                }
            } else {
                SnapshotView::Bytes(&self.snapshot)
            };
            let factory = GraphSourceFactory::new(
                nb,
                view,
                fault,
                m,
                num_sources_u32,
                self.graph_index_stream,
                self.round,
            );
            // Stack-built source over the full range: no per-round
            // allocation on the single-threaded path.
            let mut obs_source = factory.source_for(0..pop.len());
            if self.bit_store {
                pop.step_fused_inplace(&mut obs_source, &ctx, &mut self.rng, correct)
            } else {
                pop.step_fused(
                    &mut obs_source,
                    &ctx,
                    &mut self.rng,
                    correct,
                    &mut self.outputs[num_sources..],
                )
            }
        } else {
            let (binomial, hypergeometric) = self.round_samplers(m);
            let sampler = match (binomial.as_ref(), hypergeometric.as_ref()) {
                (Some(s), _) => MeanFieldSampler::Binomial(s),
                (_, Some(h)) => MeanFieldSampler::Hypergeometric(h),
                _ => unreachable!("fused complete-graph rounds run on mean-field fidelities only"),
            };
            let mut obs_source = MeanFieldSource { sampler, fault, m };
            if self.bit_store {
                pop.step_fused_inplace(&mut obs_source, &ctx, &mut self.rng, correct)
            } else {
                pop.step_fused(
                    &mut obs_source,
                    &ctx,
                    &mut self.rng,
                    correct,
                    &mut self.outputs[num_sources..],
                )
            }
        };
        self.settle_fused_counters(pop, counters);
    }

    /// The work-sharded parallel fused round: one
    /// [`Population::step_fused_parallel`] dispatch shards the agents into
    /// `shards` contiguous ranges, each stepped by the fused kernel under
    /// its own counter-derived RNG stream (never the engine RNG — the main
    /// stream is untouched by parallel rounds). Every shard gets a private
    /// source over shared round-start state: the mean-field samplers, or
    /// the opinion double buffer plus adjacency on neighborhood runs
    /// (range-aligned through [`GraphSourceFactory`]). Worker count =
    /// `min(shards, FET_PARALLEL_WORKERS if set)`; it never affects the
    /// trajectory.
    fn step_fused_parallel_round<A: Population + ?Sized>(&mut self, pop: &mut A, shards: u32) {
        let num_sources = self.spec.num_sources() as usize;
        let m = pop.samples_per_round();
        let ctx = RoundContext::new(self.round);
        let correct = self.source.correct();
        let fault = (self.fault.flip_prob > 0.0).then_some(&self.fault);
        let workers = match &self.parallel_workers {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("FET_PARALLEL_WORKERS must be a u32, got `{v}`")),
            None => shards,
        };
        let plan = ShardPlan::new(shards, workers, self.parallel_stream, self.round);
        let num_sources_u32 = u32::try_from(num_sources).expect("num_sources < n fits u32");
        let counters = if let Some(nb) = self.neighborhood.as_deref() {
            let view = if self.bit_store {
                SnapshotView::Bits {
                    source_output: self.source.output(),
                    num_sources: num_sources_u32,
                    words: self.bit_snapshot.words(),
                }
            } else {
                SnapshotView::Bytes(&self.snapshot)
            };
            let factory = GraphSourceFactory::new(
                nb,
                view,
                fault,
                m,
                num_sources_u32,
                self.graph_index_stream,
                self.round,
            );
            if self.bit_store {
                pop.step_fused_parallel_inplace(&factory, &ctx, &plan, correct)
            } else {
                pop.step_fused_parallel(
                    &factory,
                    &ctx,
                    &plan,
                    correct,
                    &mut self.outputs[num_sources..],
                )
            }
        } else {
            let (binomial, hypergeometric) = self.round_samplers(m);
            let sampler = match (binomial.as_ref(), hypergeometric.as_ref()) {
                (Some(s), _) => MeanFieldSampler::Binomial(s),
                (_, Some(h)) => MeanFieldSampler::Hypergeometric(h),
                _ => unreachable!(
                    "parallel fused complete-graph rounds run on mean-field fidelities only"
                ),
            };
            let factory = MeanFieldSourceFactory { sampler, fault, m };
            if self.bit_store {
                pop.step_fused_parallel_inplace(&factory, &ctx, &plan, correct)
            } else {
                pop.step_fused_parallel(
                    &factory,
                    &ctx,
                    &plan,
                    correct,
                    &mut self.outputs[num_sources..],
                )
            }
        };
        self.settle_fused_counters(pop, counters);
    }

    /// Folds one fused round's kernel counters into the engine counters.
    fn settle_fused_counters<A: Population + ?Sized>(&mut self, pop: &A, counters: FusedCounters) {
        let num_sources = self.spec.num_sources();
        self.ones_count = num_sources * u64::from(self.source.output().is_one()) + counters.ones;
        self.correct_decisions =
            settle_correct_decisions(pop, self.source.correct(), counters.correct);
    }

    /// The per-agent round path, used when sleepy-agent faults are active.
    fn step_with_sleep<A: Population + ?Sized>(&mut self, pop: &mut A) {
        let n = self.spec.n() as usize;
        let num_sources = self.spec.num_sources() as usize;
        let m = pop.samples_per_round();
        let ctx = RoundContext::new(self.round);
        let (binomial, hypergeometric) = self.round_samplers(m);
        let correct = self.source.correct();
        let mut ones_count = num_sources as u64 * u64::from(self.source.output().is_one());
        let mut correct_decisions = 0u64;
        for j in 0..pop.len() {
            let agent_index = num_sources + j;
            let sleeping = self.fault.draws_sleep(&mut self.rng);
            if !sleeping {
                let raw_ones = draw_raw_count(
                    self.neighborhood.as_deref(),
                    binomial.as_ref(),
                    hypergeometric.as_ref(),
                    &self.snapshot,
                    agent_index,
                    n,
                    m,
                    &mut self.rng,
                );
                let seen = self.fault.corrupt_count(raw_ones, m, &mut self.rng);
                let obs = Observation::new(seen, m)
                    .expect("corrupt_count preserves the sample-size bound");
                let new_output = pop.step_agent(j, &obs, &ctx, &mut self.rng);
                self.outputs[agent_index] = new_output;
            }
            ones_count += u64::from(self.outputs[agent_index].is_one());
            // Sleeping agents kept their output, so for passive protocols
            // (decision ≡ output, slept or not) the fold stays fused.
            correct_decisions += u64::from(self.outputs[agent_index] == correct);
        }
        self.ones_count = ones_count;
        self.correct_decisions = settle_correct_decisions(pop, correct, correct_decisions);
    }

    /// Runs until convergence is confirmed or `max_rounds` have executed.
    fn run<A, O>(
        &mut self,
        pop: &mut A,
        max_rounds: u64,
        criterion: ConvergenceCriterion,
        observer: &mut O,
    ) -> ConvergenceReport
    where
        A: Population + ?Sized,
        O: RoundObserver + ?Sized,
    {
        self.recovery.set_criterion(criterion);
        let mut detector = ConvergenceDetector::new(criterion);
        observer.on_round(self.snapshot_now());
        let mut done = detector.observe(self.round, self.all_correct());
        while (!done || !self.schedule_settled()) && self.round < max_rounds {
            self.step(pop);
            observer.on_round(self.snapshot_now());
            done = detector.observe(self.round, self.all_correct());
        }
        ConvergenceReport {
            converged_at: detector.converged_at(),
            rounds_run: self.round,
            final_fraction_correct: self.fraction_correct(),
        }
    }

    fn snapshot_now(&self) -> RoundSnapshot {
        RoundSnapshot {
            round: self.round,
            fraction_ones: self.fraction_ones(),
            fraction_correct: self.fraction_correct(),
        }
    }
}

/// Validates a communication structure and its source placement, returning
/// the implied problem specification. Shared by both engine front ends.
fn neighborhood_spec(
    neighborhood: &dyn Neighborhood,
    num_sources: u32,
    correct: Opinion,
) -> Result<ProblemSpec, SimError> {
    ensure_observable(neighborhood)?;
    let n = neighborhood.population();
    if num_sources == 0 || num_sources >= n {
        return Err(SimError::InvalidParameter {
            name: "num_sources",
            detail: format!("need 1 ≤ num_sources < n = {n}, got {num_sources}"),
        });
    }
    Ok(ProblemSpec::new(
        u64::from(n),
        u64::from(num_sources),
        correct,
    )?)
}

/// The storage/configuration pairing error shared by the
/// [`PopulationEngine`] constructors: bit-plane containers run the fused
/// round family only, so they need an on-demand observation source.
fn bit_store_fidelity_error() -> SimError {
    SimError::InvalidParameter {
        name: "storage",
        detail: "offending axis: fidelity — bit-plane populations run the fused round \
                 family only, and the literal Agent fidelity on the complete graph has \
                 no on-demand observation source; use Binomial/WithoutReplacement, a \
                 neighborhood, or byte storage"
            .into(),
    }
}

/// A population of agents running one protocol, plus the round loop.
///
/// Agent indices `[0, num_sources)` are sources; the rest run the protocol.
///
/// # Example
///
/// ```
/// use fet_core::fet::FetProtocol;
/// use fet_core::config::ProblemSpec;
/// use fet_core::opinion::Opinion;
/// use fet_sim::engine::{Engine, Fidelity};
/// use fet_sim::init::InitialCondition;
/// use fet_sim::convergence::ConvergenceCriterion;
/// use fet_sim::observer::NullObserver;
///
/// let spec = ProblemSpec::single_source(300, Opinion::One)?;
/// let proto = FetProtocol::for_population(300, 4.0)?;
/// let mut engine = Engine::new(proto, spec, Fidelity::Binomial, InitialCondition::AllWrong, 7)?;
/// let report = engine.run(5_000, ConvergenceCriterion::default(), &mut NullObserver);
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<P: Protocol> {
    population: TypedPopulation<P>,
    core: EngineCore,
}

impl<P> Engine<P>
where
    P: Protocol + fmt::Debug + Send + Sync,
{
    /// Creates an engine with non-source opinions drawn from `init` and
    /// internal variables randomized by the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedPopulation`] when `n` does not fit in
    /// addressable memory for per-agent simulation, and
    /// [`SimError::InvalidParameter`] when [`Fidelity::WithoutReplacement`]
    /// is requested with a sample size exceeding the population.
    pub fn new(
        protocol: P,
        spec: ProblemSpec,
        fidelity: Fidelity,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        let mut population = TypedPopulation::new(protocol);
        let core = EngineCore::construct(&mut population, spec, fidelity, init, seed)?;
        Ok(Engine { population, core })
    }

    /// Creates an engine from explicitly provided non-source states — the
    /// entry point for adversarial configurations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedPopulation`] for oversized `n` and
    /// [`SimError::InvalidParameter`] when `states.len()` does not equal the
    /// number of non-source agents.
    pub fn from_states(
        protocol: P,
        spec: ProblemSpec,
        fidelity: Fidelity,
        states: Vec<P::State>,
        seed: u64,
    ) -> Result<Self, SimError> {
        let mut population = TypedPopulation::from_states(protocol, states);
        let core = EngineCore::construct_filled(&mut population, spec, fidelity, seed)?;
        Ok(Engine { population, core })
    }

    /// Creates an engine where each agent samples from an explicit
    /// communication structure instead of the whole population — the
    /// `fet-topology` engine's mechanics, available behind the unified
    /// facade. Sources occupy vertices `[0, num_sources)`; sampling is
    /// literal ([`Fidelity::Agent`] semantics) since neighbor counts do
    /// not follow a global binomial law.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when some vertex has no
    /// neighbors, or when `num_sources` is zero or not smaller than the
    /// vertex count; propagates `ProblemSpec` validation as
    /// [`SimError::Core`].
    pub fn with_neighborhood(
        protocol: P,
        neighborhood: Box<dyn Neighborhood>,
        num_sources: u32,
        correct: Opinion,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        let spec = neighborhood_spec(neighborhood.as_ref(), num_sources, correct)?;
        let mut engine = Engine::new(protocol, spec, Fidelity::Agent, init, seed)?;
        engine.core.neighborhood = Some(neighborhood);
        Ok(engine)
    }

    /// Installs a fault plan (replacing any previous plan).
    pub fn set_fault_plan(&mut self, fault: FaultPlan) {
        self.core.fault = fault;
    }

    /// Installs a round-indexed fault schedule: its base plan replaces
    /// the current [`FaultPlan`], and its events fire at the start of
    /// their rounds during [`Engine::step`] / [`Engine::run`]. Replaces
    /// any previous schedule and clears its recovery records.
    pub fn set_fault_schedule(&mut self, schedule: &FaultSchedule) {
        self.core.set_schedule(schedule);
    }

    /// Per-event recovery records accumulated so far (one per fired
    /// schedule event, in firing order; the last may still be open).
    pub fn recovery_records(&self) -> &[RecoveryRecord] {
        self.core.recovery.records()
    }

    /// Selects which round implementation executes (default
    /// [`ExecutionMode::Auto`]). See the [module docs](self) for the
    /// batched/fused trade-off and the stream-compatibility caveat:
    /// changing the *resolved* implementation changes the run's RNG
    /// interleaving, so fused and batched runs of one seed are distinct
    /// (each individually deterministic) trajectories.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when a fused mode
    /// ([`ExecutionMode::Fused`] / [`ExecutionMode::FusedParallel`]) is
    /// requested for a configuration that must read individual agents (a
    /// neighborhood, or [`Fidelity::Agent`]), and for
    /// [`ExecutionMode::FusedParallel`] with zero threads or a protocol
    /// that opts out of parallel sharding.
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) -> Result<(), SimError> {
        self.core.set_mode(mode)
    }

    /// The configured execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.core.mode
    }

    /// Bytes of per-round auxiliary round buffers currently allocated
    /// (output snapshot, observation buffer, output scratch). `0` for as
    /// long as every executed round has gone through the mean-field fused
    /// path — the measurable form of its `O(1)`-auxiliary-memory
    /// guarantee; graph-fused runs report exactly the persistent ~1
    /// byte/agent opinion double buffer.
    pub fn round_scratch_bytes(&self) -> usize {
        self.core.scratch_bytes()
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        self.population.protocol()
    }

    /// The problem specification this engine was built with.
    ///
    /// Note: a fault plan may retarget the source mid-run; the *current*
    /// correct opinion is [`Engine::correct`], not `spec().correct()`.
    pub fn spec(&self) -> &ProblemSpec {
        &self.core.spec
    }

    /// The current correct opinion (tracks mid-run retargeting).
    pub fn correct(&self) -> Opinion {
        self.core.source.correct()
    }

    /// Current round index (0 before any [`Engine::step`]).
    pub fn round(&self) -> u64 {
        self.core.round
    }

    /// The paper's `x_t`: fraction of all agents (sources included)
    /// currently outputting opinion 1.
    pub fn fraction_ones(&self) -> f64 {
        self.core.fraction_ones()
    }

    /// Fraction of non-source agents whose *decision* equals the correct
    /// opinion.
    pub fn fraction_correct(&self) -> f64 {
        self.core.fraction_correct()
    }

    /// `true` when every non-source agent decides correctly.
    pub fn all_correct(&self) -> bool {
        self.core.all_correct()
    }

    /// Public outputs of all agents (index `< num_sources` are sources).
    pub fn outputs(&self) -> &[Opinion] {
        &self.core.outputs
    }

    /// Non-source agent states (read-only).
    pub fn states(&self) -> &[P::State] {
        self.population.states()
    }

    /// Replaces the state of non-source agent `idx` (0-based among
    /// non-sources) and refreshes cached counters. Adversary entry point.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn set_state(&mut self, idx: usize, state: P::State) {
        self.population.set_state(idx, state);
        self.refresh_caches();
    }

    /// Re-derives outputs and counters from the states — call after bulk
    /// state surgery through [`Engine::states_mut`].
    pub fn refresh_caches(&mut self) {
        self.core.refresh_caches(&self.population);
    }

    /// Mutable access to non-source states for adversarial surgery.
    /// Callers **must** invoke [`Engine::refresh_caches`] afterwards.
    pub fn states_mut(&mut self) -> &mut [P::State] {
        self.population.states_mut()
    }

    /// Executes one synchronous round.
    ///
    /// When no agent can sleep, the round runs in three phases —
    /// observation generation into a reusable buffer, one
    /// [`Protocol::step_batch`] call over the contiguous state slice, and a
    /// counter fold — so protocols with specialized batch kernels pay
    /// neither per-agent dispatch nor per-agent validation. Sleepy-agent
    /// fault plans fall back to the per-agent loop (a sleeping agent must
    /// skip its update entirely).
    pub fn step(&mut self) {
        self.core.step(&mut self.population);
    }

    /// Runs until convergence is confirmed or `max_rounds` have executed.
    ///
    /// The observer receives round 0 (the initial configuration) and every
    /// round thereafter.
    pub fn run<O: RoundObserver + ?Sized>(
        &mut self,
        max_rounds: u64,
        criterion: ConvergenceCriterion,
        observer: &mut O,
    ) -> ConvergenceReport {
        self.core
            .run(&mut self.population, max_rounds, criterion, observer)
    }
}

/// The runtime-selected synchronous engine: [`Engine`] mechanics over a
/// type-erased contiguous population container.
///
/// Where the old erased route (`Engine<ErasedProtocol>`) boxed every
/// agent's state and re-materialized a typed buffer each round, this engine
/// owns a `Box<dyn DynPopulation>` — one contiguous `Vec` of concrete
/// states behind an object-safe interface — so each batched round costs a
/// single virtual dispatch into the typed kernel with **zero per-round
/// allocation or cloning**. Runs selected by registry name through
/// `Simulation::builder()` execute here and are stream-identical to the
/// corresponding typed [`Engine<P>`] run.
///
/// # Example
///
/// ```
/// use fet_core::config::ProblemSpec;
/// use fet_core::erased::ErasedProtocol;
/// use fet_core::fet::FetProtocol;
/// use fet_core::opinion::Opinion;
/// use fet_sim::convergence::ConvergenceCriterion;
/// use fet_sim::engine::{Fidelity, PopulationEngine};
/// use fet_sim::init::InitialCondition;
/// use fet_sim::observer::NullObserver;
///
/// let spec = ProblemSpec::single_source(300, Opinion::One)?;
/// let erased = ErasedProtocol::new(FetProtocol::for_population(300, 4.0)?);
/// let mut engine = PopulationEngine::new(
///     erased.population(),
///     spec,
///     Fidelity::Binomial,
///     InitialCondition::AllWrong,
///     7,
/// )?;
/// let report = engine.run(5_000, ConvergenceCriterion::default(), &mut NullObserver);
/// assert!(report.converged());
/// assert_eq!(engine.protocol_name(), "fet");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PopulationEngine {
    population: Box<dyn DynPopulation>,
    core: EngineCore,
}

impl PopulationEngine {
    /// Creates an engine over an (empty) erased population container,
    /// filling it with non-source agents exactly as [`Engine::new`] does —
    /// same seed derivation, same draw/init interleaving, hence identical
    /// random streams.
    ///
    /// # Errors
    ///
    /// As [`Engine::new`]. Additionally returns
    /// [`SimError::InvalidParameter`] when the container already holds
    /// agents (populations are filled by the engine), or when a bit-plane
    /// container ([`Population::supports_inplace_rounds`]) is paired with
    /// the literal [`Fidelity::Agent`] on the complete graph — the one
    /// configuration with no fused round for the in-place kernels to run.
    pub fn new(
        population: Box<dyn DynPopulation>,
        spec: ProblemSpec,
        fidelity: Fidelity,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        PopulationEngine::build(population, spec, fidelity, init, seed, None)
    }

    /// Topology variant of [`PopulationEngine::new`]; see
    /// [`Engine::with_neighborhood`]. Bit-plane containers are accepted
    /// here (graph rounds are fused-capable): their round-start double
    /// buffer is the packed 1 bit/agent word snapshot.
    ///
    /// # Errors
    ///
    /// As [`Engine::with_neighborhood`].
    pub fn with_neighborhood(
        population: Box<dyn DynPopulation>,
        neighborhood: Box<dyn Neighborhood>,
        num_sources: u32,
        correct: Opinion,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        let spec = neighborhood_spec(neighborhood.as_ref(), num_sources, correct)?;
        PopulationEngine::build(
            population,
            spec,
            Fidelity::Agent,
            init,
            seed,
            Some(neighborhood),
        )
    }

    /// Creates an engine over an already-filled container — the erased
    /// analogue of [`Engine::from_states`], and the entry point for
    /// replaying an explicit state vector on bit-plane storage (see
    /// [`fet_core::bitplane::BitPopulation::from_states`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::from_states`]; additionally rejects a bit-plane
    /// container paired with the literal [`Fidelity::Agent`] on the
    /// complete graph (see [`PopulationEngine::new`]).
    pub fn from_population(
        mut population: Box<dyn DynPopulation>,
        spec: ProblemSpec,
        fidelity: Fidelity,
        seed: u64,
    ) -> Result<Self, SimError> {
        let core = EngineCore::construct_filled(population.as_mut(), spec, fidelity, seed)?;
        if core.bit_store && !core.fused_capable() {
            return Err(bit_store_fidelity_error());
        }
        Ok(PopulationEngine { population, core })
    }

    /// Shared constructor body: fills the container, installs the
    /// neighborhood (when any), and validates the storage/configuration
    /// pairing — bit-plane containers run the fused family only, so they
    /// need an on-demand observation source (a mean-field fidelity or a
    /// neighborhood).
    fn build(
        mut population: Box<dyn DynPopulation>,
        spec: ProblemSpec,
        fidelity: Fidelity,
        init: InitialCondition,
        seed: u64,
        neighborhood: Option<Box<dyn Neighborhood>>,
    ) -> Result<Self, SimError> {
        if !population.is_empty() {
            return Err(SimError::InvalidParameter {
                name: "population",
                detail: format!(
                    "expected an empty container, got {} pre-filled agents",
                    population.len()
                ),
            });
        }
        let mut core = EngineCore::construct(population.as_mut(), spec, fidelity, init, seed)?;
        core.neighborhood = neighborhood;
        if core.bit_store && !core.fused_capable() {
            return Err(bit_store_fidelity_error());
        }
        Ok(PopulationEngine { population, core })
    }

    /// Installs a fault plan (replacing any previous plan).
    pub fn set_fault_plan(&mut self, fault: FaultPlan) {
        self.core.fault = fault;
    }

    /// Installs a round-indexed fault schedule (see
    /// [`Engine::set_fault_schedule`]).
    pub fn set_fault_schedule(&mut self, schedule: &FaultSchedule) {
        self.core.set_schedule(schedule);
    }

    /// Per-event recovery records accumulated so far (see
    /// [`Engine::recovery_records`]).
    pub fn recovery_records(&self) -> &[RecoveryRecord] {
        self.core.recovery.records()
    }

    /// Selects which round implementation executes (see
    /// [`Engine::set_execution_mode`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::set_execution_mode`].
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) -> Result<(), SimError> {
        self.core.set_mode(mode)
    }

    /// The configured execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.core.mode
    }

    /// Bytes of per-round auxiliary buffers currently allocated (see
    /// [`Engine::round_scratch_bytes`]).
    pub fn round_scratch_bytes(&self) -> usize {
        self.core.scratch_bytes()
    }

    /// The running protocol's name.
    pub fn protocol_name(&self) -> &str {
        self.population.protocol_name()
    }

    /// Agents sampled per agent per round.
    pub fn samples_per_round(&self) -> u32 {
        self.population.samples_per_round()
    }

    /// The erased population container (for memory accounting and
    /// inspection).
    pub fn population(&self) -> &dyn DynPopulation {
        self.population.as_ref()
    }

    /// The problem specification this engine was built with (see
    /// [`Engine::spec`] for the retargeting caveat).
    pub fn spec(&self) -> &ProblemSpec {
        &self.core.spec
    }

    /// The current correct opinion (tracks mid-run retargeting).
    pub fn correct(&self) -> Opinion {
        self.core.source.correct()
    }

    /// Current round index (0 before any [`PopulationEngine::step`]).
    pub fn round(&self) -> u64 {
        self.core.round
    }

    /// The paper's `x_t`: fraction of all agents currently outputting 1.
    pub fn fraction_ones(&self) -> f64 {
        self.core.fraction_ones()
    }

    /// Fraction of non-source agents deciding correctly.
    pub fn fraction_correct(&self) -> f64 {
        self.core.fraction_correct()
    }

    /// `true` when every non-source agent decides correctly.
    pub fn all_correct(&self) -> bool {
        self.core.all_correct()
    }

    /// `true` when the engine drives a bit-plane population through the
    /// in-place fused kernels (no byte output buffer exists; see
    /// [`PopulationEngine::collect_outputs`]).
    pub fn uses_bit_storage(&self) -> bool {
        self.core.bit_store
    }

    /// Public outputs of all agents (index `< num_sources` are sources).
    ///
    /// # Panics
    ///
    /// Panics on bit-plane storage, which keeps no byte output buffer —
    /// use [`PopulationEngine::collect_outputs`] (allocating) or read the
    /// population directly.
    pub fn outputs(&self) -> &[Opinion] {
        assert!(
            !self.core.bit_store,
            "bit-plane runs keep no byte output buffer; use collect_outputs()"
        );
        &self.core.outputs
    }

    /// The current outputs of all agents, materialized into a fresh
    /// `Vec` — works on every storage representation (sources occupy
    /// indices `< num_sources`). Allocates; meant for inspection and
    /// equivalence tests, not hot paths.
    pub fn collect_outputs(&self) -> Vec<Opinion> {
        let num_sources = self.core.spec.num_sources() as usize;
        let mut out = vec![self.core.source.output(); self.core.spec.n() as usize];
        self.population.write_outputs(&mut out[num_sources..]);
        out
    }

    /// Executes one synchronous round (see [`Engine::step`]).
    pub fn step(&mut self) {
        self.core.step(self.population.as_mut());
    }

    /// Runs until convergence is confirmed or `max_rounds` have executed
    /// (see [`Engine::run`]).
    pub fn run<O: RoundObserver + ?Sized>(
        &mut self,
        max_rounds: u64,
        criterion: ConvergenceCriterion,
        observer: &mut O,
    ) -> ConvergenceReport {
        self.core
            .run(self.population.as_mut(), max_rounds, criterion, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEventKind;
    use crate::observer::{NullObserver, TrajectoryRecorder};
    use fet_core::erased::ErasedProtocol;
    use fet_core::fet::{FetProtocol, FetState};

    fn spec(n: u64) -> ProblemSpec {
        ProblemSpec::single_source(n, Opinion::One).unwrap()
    }

    #[test]
    fn engine_rejects_mismatched_states() {
        let p = FetProtocol::new(4).unwrap();
        let err = Engine::from_states(p, spec(10), Fidelity::Agent, vec![], 1);
        assert!(matches!(err, Err(SimError::InvalidParameter { .. })));
    }

    #[test]
    fn initial_condition_all_wrong_sets_x0() {
        let p = FetProtocol::new(4).unwrap();
        let e = Engine::new(p, spec(100), Fidelity::Agent, InitialCondition::AllWrong, 3).unwrap();
        // Only the source holds 1.
        assert!((e.fraction_ones() - 0.01).abs() < 1e-12);
        assert_eq!(e.fraction_correct(), 0.0);
        assert!(!e.all_correct());
    }

    #[test]
    fn initial_condition_all_correct_is_absorbing_for_fet() {
        let p = FetProtocol::new(8).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::Agent,
            InitialCondition::AllCorrect,
            5,
        )
        .unwrap();
        // The all-correct configuration must persist: every sample is
        // unanimous, every comparison ties once the stale counts settle.
        // The very first round may flip agents whose adversarial stale
        // count differs from ℓ; run a couple of rounds then require
        // stability.
        for _ in 0..3 {
            e.step();
        }
        let x_after_settle = e.fraction_ones();
        for _ in 0..10 {
            e.step();
        }
        assert_eq!(e.fraction_ones(), x_after_settle);
        assert!(
            x_after_settle > 0.9,
            "population should stay near consensus"
        );
    }

    #[test]
    fn fet_converges_small_population_all_fidelities() {
        for fidelity in [
            Fidelity::Agent,
            Fidelity::Binomial,
            Fidelity::WithoutReplacement,
        ] {
            let p = FetProtocol::for_population(300, 4.0).unwrap();
            let mut e =
                Engine::new(p, spec(300), fidelity, InitialCondition::AllWrong, 11).unwrap();
            let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
            assert!(report.converged(), "{fidelity:?} failed: {report:?}");
            assert_eq!(report.final_fraction_correct, 1.0);
        }
    }

    #[test]
    fn without_replacement_rejects_oversized_samples() {
        // 2ℓ = 64 samples from a population of 20 cannot be distinct.
        let p = FetProtocol::new(32).unwrap();
        let err = Engine::new(
            p,
            spec(20),
            Fidelity::WithoutReplacement,
            InitialCondition::AllWrong,
            1,
        );
        assert!(matches!(
            err,
            Err(SimError::InvalidParameter {
                name: "fidelity",
                ..
            })
        ));
    }

    #[test]
    fn without_replacement_consensus_is_absorbing() {
        // Every sample from a unanimous population is unanimous whether or
        // not indices repeat, so the absorbing argument carries over.
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::WithoutReplacement,
            InitialCondition::AllWrong,
            41,
        )
        .unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        for _ in 0..200 {
            e.step();
            assert!(
                e.all_correct(),
                "absorbing state violated at round {}",
                e.round()
            );
        }
    }

    #[test]
    fn converged_state_is_absorbing() {
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            13,
        )
        .unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged());
        // Keep stepping: consensus on the correct opinion must never break.
        for _ in 0..200 {
            e.step();
            assert!(
                e.all_correct(),
                "absorbing state violated at round {}",
                e.round()
            );
        }
    }

    #[test]
    fn observer_sees_initial_round_and_monotone_round_numbers() {
        let p = FetProtocol::new(6).unwrap();
        let mut e =
            Engine::new(p, spec(50), Fidelity::Agent, InitialCondition::Random, 17).unwrap();
        let mut rec = TrajectoryRecorder::new();
        let report = e.run(50, ConvergenceCriterion::new(2), &mut rec);
        assert_eq!(rec.fractions().len() as u64, report.rounds_run + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let p = FetProtocol::new(8).unwrap();
            let mut e = Engine::new(
                p,
                spec(120),
                Fidelity::Agent,
                InitialCondition::Random,
                seed,
            )
            .unwrap();
            let mut rec = TrajectoryRecorder::new();
            e.run(300, ConvergenceCriterion::new(2), &mut rec);
            rec.into_fractions()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ");
    }

    #[test]
    fn correct_zero_instance_converges_to_zero() {
        let spec0 = ProblemSpec::single_source(300, Opinion::Zero).unwrap();
        let p = FetProtocol::for_population(300, 4.0).unwrap();
        let mut e =
            Engine::new(p, spec0, Fidelity::Binomial, InitialCondition::AllWrong, 23).unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        assert!((e.fraction_ones() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn set_state_refreshes_counters() {
        let p = FetProtocol::new(4).unwrap();
        let mut e = Engine::new(
            p,
            spec(10),
            Fidelity::Agent,
            InitialCondition::AllCorrect,
            29,
        )
        .unwrap();
        assert!(e.all_correct());
        e.set_state(
            0,
            FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: 0,
            },
        );
        assert!(!e.all_correct());
        assert!((e.fraction_ones() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn source_retarget_mid_run_restabilizes() {
        let p = FetProtocol::for_population(300, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllCorrect,
            31,
        )
        .unwrap();
        e.set_fault_plan(FaultPlan::with_source_retarget(10, Opinion::Zero));
        // After round 10 the correct bit is Zero; the population must
        // re-converge to all-zero despite starting all-one.
        let mut converged_to_zero = false;
        for _ in 0..20_000 {
            e.step();
            if e.correct() == Opinion::Zero && e.all_correct() {
                converged_to_zero = true;
                break;
            }
        }
        assert!(
            converged_to_zero,
            "population failed to re-stabilize after retarget"
        );
        assert_eq!(e.fraction_ones(), 0.0);
    }

    // ---- PopulationEngine: the erased hot path ----

    fn fet_population(ell: u32) -> Box<dyn fet_core::population::DynPopulation> {
        ErasedProtocol::new(FetProtocol::new(ell).unwrap()).population()
    }

    /// Every fidelity, with and without faults: the population-erased
    /// engine must replay the typed engine's trajectory bit for bit.
    #[test]
    fn population_engine_is_stream_identical_to_typed() {
        let cases: Vec<(Fidelity, FaultPlan)> = vec![
            (Fidelity::Agent, FaultPlan::none()),
            (Fidelity::Binomial, FaultPlan::none()),
            (Fidelity::WithoutReplacement, FaultPlan::none()),
            (Fidelity::Binomial, FaultPlan::with_noise(0.03).unwrap()),
            (Fidelity::Binomial, FaultPlan::with_sleep(0.2).unwrap()),
            (
                Fidelity::Binomial,
                FaultPlan::with_source_retarget(5, Opinion::Zero),
            ),
        ];
        for (fidelity, fault) in cases {
            let mut typed = Engine::new(
                FetProtocol::new(8).unwrap(),
                spec(150),
                fidelity,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            typed.set_fault_plan(fault);
            let mut erased = PopulationEngine::new(
                fet_population(8),
                spec(150),
                fidelity,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            erased.set_fault_plan(fault);
            let mut rec_t = TrajectoryRecorder::new();
            let mut rec_e = TrajectoryRecorder::new();
            let rt = typed.run(120, ConvergenceCriterion::new(3), &mut rec_t);
            let re = erased.run(120, ConvergenceCriterion::new(3), &mut rec_e);
            assert_eq!(rt, re, "{fidelity:?}/{fault:?} reports diverged");
            assert_eq!(
                rec_t.into_fractions(),
                rec_e.into_fractions(),
                "{fidelity:?}/{fault:?} trajectories diverged"
            );
            assert_eq!(typed.outputs(), erased.outputs());
        }
    }

    /// A ring, directly on the trait (no `fet-topology` available here).
    #[derive(Debug, Clone)]
    struct Ring {
        links: Vec<Vec<u32>>,
    }

    impl Ring {
        fn new(n: u32) -> Ring {
            let links = (0..n).map(|v| vec![(v + n - 1) % n, (v + 1) % n]).collect();
            Ring { links }
        }
    }

    impl Neighborhood for Ring {
        fn population(&self) -> u32 {
            self.links.len() as u32
        }
        fn neighbors_of(&self, vertex: u32) -> &[u32] {
            &self.links[vertex as usize]
        }
        fn clone_box(&self) -> Box<dyn Neighborhood> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn population_engine_on_a_ring_matches_typed() {
        let mut typed = Engine::with_neighborhood(
            FetProtocol::new(3).unwrap(),
            Box::new(Ring::new(60)),
            2,
            Opinion::One,
            InitialCondition::AllWrong,
            19,
        )
        .unwrap();
        let mut erased = PopulationEngine::with_neighborhood(
            fet_population(3),
            Box::new(Ring::new(60)),
            2,
            Opinion::One,
            InitialCondition::AllWrong,
            19,
        )
        .unwrap();
        for _ in 0..40 {
            typed.step();
            erased.step();
        }
        assert_eq!(typed.outputs(), erased.outputs());
        assert_eq!(typed.fraction_correct(), erased.fraction_correct());
    }

    #[test]
    fn population_engine_rejects_prefilled_containers() {
        let mut pop = fet_population(4);
        let mut rng = SeedTree::new(1).child("prefill").rng();
        pop.push_agent(Opinion::Zero, &mut rng);
        let err = PopulationEngine::new(
            pop,
            spec(10),
            Fidelity::Agent,
            InitialCondition::AllWrong,
            1,
        );
        assert!(matches!(
            err,
            Err(SimError::InvalidParameter {
                name: "population",
                ..
            })
        ));
    }

    // ---- the fused execution mode ----

    /// Fused rounds replay bit for bit across the typed and
    /// population-erased front ends, for every mean-field fidelity and
    /// the fault plans the fused path supports (noise, retargeting; sleep
    /// rounds fall back to the per-agent loop by design and are covered
    /// by the batched cases above).
    #[test]
    fn fused_is_stream_identical_across_typed_and_population_engines() {
        let cases: Vec<(Fidelity, FaultPlan)> = vec![
            (Fidelity::Binomial, FaultPlan::none()),
            (Fidelity::WithoutReplacement, FaultPlan::none()),
            (Fidelity::Binomial, FaultPlan::with_noise(0.03).unwrap()),
            (
                Fidelity::Binomial,
                FaultPlan::with_source_retarget(5, Opinion::Zero),
            ),
        ];
        for (fidelity, fault) in cases {
            let mut typed = Engine::new(
                FetProtocol::new(8).unwrap(),
                spec(150),
                fidelity,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            typed.set_fault_plan(fault);
            typed.set_execution_mode(ExecutionMode::Fused).unwrap();
            let mut erased = PopulationEngine::new(
                fet_population(8),
                spec(150),
                fidelity,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            erased.set_fault_plan(fault);
            erased.set_execution_mode(ExecutionMode::Fused).unwrap();
            let mut rec_t = TrajectoryRecorder::new();
            let mut rec_e = TrajectoryRecorder::new();
            let rt = typed.run(120, ConvergenceCriterion::new(3), &mut rec_t);
            let re = erased.run(120, ConvergenceCriterion::new(3), &mut rec_e);
            assert_eq!(rt, re, "{fidelity:?}/{fault:?} fused reports diverged");
            assert_eq!(
                rec_t.into_fractions(),
                rec_e.into_fractions(),
                "{fidelity:?}/{fault:?} fused trajectories diverged"
            );
            assert_eq!(typed.outputs(), erased.outputs());
        }
    }

    /// Auto mode resolves to the fused kernel on mean-field rounds: the
    /// round scratch buffers are never allocated — while forcing the
    /// batched pipeline allocates them as before.
    #[test]
    fn auto_mode_runs_mean_field_rounds_with_zero_scratch() {
        let mut auto = Engine::new(
            FetProtocol::new(6).unwrap(),
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            3,
        )
        .unwrap();
        assert_eq!(auto.execution_mode(), ExecutionMode::Auto);
        for _ in 0..20 {
            auto.step();
        }
        assert_eq!(
            auto.round_scratch_bytes(),
            0,
            "fused rounds must not allocate snapshot/obs/out buffers"
        );

        let mut batched = Engine::new(
            FetProtocol::new(6).unwrap(),
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            3,
        )
        .unwrap();
        batched.set_execution_mode(ExecutionMode::Batched).unwrap();
        batched.step();
        assert!(
            batched.round_scratch_bytes() > 0,
            "the batched pipeline keeps its observation/output buffers"
        );
    }

    /// Literal-fidelity rounds keep the snapshot (they read it), while
    /// mean-field batched rounds skip the copy but keep obs/out buffers.
    #[test]
    fn snapshot_is_only_materialized_when_read() {
        let mut literal = Engine::new(
            FetProtocol::new(4).unwrap(),
            spec(100),
            Fidelity::Agent,
            InitialCondition::AllWrong,
            9,
        )
        .unwrap();
        literal.step();
        assert!(literal.round_scratch_bytes() >= 100, "snapshot + buffers");

        let mut mean_field = Engine::new(
            FetProtocol::new(4).unwrap(),
            spec(100),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            9,
        )
        .unwrap();
        mean_field
            .set_execution_mode(ExecutionMode::Batched)
            .unwrap();
        mean_field.step();
        // obs_buf (8 bytes/agent) + out_buf (1 byte/agent), but no
        // 100-entry snapshot: under 10 bytes/agent total.
        let scratch = mean_field.round_scratch_bytes();
        assert!(
            scratch > 0 && scratch < 100 * 10,
            "mean-field batched rounds must skip the snapshot copy (got {scratch})"
        );
    }

    #[test]
    fn fused_mode_rejects_only_the_literal_complete_graph_fidelity() {
        let mut literal = Engine::new(
            FetProtocol::new(4).unwrap(),
            spec(60),
            Fidelity::Agent,
            InitialCondition::AllWrong,
            1,
        )
        .unwrap();
        for mode in [
            ExecutionMode::Fused,
            ExecutionMode::FusedParallel { threads: 2 },
        ] {
            let err = literal.set_execution_mode(mode).unwrap_err();
            assert!(
                matches!(&err, SimError::InvalidParameter { name: "mode", .. })
                    && err.to_string().contains("fidelity"),
                "{err}"
            );
        }

        // Neighborhood runs stream observations from the round-start
        // opinion buffer: the whole fused family is available there.
        let mut ring = Engine::with_neighborhood(
            FetProtocol::new(3).unwrap(),
            Box::new(Ring::new(60)),
            2,
            Opinion::One,
            InitialCondition::AllWrong,
            19,
        )
        .unwrap();
        ring.set_execution_mode(ExecutionMode::Fused).unwrap();
        ring.set_execution_mode(ExecutionMode::FusedParallel { threads: 2 })
            .unwrap();
        // Batched stays available everywhere.
        ring.set_execution_mode(ExecutionMode::Batched).unwrap();
    }

    // ---- graph-fused execution ----

    /// Graph rounds replay bit for bit across the typed and
    /// population-erased front ends in every fused mode, and `Auto` now
    /// resolves graph rounds to the fused single pass (same stream as
    /// forcing `Fused`).
    #[test]
    fn graph_fused_is_stream_identical_across_typed_and_population_engines() {
        for mode in [
            ExecutionMode::Auto,
            ExecutionMode::Fused,
            ExecutionMode::FusedParallel { threads: 3 },
        ] {
            let mut typed = Engine::with_neighborhood(
                FetProtocol::new(3).unwrap(),
                Box::new(Ring::new(61)),
                2,
                Opinion::One,
                InitialCondition::AllWrong,
                19,
            )
            .unwrap();
            typed.set_execution_mode(mode).unwrap();
            let mut erased = PopulationEngine::with_neighborhood(
                fet_population(3),
                Box::new(Ring::new(61)),
                2,
                Opinion::One,
                InitialCondition::AllWrong,
                19,
            )
            .unwrap();
            erased.set_execution_mode(mode).unwrap();
            for _ in 0..40 {
                typed.step();
                erased.step();
            }
            assert_eq!(typed.outputs(), erased.outputs(), "{mode:?}");
            assert_eq!(typed.fraction_correct(), erased.fraction_correct());
        }
    }

    /// `Auto` and forced `Fused` are the same stream on graphs, and the
    /// graph-batched stream is preserved (and distinct from graph-fused).
    #[test]
    fn graph_auto_resolves_to_fused_and_batched_stream_is_preserved() {
        let run = |mode: ExecutionMode| {
            let mut e = Engine::with_neighborhood(
                FetProtocol::new(3).unwrap(),
                Box::new(Ring::new(60)),
                2,
                Opinion::One,
                InitialCondition::Random,
                23,
            )
            .unwrap();
            e.set_execution_mode(mode).unwrap();
            let mut rec = TrajectoryRecorder::new();
            e.run(60, ConvergenceCriterion::new(3), &mut rec);
            rec.into_fractions()
        };
        let auto = run(ExecutionMode::Auto);
        let fused = run(ExecutionMode::Fused);
        let batched = run(ExecutionMode::Batched);
        assert_eq!(auto, fused, "Auto must resolve graph rounds to fused");
        assert_ne!(
            fused, batched,
            "graph-fused must be its own stream, not batched renamed"
        );
    }

    /// Graph-fused rounds keep exactly the persistent opinion double
    /// buffer (~1 byte/agent) and allocate nothing else per round, while
    /// graph-batched rounds keep snapshot + observation/output scratch.
    #[test]
    fn graph_fused_scratch_is_exactly_the_double_buffer() {
        let n = 80usize;
        let mut fused = Engine::with_neighborhood(
            FetProtocol::new(3).unwrap(),
            Box::new(Ring::new(n as u32)),
            2,
            Opinion::One,
            InitialCondition::AllWrong,
            7,
        )
        .unwrap();
        fused.set_execution_mode(ExecutionMode::Fused).unwrap();
        for _ in 0..20 {
            fused.step();
        }
        assert_eq!(
            fused.round_scratch_bytes(),
            n * std::mem::size_of::<Opinion>(),
            "graph-fused keeps the n-byte double buffer and nothing else"
        );

        let mut batched = Engine::with_neighborhood(
            FetProtocol::new(3).unwrap(),
            Box::new(Ring::new(n as u32)),
            2,
            Opinion::One,
            InitialCondition::AllWrong,
            7,
        )
        .unwrap();
        batched.set_execution_mode(ExecutionMode::Batched).unwrap();
        batched.step();
        assert!(
            batched.round_scratch_bytes() > n * std::mem::size_of::<Opinion>(),
            "graph-batched keeps snapshot plus obs/out scratch"
        );
    }

    /// Sleep faults on graphs fall back to the per-agent loop and still
    /// read round-start opinions; noise and retargeting compose with the
    /// graph source. The graph-fused family must satisfy the absorbing
    /// guarantee end to end.
    #[test]
    fn graph_fused_converges_and_absorbs_on_the_complete_ring() {
        // A dense ring (every vertex sees half the ring) behaves like the
        // complete graph: FET must converge and stay converged.
        let n = 120u32;
        let links: Vec<Vec<u32>> = (0..n)
            .map(|v| (1..=n / 2).map(|d| (v + d) % n).collect())
            .collect();
        #[derive(Debug, Clone)]
        struct Dense {
            links: Vec<Vec<u32>>,
        }
        impl Neighborhood for Dense {
            fn population(&self) -> u32 {
                self.links.len() as u32
            }
            fn neighbors_of(&self, vertex: u32) -> &[u32] {
                &self.links[vertex as usize]
            }
            fn clone_box(&self) -> Box<dyn Neighborhood> {
                Box::new(self.clone())
            }
        }
        let mut e = Engine::with_neighborhood(
            FetProtocol::for_population(u64::from(n), 4.0).unwrap(),
            Box::new(Dense { links }),
            1,
            Opinion::One,
            InitialCondition::AllWrong,
            13,
        )
        .unwrap();
        e.set_execution_mode(ExecutionMode::Fused).unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        for _ in 0..100 {
            e.step();
            assert!(e.all_correct(), "graph-fused absorbing state violated");
        }
    }

    /// The fused path must satisfy the same end-to-end guarantees as the
    /// batched one: convergence from the all-wrong start, absorbing once
    /// converged.
    #[test]
    fn fused_converged_state_is_absorbing() {
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            13,
        )
        .unwrap();
        e.set_execution_mode(ExecutionMode::Fused).unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        for _ in 0..200 {
            e.step();
            assert!(e.all_correct(), "fused absorbing state violated");
        }
        assert_eq!(e.round_scratch_bytes(), 0);
    }

    // ---- the parallel fused execution mode ----

    /// Parallel fused rounds replay bit for bit across the typed and
    /// population-erased front ends for a fixed (seed, thread count), for
    /// every mean-field fidelity and the fault plans the fused paths
    /// support.
    #[test]
    fn fused_parallel_is_stream_identical_across_typed_and_population_engines() {
        let cases: Vec<(Fidelity, FaultPlan)> = vec![
            (Fidelity::Binomial, FaultPlan::none()),
            (Fidelity::WithoutReplacement, FaultPlan::none()),
            (Fidelity::Binomial, FaultPlan::with_noise(0.03).unwrap()),
            (
                Fidelity::Binomial,
                FaultPlan::with_source_retarget(5, Opinion::Zero),
            ),
        ];
        let mode = ExecutionMode::FusedParallel { threads: 3 };
        for (fidelity, fault) in cases {
            let mut typed = Engine::new(
                FetProtocol::new(8).unwrap(),
                spec(151),
                fidelity,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            typed.set_fault_plan(fault);
            typed.set_execution_mode(mode).unwrap();
            let mut erased = PopulationEngine::new(
                fet_population(8),
                spec(151),
                fidelity,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            erased.set_fault_plan(fault);
            erased.set_execution_mode(mode).unwrap();
            let mut rec_t = TrajectoryRecorder::new();
            let mut rec_e = TrajectoryRecorder::new();
            let rt = typed.run(120, ConvergenceCriterion::new(3), &mut rec_t);
            let re = erased.run(120, ConvergenceCriterion::new(3), &mut rec_e);
            assert_eq!(rt, re, "{fidelity:?}/{fault:?} parallel reports diverged");
            assert_eq!(
                rec_t.into_fractions(),
                rec_e.into_fractions(),
                "{fidelity:?}/{fault:?} parallel trajectories diverged"
            );
            assert_eq!(typed.outputs(), erased.outputs());
        }
    }

    /// The shard count keys the parallel stream: different thread counts
    /// are distinct (statistically equivalent) trajectories, while the
    /// same count replays exactly — and never perturbs the main engine
    /// stream (a later batched round still matches a batched-only run).
    #[test]
    fn fused_parallel_stream_is_keyed_by_shard_count() {
        let run = |threads: u32| {
            let mut e = Engine::new(
                FetProtocol::new(8).unwrap(),
                spec(150),
                Fidelity::Binomial,
                InitialCondition::Random,
                5,
            )
            .unwrap();
            e.set_execution_mode(ExecutionMode::FusedParallel { threads })
                .unwrap();
            let mut rec = TrajectoryRecorder::new();
            e.run(60, ConvergenceCriterion::new(3), &mut rec);
            rec.into_fractions()
        };
        assert_eq!(run(2), run(2), "fixed (seed, threads) must replay");
        assert_ne!(
            run(1),
            run(2),
            "shard counts are distinct deterministic streams"
        );
        // threads = 1 is still the *sharded* stream (counter-derived shard
        // RNG), not the sequential fused stream.
        let mut fused = Engine::new(
            FetProtocol::new(8).unwrap(),
            spec(150),
            Fidelity::Binomial,
            InitialCondition::Random,
            5,
        )
        .unwrap();
        fused.set_execution_mode(ExecutionMode::Fused).unwrap();
        let mut rec = TrajectoryRecorder::new();
        fused.run(60, ConvergenceCriterion::new(3), &mut rec);
        assert_ne!(run(1), rec.into_fractions());
    }

    #[test]
    fn fused_parallel_mode_rejects_what_fused_rejects_plus_zero_threads() {
        let mut literal = Engine::new(
            FetProtocol::new(4).unwrap(),
            spec(60),
            Fidelity::Agent,
            InitialCondition::AllWrong,
            1,
        )
        .unwrap();
        assert!(matches!(
            literal.set_execution_mode(ExecutionMode::FusedParallel { threads: 4 }),
            Err(SimError::InvalidParameter { name: "mode", .. })
        ));
        let mut mean_field = Engine::new(
            FetProtocol::new(4).unwrap(),
            spec(60),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            1,
        )
        .unwrap();
        assert!(matches!(
            mean_field.set_execution_mode(ExecutionMode::FusedParallel { threads: 0 }),
            Err(SimError::InvalidParameter { name: "mode", .. })
        ));
        mean_field
            .set_execution_mode(ExecutionMode::FusedParallel { threads: 4 })
            .unwrap();
    }

    /// The parallel path inherits the fused guarantees: zero round
    /// scratch, convergence from the all-wrong start, absorbing once
    /// converged — including the degenerate n < threads case.
    #[test]
    fn fused_parallel_converges_with_zero_scratch() {
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            13,
        )
        .unwrap();
        e.set_execution_mode(ExecutionMode::FusedParallel { threads: 4 })
            .unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        for _ in 0..100 {
            e.step();
            assert!(e.all_correct(), "parallel absorbing state violated");
        }
        assert_eq!(e.round_scratch_bytes(), 0);

        // n = 6 agents over 16 shards: trailing shards are empty.
        let mut tiny = Engine::new(
            FetProtocol::new(2).unwrap(),
            spec(6),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            3,
        )
        .unwrap();
        tiny.set_execution_mode(ExecutionMode::FusedParallel { threads: 16 })
            .unwrap();
        for _ in 0..50 {
            tiny.step();
        }
        assert_eq!(tiny.round_scratch_bytes(), 0);
    }

    #[test]
    fn auto_selection_parallelizes_only_large_mean_field_rounds() {
        use super::auto_round_impl;
        assert_eq!(
            auto_round_impl(false, 8, u64::MAX, true),
            RoundImpl::Batched
        );
        assert_eq!(
            auto_round_impl(true, 8, FUSED_PARALLEL_AUTO_MIN_N - 1, true),
            RoundImpl::Fused
        );
        assert_eq!(
            auto_round_impl(true, 1, FUSED_PARALLEL_AUTO_MIN_N, true),
            RoundImpl::Fused,
            "single-core hosts never pay thread-spawn overhead"
        );
        assert_eq!(
            auto_round_impl(true, 4, FUSED_PARALLEL_AUTO_MIN_N, false),
            RoundImpl::Fused,
            "Auto must honor a protocol's parallel opt-out"
        );
        assert_eq!(
            auto_round_impl(true, 4, FUSED_PARALLEL_AUTO_MIN_N, true),
            RoundImpl::FusedParallel { shards: 4 }
        );
    }

    // ---- bit-plane storage ----

    fn fet_bit_population(ell: u32) -> Box<dyn fet_core::population::DynPopulation> {
        ErasedProtocol::new(FetProtocol::new(ell).unwrap())
            .bit_population()
            .expect("small-ℓ FET is packable")
    }

    /// Bit-plane engines replay the typed engine's fused trajectories bit
    /// for bit — mean-field, both fused modes, with and without noise and
    /// retargeting.
    #[test]
    fn bit_population_engine_is_stream_identical_in_every_fused_mode() {
        let cases: Vec<(ExecutionMode, FaultPlan)> = vec![
            (ExecutionMode::Fused, FaultPlan::none()),
            (ExecutionMode::Fused, FaultPlan::with_noise(0.03).unwrap()),
            (
                ExecutionMode::Fused,
                FaultPlan::with_source_retarget(5, Opinion::Zero),
            ),
            (
                ExecutionMode::FusedParallel { threads: 3 },
                FaultPlan::none(),
            ),
        ];
        for (mode, fault) in cases {
            let mut typed = Engine::new(
                FetProtocol::new(8).unwrap(),
                spec(150),
                Fidelity::Binomial,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            typed.set_fault_plan(fault);
            typed.set_execution_mode(mode).unwrap();
            let mut bits = PopulationEngine::new(
                fet_bit_population(8),
                spec(150),
                Fidelity::Binomial,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            assert!(bits.uses_bit_storage());
            bits.set_fault_plan(fault);
            bits.set_execution_mode(mode).unwrap();
            let mut rec_t = TrajectoryRecorder::new();
            let mut rec_b = TrajectoryRecorder::new();
            let rt = typed.run(120, ConvergenceCriterion::new(3), &mut rec_t);
            let rb = bits.run(120, ConvergenceCriterion::new(3), &mut rec_b);
            assert_eq!(rt, rb, "{mode:?}/{fault:?} reports diverged");
            assert_eq!(
                rec_t.into_fractions(),
                rec_b.into_fractions(),
                "{mode:?}/{fault:?} trajectories diverged"
            );
            assert_eq!(typed.outputs(), bits.collect_outputs().as_slice());
        }
    }

    /// Graph rounds on bit-plane storage read the packed word snapshot
    /// through the same index stream as the byte double buffer: the
    /// trajectories are bit-identical across storage representations.
    #[test]
    fn bit_population_engine_on_a_ring_matches_typed() {
        for mode in [
            ExecutionMode::Fused,
            ExecutionMode::FusedParallel { threads: 3 },
        ] {
            let mut typed = Engine::with_neighborhood(
                FetProtocol::new(3).unwrap(),
                Box::new(Ring::new(151)),
                2,
                Opinion::One,
                InitialCondition::AllWrong,
                19,
            )
            .unwrap();
            typed.set_execution_mode(mode).unwrap();
            let mut bits = PopulationEngine::with_neighborhood(
                fet_bit_population(3),
                Box::new(Ring::new(151)),
                2,
                Opinion::One,
                InitialCondition::AllWrong,
                19,
            )
            .unwrap();
            bits.set_execution_mode(mode).unwrap();
            for _ in 0..40 {
                typed.step();
                bits.step();
            }
            assert_eq!(
                typed.outputs(),
                bits.collect_outputs().as_slice(),
                "{mode:?}"
            );
            assert_eq!(typed.fraction_correct(), bits.fraction_correct());
        }
    }

    /// The one configuration with no fused round is rejected at
    /// construction, the batched pipeline at mode-set time, and the byte
    /// output accessor panics — bit-plane runs keep no such buffer.
    #[test]
    fn bit_storage_rejects_batched_and_the_literal_fidelity() {
        let err = PopulationEngine::new(
            fet_bit_population(4),
            spec(60),
            Fidelity::Agent,
            InitialCondition::AllWrong,
            1,
        )
        .unwrap_err();
        assert!(
            matches!(
                &err,
                SimError::InvalidParameter {
                    name: "storage",
                    ..
                }
            ),
            "{err}"
        );
        let mut e = PopulationEngine::new(
            fet_bit_population(4),
            spec(60),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            1,
        )
        .unwrap();
        assert!(matches!(
            e.set_execution_mode(ExecutionMode::Batched),
            Err(SimError::InvalidParameter { name: "mode", .. })
        ));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = e.outputs();
        }));
        assert!(caught.is_err(), "outputs() must panic on bit storage");
    }

    /// Mean-field bit rounds keep zero auxiliary memory; graph bit rounds
    /// keep exactly the ⌈stepped/64⌉-word round-start snapshot — 1
    /// bit/agent where the byte engine keeps 1 byte/agent.
    #[test]
    fn bit_storage_scratch_is_the_word_snapshot() {
        let mut mean_field = PopulationEngine::new(
            fet_bit_population(6),
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            3,
        )
        .unwrap();
        for _ in 0..10 {
            mean_field.step();
        }
        assert_eq!(mean_field.round_scratch_bytes(), 0);

        let mut ring = PopulationEngine::with_neighborhood(
            fet_bit_population(3),
            Box::new(Ring::new(640)),
            2,
            Opinion::One,
            InitialCondition::AllWrong,
            7,
        )
        .unwrap();
        ring.set_execution_mode(ExecutionMode::Fused).unwrap();
        for _ in 0..10 {
            ring.step();
        }
        assert_eq!(
            ring.round_scratch_bytes(),
            638usize.div_ceil(64) * std::mem::size_of::<u64>(),
            "graph bit rounds keep the packed word snapshot and nothing else"
        );
    }

    #[test]
    fn population_engine_clones_run_independently() {
        let mut a = PopulationEngine::new(
            fet_population(6),
            spec(80),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            5,
        )
        .unwrap();
        let mut b = a.clone();
        let ra = a.run(2_000, ConvergenceCriterion::new(3), &mut NullObserver);
        let rb = b.run(2_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert_eq!(ra, rb, "clone must replay the original's stream");
    }

    /// An event-free schedule must leave every random stream untouched:
    /// the run replays a plain fault-plan run bit for bit.
    #[test]
    fn event_free_schedule_is_stream_identical_to_plan() {
        let base = FaultPlan::with_noise(0.02).unwrap();
        let mut plain = Engine::new(
            FetProtocol::new(8).unwrap(),
            spec(150),
            Fidelity::Binomial,
            InitialCondition::Random,
            99,
        )
        .unwrap();
        plain.set_fault_plan(base);
        let mut scheduled = Engine::new(
            FetProtocol::new(8).unwrap(),
            spec(150),
            Fidelity::Binomial,
            InitialCondition::Random,
            99,
        )
        .unwrap();
        scheduled.set_fault_schedule(&FaultSchedule::from_plan(base));
        let mut rec_p = TrajectoryRecorder::new();
        let mut rec_s = TrajectoryRecorder::new();
        let rp = plain.run(200, ConvergenceCriterion::new(3), &mut rec_p);
        let rs = scheduled.run(200, ConvergenceCriterion::new(3), &mut rec_s);
        assert_eq!(rp, rs, "reports diverged");
        assert_eq!(rec_p.into_fractions(), rec_s.into_fractions());
        assert_eq!(plain.outputs(), scheduled.outputs());
        assert!(scheduled.recovery_records().is_empty());
    }

    /// Repeated trend switches each produce a recovery record, and the
    /// run keeps stepping past pre-switch convergence to measure them.
    #[test]
    fn trend_switches_yield_per_switch_recovery_records() {
        let mut e = Engine::new(
            FetProtocol::for_population(300, 4.0).unwrap(),
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllCorrect,
            21,
        )
        .unwrap();
        let schedule = FaultSchedule::new(
            FaultPlan::none(),
            vec![
                FaultEvent::TrendSwitch {
                    round: 40,
                    correct: Opinion::Zero,
                },
                FaultEvent::TrendSwitch {
                    round: 1_000,
                    correct: Opinion::One,
                },
            ],
        )
        .unwrap();
        e.set_fault_schedule(&schedule);
        let report = e.run(40_000, ConvergenceCriterion::new(5), &mut NullObserver);
        let records = e.recovery_records();
        assert_eq!(records.len(), 2, "{records:?}");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.kind, FaultEventKind::TrendSwitch);
            let adapted = r.adaptation_latency();
            assert!(adapted.is_some(), "switch {i} never adapted: {records:?}");
            let restab = r.restabilization_time();
            assert!(
                restab.is_some(),
                "switch {i} never restabilized: {records:?}"
            );
            assert!(
                restab >= adapted,
                "switch {i} restabilized before adapting: {records:?}"
            );
        }
        assert_eq!(records[0].event_round, 40);
        assert_eq!(records[1].event_round, 1_000);
        assert!(
            report.rounds_run > 1_000,
            "run must outlive the last switch: {report:?}"
        );
        assert_eq!(report.final_fraction_correct, 1.0);
    }

    /// State corruption rewrites the chosen fraction deterministically:
    /// typed byte storage and bit-plane storage replay the same
    /// post-corruption trajectory in every fused mode.
    #[test]
    fn state_corruption_is_stream_identical_across_storages() {
        let schedule = FaultSchedule::new(
            FaultPlan::with_noise(0.01).unwrap(),
            vec![
                FaultEvent::StateCorruption {
                    round: 10,
                    fraction: 0.4,
                },
                FaultEvent::NoiseBurst {
                    round: 25,
                    rounds: 5,
                    flip_prob: 0.3,
                },
                FaultEvent::NoiseChange {
                    round: 60,
                    flip_prob: 0.0,
                },
            ],
        )
        .unwrap();
        for mode in [
            ExecutionMode::Fused,
            ExecutionMode::FusedParallel { threads: 3 },
        ] {
            let mut typed = Engine::new(
                FetProtocol::new(8).unwrap(),
                spec(150),
                Fidelity::Binomial,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            typed.set_execution_mode(mode).unwrap();
            typed.set_fault_schedule(&schedule);
            let mut bits = PopulationEngine::new(
                fet_bit_population(8),
                spec(150),
                Fidelity::Binomial,
                InitialCondition::Random,
                77,
            )
            .unwrap();
            bits.set_execution_mode(mode).unwrap();
            bits.set_fault_schedule(&schedule);
            let mut rec_t = TrajectoryRecorder::new();
            let mut rec_b = TrajectoryRecorder::new();
            let rt = typed.run(120, ConvergenceCriterion::new(3), &mut rec_t);
            let rb = bits.run(120, ConvergenceCriterion::new(3), &mut rec_b);
            assert_eq!(rt, rb, "{mode:?} reports diverged");
            assert_eq!(
                rec_t.into_fractions(),
                rec_b.into_fractions(),
                "{mode:?} trajectories diverged"
            );
            assert_eq!(typed.outputs(), bits.collect_outputs().as_slice());
            assert_eq!(typed.recovery_records(), bits.recovery_records());
            assert_eq!(typed.recovery_records().len(), 3);
        }
    }

    /// A noise burst restores the pre-burst flip level when its window
    /// ends, and a plain noise change cancels a pending restore.
    #[test]
    fn noise_burst_window_restores_base_level() {
        let mut e = Engine::new(
            FetProtocol::for_population(300, 4.0).unwrap(),
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllCorrect,
            9,
        )
        .unwrap();
        let schedule = FaultSchedule::new(
            FaultPlan::none(),
            vec![FaultEvent::NoiseBurst {
                round: 5,
                rounds: 10,
                flip_prob: 1.0,
            }],
        )
        .unwrap();
        e.set_fault_schedule(&schedule);
        for _ in 0..5 {
            e.step();
        }
        assert!(e.fraction_correct() > 0.9, "pre-burst consensus lost");
        e.step(); // burst round: every observation flips
        assert!(
            e.fraction_correct() < 0.5,
            "flip_prob = 1 must scramble the population, got {}",
            e.fraction_correct()
        );
        let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
        assert!(
            report.converged(),
            "noise must vanish after the burst window: {report:?}"
        );
        let records = e.recovery_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, FaultEventKind::NoiseBurst);
        assert!(records[0].restabilized_at.is_some());
    }

    /// `PopulationEngine::from_population` replays `Engine::from_states`
    /// for byte containers and accepts pre-filled bit-plane containers.
    #[test]
    fn population_engine_from_population_replays_from_states() {
        let protocol = FetProtocol::new(4).unwrap();
        let states: Vec<FetState> = (0..149)
            .map(|i| {
                let opinion = if i % 3 == 0 {
                    Opinion::One
                } else {
                    Opinion::Zero
                };
                FetState {
                    opinion,
                    prev_count_second_half: (i % 5) as u32,
                }
            })
            .collect();
        let mut typed = Engine::from_states(
            protocol.clone(),
            spec(150),
            Fidelity::Binomial,
            states.clone(),
            31,
        )
        .unwrap();
        let container = Box::new(fet_core::bitplane::BitPopulation::from_states(
            protocol, &states,
        ));
        let mut bits =
            PopulationEngine::from_population(container, spec(150), Fidelity::Binomial, 31)
                .unwrap();
        let mut rec_t = TrajectoryRecorder::new();
        let mut rec_b = TrajectoryRecorder::new();
        let rt = typed.run(120, ConvergenceCriterion::new(3), &mut rec_t);
        let rb = bits.run(120, ConvergenceCriterion::new(3), &mut rec_b);
        assert_eq!(rt, rb);
        assert_eq!(rec_t.into_fractions(), rec_b.into_fractions());
        assert_eq!(typed.outputs(), bits.collect_outputs().as_slice());
    }
}
