//! The synchronous round engine.
//!
//! Implements the paper's execution model: in every round each non-source
//! agent observes the opinion bits of `m = samples_per_round()` agents
//! chosen uniformly at random **with replacement** from the whole
//! population, then updates its state through the protocol. All updates
//! within a round are synchronous (they read the round-`t` outputs).
//!
//! Two exact fidelities are provided (see the crate docs): literal index
//! sampling ([`Fidelity::Agent`]) and the distributionally identical
//! per-agent binomial shortcut ([`Fidelity::Binomial`]), which exploits the
//! fact that a with-replacement sample of size `m` from a population with
//! 1-fraction `x` contains `Binomial(m, x)` ones. The `O(ℓ)`-per-round
//! aggregate chain lives in [`crate::aggregate`].

use crate::convergence::{ConvergenceCriterion, ConvergenceDetector, ConvergenceReport};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::init::InitialCondition;
use crate::neighborhood::{ensure_observable, Neighborhood};
use crate::observer::{RoundObserver, RoundSnapshot};
use fet_core::config::ProblemSpec;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use fet_core::source::Source;
use fet_stats::binomial::BinomialSampler;
use fet_stats::hypergeometric::Hypergeometric;
use fet_stats::rng::SeedTree;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How per-agent observations are generated.
///
/// [`Fidelity::Agent`] and [`Fidelity::Binomial`] sample *exactly* the
/// paper's with-replacement model and differ only in cost.
/// [`Fidelity::WithoutReplacement`] is a deliberate model variation for
/// robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Literal sampling: draw `m` uniform agent indices, read their output
    /// bits. `O(n·m)` per round.
    Agent,
    /// Distributional shortcut: draw each agent's observed count from
    /// `Binomial(m, x_t)` directly. `O(n)` per round (plus protocol work).
    Binomial,
    /// Model variation — sampling **without** replacement: each agent's
    /// count is `Hypergeometric(n, ones_t, m)`, i.e. it scans `m`
    /// *distinct* agents. The paper assumes with-replacement sampling
    /// (which makes Observation 1's binomial identity exact); this
    /// fidelity measures how much of the behaviour that assumption
    /// carries. For `m ≪ n` the two are statistically close (variance
    /// shrinks by the factor `(n−m)/(n−1)`), so convergence shapes should
    /// match — which experiment E10's drift harness confirms.
    WithoutReplacement,
    /// Population-level shortcut: simulate only the `(x_t, x_{t+1})` chain
    /// of Observation 1 — `O(ℓ)` per round, *independent of `n`*, and
    /// distributionally exact for FET. Handled by
    /// [`crate::aggregate::AggregateFetChain`] via the `Simulation` facade
    /// ([`crate::simulation`]); the per-agent engines reject it because
    /// they have no per-agent states to drive at this fidelity.
    Aggregate,
}

/// Draws one agent's raw observed 1-count for the round: from its
/// neighborhood when one is set, else via the fidelity's per-round
/// sampler, else by literal index sampling. Shared by the batched and
/// sleepy round paths so the sampling semantics cannot drift between
/// them.
#[allow(clippy::too_many_arguments)]
fn draw_raw_count(
    neighborhood: Option<&dyn Neighborhood>,
    binomial: Option<&BinomialSampler>,
    hypergeometric: Option<&Hypergeometric>,
    snapshot: &[Opinion],
    vertex: usize,
    n: usize,
    m: u32,
    rng: &mut SmallRng,
) -> u32 {
    if let Some(nb) = neighborhood {
        let neighbors = nb.neighbors_of(vertex as u32);
        let mut c = 0u32;
        for _ in 0..m {
            let k = neighbors[rng.gen_range(0..neighbors.len())];
            if snapshot[k as usize].is_one() {
                c += 1;
            }
        }
        c
    } else if let Some(sampler) = binomial {
        sampler.sample(rng) as u32
    } else if let Some(h) = hypergeometric {
        h.sample(rng) as u32
    } else {
        let mut c = 0u32;
        for _ in 0..m {
            let k = rng.gen_range(0..n);
            if snapshot[k].is_one() {
                c += 1;
            }
        }
        c
    }
}

/// A population of agents running one protocol, plus the round loop.
///
/// Agent indices `[0, num_sources)` are sources; the rest run the protocol.
///
/// # Example
///
/// ```
/// use fet_core::fet::FetProtocol;
/// use fet_core::config::ProblemSpec;
/// use fet_core::opinion::Opinion;
/// use fet_sim::engine::{Engine, Fidelity};
/// use fet_sim::init::InitialCondition;
/// use fet_sim::convergence::ConvergenceCriterion;
/// use fet_sim::observer::NullObserver;
///
/// let spec = ProblemSpec::single_source(300, Opinion::One)?;
/// let proto = FetProtocol::for_population(300, 4.0)?;
/// let mut engine = Engine::new(proto, spec, Fidelity::Binomial, InitialCondition::AllWrong, 7)?;
/// let report = engine.run(5_000, ConvergenceCriterion::default(), &mut NullObserver);
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<P: Protocol> {
    protocol: P,
    spec: ProblemSpec,
    source: Source,
    fidelity: Fidelity,
    neighborhood: Option<Box<dyn Neighborhood>>,
    fault: FaultPlan,
    outputs: Vec<Opinion>,
    snapshot: Vec<Opinion>,
    states: Vec<P::State>,
    obs_buf: Vec<Observation>,
    out_buf: Vec<Opinion>,
    ones_count: u64,
    correct_decisions: u64,
    rng: SmallRng,
    round: u64,
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine with non-source opinions drawn from `init` and
    /// internal variables randomized by the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedPopulation`] when `n` does not fit in
    /// addressable memory for per-agent simulation, and
    /// [`SimError::InvalidParameter`] when [`Fidelity::WithoutReplacement`]
    /// is requested with a sample size exceeding the population.
    pub fn new(
        protocol: P,
        spec: ProblemSpec,
        fidelity: Fidelity,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        let mut rng = SeedTree::new(seed).child("engine").rng();
        let n = Self::checked_n(&spec)?;
        Self::check_fidelity(&protocol, fidelity, n)?;
        let num_sources = spec.num_sources() as usize;
        let source = Source::new(spec.correct());
        let mut outputs = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n - num_sources);
        for _ in 0..num_sources {
            outputs.push(source.output());
        }
        for _ in num_sources..n {
            let opinion = init.draw(spec.correct(), &mut rng);
            let state = protocol.init_state(opinion, &mut rng);
            outputs.push(protocol.output(&state));
            states.push(state);
        }
        Ok(Self::assemble(
            protocol, spec, source, fidelity, outputs, states, rng,
        ))
    }

    /// Creates an engine from explicitly provided non-source states — the
    /// entry point for adversarial configurations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnsupportedPopulation`] for oversized `n` and
    /// [`SimError::InvalidParameter`] when `states.len()` does not equal the
    /// number of non-source agents.
    pub fn from_states(
        protocol: P,
        spec: ProblemSpec,
        fidelity: Fidelity,
        states: Vec<P::State>,
        seed: u64,
    ) -> Result<Self, SimError> {
        let rng = SeedTree::new(seed).child("engine").rng();
        let n = Self::checked_n(&spec)?;
        Self::check_fidelity(&protocol, fidelity, n)?;
        let num_sources = spec.num_sources() as usize;
        if states.len() != n - num_sources {
            return Err(SimError::InvalidParameter {
                name: "states",
                detail: format!(
                    "expected {} non-source states, got {}",
                    n - num_sources,
                    states.len()
                ),
            });
        }
        let source = Source::new(spec.correct());
        let mut outputs = Vec::with_capacity(n);
        for _ in 0..num_sources {
            outputs.push(source.output());
        }
        for s in &states {
            outputs.push(protocol.output(s));
        }
        Ok(Self::assemble(
            protocol, spec, source, fidelity, outputs, states, rng,
        ))
    }

    /// Creates an engine where each agent samples from an explicit
    /// communication structure instead of the whole population — the
    /// `fet-topology` engine's mechanics, available behind the unified
    /// facade. Sources occupy vertices `[0, num_sources)`; sampling is
    /// literal ([`Fidelity::Agent`] semantics) since neighbor counts do
    /// not follow a global binomial law.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when some vertex has no
    /// neighbors, or when `num_sources` is zero or not smaller than the
    /// vertex count; propagates `ProblemSpec` validation as
    /// [`SimError::Core`].
    pub fn with_neighborhood(
        protocol: P,
        neighborhood: Box<dyn Neighborhood>,
        num_sources: u32,
        correct: Opinion,
        init: InitialCondition,
        seed: u64,
    ) -> Result<Self, SimError> {
        ensure_observable(neighborhood.as_ref())?;
        let n = neighborhood.population();
        if num_sources == 0 || num_sources >= n {
            return Err(SimError::InvalidParameter {
                name: "num_sources",
                detail: format!("need 1 ≤ num_sources < n = {n}, got {num_sources}"),
            });
        }
        let spec = ProblemSpec::new(u64::from(n), u64::from(num_sources), correct)?;
        let mut engine = Engine::new(protocol, spec, Fidelity::Agent, init, seed)?;
        engine.neighborhood = Some(neighborhood);
        Ok(engine)
    }

    fn checked_n(spec: &ProblemSpec) -> Result<usize, SimError> {
        let n = spec.n();
        if n > (u32::MAX as u64) {
            return Err(SimError::UnsupportedPopulation {
                detail: format!(
                    "n = {n} exceeds per-agent simulation limits; use the aggregate chain"
                ),
            });
        }
        Ok(n as usize)
    }

    fn check_fidelity(protocol: &P, fidelity: Fidelity, n: usize) -> Result<(), SimError> {
        if fidelity == Fidelity::Aggregate {
            return Err(SimError::InvalidParameter {
                name: "fidelity",
                detail: "the aggregate fidelity has no per-agent states; run it through \
                         `Simulation::builder()` (or `AggregateFetChain` directly)"
                    .into(),
            });
        }
        if fidelity == Fidelity::WithoutReplacement
            && usize::try_from(protocol.samples_per_round()).expect("u32 fits usize") > n
        {
            return Err(SimError::InvalidParameter {
                name: "fidelity",
                detail: format!(
                    "without-replacement sampling needs m ≤ n, got m = {} and n = {n}",
                    protocol.samples_per_round()
                ),
            });
        }
        Ok(())
    }

    fn assemble(
        protocol: P,
        spec: ProblemSpec,
        source: Source,
        fidelity: Fidelity,
        outputs: Vec<Opinion>,
        states: Vec<P::State>,
        rng: SmallRng,
    ) -> Self {
        let ones_count = outputs.iter().filter(|o| o.is_one()).count() as u64;
        let correct_decisions = states
            .iter()
            .filter(|s| protocol.decision(s) == source.correct())
            .count() as u64;
        let snapshot = outputs.clone();
        Engine {
            protocol,
            spec,
            source,
            fidelity,
            neighborhood: None,
            fault: FaultPlan::none(),
            outputs,
            snapshot,
            states,
            obs_buf: Vec::new(),
            out_buf: Vec::new(),
            ones_count,
            correct_decisions,
            rng,
            round: 0,
        }
    }

    /// Installs a fault plan (replacing any previous plan).
    pub fn set_fault_plan(&mut self, fault: FaultPlan) {
        self.fault = fault;
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The problem specification this engine was built with.
    ///
    /// Note: a fault plan may retarget the source mid-run; the *current*
    /// correct opinion is [`Engine::correct`], not `spec().correct()`.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// The current correct opinion (tracks mid-run retargeting).
    pub fn correct(&self) -> Opinion {
        self.source.correct()
    }

    /// Current round index (0 before any [`Engine::step`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The paper's `x_t`: fraction of all agents (sources included)
    /// currently outputting opinion 1.
    pub fn fraction_ones(&self) -> f64 {
        self.ones_count as f64 / self.spec.n() as f64
    }

    /// Fraction of non-source agents whose *decision* equals the correct
    /// opinion.
    pub fn fraction_correct(&self) -> f64 {
        self.correct_decisions as f64 / self.spec.num_non_sources() as f64
    }

    /// `true` when every non-source agent decides correctly.
    pub fn all_correct(&self) -> bool {
        self.correct_decisions == self.spec.num_non_sources()
    }

    /// Public outputs of all agents (index `< num_sources` are sources).
    pub fn outputs(&self) -> &[Opinion] {
        &self.outputs
    }

    /// Non-source agent states (read-only).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Replaces the state of non-source agent `idx` (0-based among
    /// non-sources) and refreshes cached counters. Adversary entry point.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn set_state(&mut self, idx: usize, state: P::State) {
        self.states[idx] = state;
        self.refresh_caches();
    }

    /// Re-derives outputs and counters from the states — call after bulk
    /// state surgery through [`Engine::states_mut`].
    pub fn refresh_caches(&mut self) {
        let num_sources = self.spec.num_sources() as usize;
        for i in 0..num_sources {
            self.outputs[i] = self.source.output();
        }
        for (j, s) in self.states.iter().enumerate() {
            self.outputs[num_sources + j] = self.protocol.output(s);
        }
        self.ones_count = self.outputs.iter().filter(|o| o.is_one()).count() as u64;
        self.correct_decisions = self
            .states
            .iter()
            .filter(|s| self.protocol.decision(s) == self.source.correct())
            .count() as u64;
    }

    /// Mutable access to non-source states for adversarial surgery.
    /// Callers **must** invoke [`Engine::refresh_caches`] afterwards.
    pub fn states_mut(&mut self) -> &mut [P::State] {
        &mut self.states
    }

    /// Executes one synchronous round.
    ///
    /// When no agent can sleep, the round runs in three phases —
    /// observation generation into a reusable buffer, one
    /// [`Protocol::step_batch`] call over the contiguous state slice, and a
    /// counter fold — so protocols with specialized batch kernels pay
    /// neither per-agent dispatch nor per-agent validation. Sleepy-agent
    /// fault plans fall back to the per-agent loop (a sleeping agent must
    /// skip its update entirely).
    pub fn step(&mut self) {
        // Scheduled environment change: the correct bit itself flips.
        if let Some(new_correct) = self.fault.retarget_at(self.round) {
            self.source.retarget(new_correct);
            self.refresh_caches();
        }
        // Synchrony: all observations read the round-t outputs.
        self.snapshot.clone_from(&self.outputs);
        if self.fault.sleep_prob > 0.0 {
            self.step_with_sleep();
        } else {
            self.step_batched();
        }
        self.round += 1;
    }

    /// Per-round samplers for the current fidelity (`None` = literal).
    fn round_samplers(&self) -> (Option<BinomialSampler>, Option<Hypergeometric>) {
        let n = self.outputs.len();
        let m = self.protocol.samples_per_round();
        let x_t = self.ones_count as f64 / n as f64;
        match self.fidelity {
            Fidelity::Agent => (None, None),
            Fidelity::Binomial => (
                Some(
                    BinomialSampler::new(u64::from(m), x_t)
                        .expect("x_t is a fraction of counts, always in [0, 1]"),
                ),
                None,
            ),
            Fidelity::WithoutReplacement => (
                None,
                Some(
                    Hypergeometric::new(n as u64, self.ones_count, u64::from(m))
                        .expect("m ≤ n is validated at engine construction"),
                ),
            ),
            Fidelity::Aggregate => unreachable!("rejected at engine construction"),
        }
    }

    /// The batched round path: observations into `obs_buf`, one
    /// `step_batch` over the state slice, counters folded from `out_buf`.
    fn step_batched(&mut self) {
        let n = self.outputs.len();
        let num_sources = self.spec.num_sources() as usize;
        let m = self.protocol.samples_per_round();
        let ctx = RoundContext::new(self.round);
        let (binomial, hypergeometric) = self.round_samplers();
        self.obs_buf.clear();
        self.obs_buf.reserve(self.states.len());
        for j in 0..self.states.len() {
            let raw_ones = draw_raw_count(
                self.neighborhood.as_deref(),
                binomial.as_ref(),
                hypergeometric.as_ref(),
                &self.snapshot,
                num_sources + j,
                n,
                m,
                &mut self.rng,
            );
            let seen = self.fault.corrupt_count(raw_ones, m, &mut self.rng);
            self.obs_buf
                .push(Observation::new(seen, m).expect("corrupt_count preserves the bound"));
        }
        self.out_buf.clear();
        self.out_buf.resize(self.states.len(), Opinion::Zero);
        self.protocol.step_batch(
            &mut self.states,
            &self.obs_buf,
            &ctx,
            &mut self.rng,
            &mut self.out_buf,
        );
        let mut ones_count = num_sources as u64 * u64::from(self.source.output().is_one());
        let mut correct_decisions = 0u64;
        for (j, (out, state)) in self.out_buf.iter().zip(&self.states).enumerate() {
            self.outputs[num_sources + j] = *out;
            ones_count += u64::from(out.is_one());
            correct_decisions += u64::from(self.protocol.decision(state) == self.source.correct());
        }
        self.ones_count = ones_count;
        self.correct_decisions = correct_decisions;
    }

    /// The per-agent round path, used when sleepy-agent faults are active.
    fn step_with_sleep(&mut self) {
        let n = self.outputs.len();
        let num_sources = self.spec.num_sources() as usize;
        let m = self.protocol.samples_per_round();
        let ctx = RoundContext::new(self.round);
        let (binomial, hypergeometric) = self.round_samplers();
        let mut ones_count = num_sources as u64 * u64::from(self.source.output().is_one());
        let mut correct_decisions = 0u64;
        for (j, state) in self.states.iter_mut().enumerate() {
            let agent_index = num_sources + j;
            let sleeping = self.fault.draws_sleep(&mut self.rng);
            if !sleeping {
                let raw_ones = draw_raw_count(
                    self.neighborhood.as_deref(),
                    binomial.as_ref(),
                    hypergeometric.as_ref(),
                    &self.snapshot,
                    agent_index,
                    n,
                    m,
                    &mut self.rng,
                );
                let seen = self.fault.corrupt_count(raw_ones, m, &mut self.rng);
                let obs = Observation::new(seen, m)
                    .expect("corrupt_count preserves the sample-size bound");
                let new_output = self.protocol.step(state, &obs, &ctx, &mut self.rng);
                self.outputs[agent_index] = new_output;
            }
            ones_count += u64::from(self.outputs[agent_index].is_one());
            correct_decisions += u64::from(self.protocol.decision(state) == self.source.correct());
        }
        self.ones_count = ones_count;
        self.correct_decisions = correct_decisions;
    }

    /// Runs until convergence is confirmed or `max_rounds` have executed.
    ///
    /// The observer receives round 0 (the initial configuration) and every
    /// round thereafter.
    pub fn run<O: RoundObserver + ?Sized>(
        &mut self,
        max_rounds: u64,
        criterion: ConvergenceCriterion,
        observer: &mut O,
    ) -> ConvergenceReport {
        let mut detector = ConvergenceDetector::new(criterion);
        observer.on_round(self.snapshot_now());
        let mut done = detector.observe(self.round, self.all_correct());
        while !done && self.round < max_rounds {
            self.step();
            observer.on_round(self.snapshot_now());
            done = detector.observe(self.round, self.all_correct());
        }
        ConvergenceReport {
            converged_at: detector.converged_at(),
            rounds_run: self.round,
            final_fraction_correct: self.fraction_correct(),
        }
    }

    fn snapshot_now(&self) -> RoundSnapshot {
        RoundSnapshot {
            round: self.round,
            fraction_ones: self.fraction_ones(),
            fraction_correct: self.fraction_correct(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NullObserver, TrajectoryRecorder};
    use fet_core::fet::{FetProtocol, FetState};

    fn spec(n: u64) -> ProblemSpec {
        ProblemSpec::single_source(n, Opinion::One).unwrap()
    }

    #[test]
    fn engine_rejects_mismatched_states() {
        let p = FetProtocol::new(4).unwrap();
        let err = Engine::from_states(p, spec(10), Fidelity::Agent, vec![], 1);
        assert!(matches!(err, Err(SimError::InvalidParameter { .. })));
    }

    #[test]
    fn initial_condition_all_wrong_sets_x0() {
        let p = FetProtocol::new(4).unwrap();
        let e = Engine::new(p, spec(100), Fidelity::Agent, InitialCondition::AllWrong, 3).unwrap();
        // Only the source holds 1.
        assert!((e.fraction_ones() - 0.01).abs() < 1e-12);
        assert_eq!(e.fraction_correct(), 0.0);
        assert!(!e.all_correct());
    }

    #[test]
    fn initial_condition_all_correct_is_absorbing_for_fet() {
        let p = FetProtocol::new(8).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::Agent,
            InitialCondition::AllCorrect,
            5,
        )
        .unwrap();
        // The all-correct configuration must persist: every sample is
        // unanimous, every comparison ties once the stale counts settle.
        // The very first round may flip agents whose adversarial stale
        // count differs from ℓ; run a couple of rounds then require
        // stability.
        for _ in 0..3 {
            e.step();
        }
        let x_after_settle = e.fraction_ones();
        for _ in 0..10 {
            e.step();
        }
        assert_eq!(e.fraction_ones(), x_after_settle);
        assert!(
            x_after_settle > 0.9,
            "population should stay near consensus"
        );
    }

    #[test]
    fn fet_converges_small_population_all_fidelities() {
        for fidelity in [
            Fidelity::Agent,
            Fidelity::Binomial,
            Fidelity::WithoutReplacement,
        ] {
            let p = FetProtocol::for_population(300, 4.0).unwrap();
            let mut e =
                Engine::new(p, spec(300), fidelity, InitialCondition::AllWrong, 11).unwrap();
            let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
            assert!(report.converged(), "{fidelity:?} failed: {report:?}");
            assert_eq!(report.final_fraction_correct, 1.0);
        }
    }

    #[test]
    fn without_replacement_rejects_oversized_samples() {
        // 2ℓ = 64 samples from a population of 20 cannot be distinct.
        let p = FetProtocol::new(32).unwrap();
        let err = Engine::new(
            p,
            spec(20),
            Fidelity::WithoutReplacement,
            InitialCondition::AllWrong,
            1,
        );
        assert!(matches!(
            err,
            Err(SimError::InvalidParameter {
                name: "fidelity",
                ..
            })
        ));
    }

    #[test]
    fn without_replacement_consensus_is_absorbing() {
        // Every sample from a unanimous population is unanimous whether or
        // not indices repeat, so the absorbing argument carries over.
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::WithoutReplacement,
            InitialCondition::AllWrong,
            41,
        )
        .unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        for _ in 0..200 {
            e.step();
            assert!(
                e.all_correct(),
                "absorbing state violated at round {}",
                e.round()
            );
        }
    }

    #[test]
    fn converged_state_is_absorbing() {
        let p = FetProtocol::for_population(200, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(200),
            Fidelity::Binomial,
            InitialCondition::AllWrong,
            13,
        )
        .unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(3), &mut NullObserver);
        assert!(report.converged());
        // Keep stepping: consensus on the correct opinion must never break.
        for _ in 0..200 {
            e.step();
            assert!(
                e.all_correct(),
                "absorbing state violated at round {}",
                e.round()
            );
        }
    }

    #[test]
    fn observer_sees_initial_round_and_monotone_round_numbers() {
        let p = FetProtocol::new(6).unwrap();
        let mut e =
            Engine::new(p, spec(50), Fidelity::Agent, InitialCondition::Random, 17).unwrap();
        let mut rec = TrajectoryRecorder::new();
        let report = e.run(50, ConvergenceCriterion::new(2), &mut rec);
        assert_eq!(rec.fractions().len() as u64, report.rounds_run + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let p = FetProtocol::new(8).unwrap();
            let mut e = Engine::new(
                p,
                spec(120),
                Fidelity::Agent,
                InitialCondition::Random,
                seed,
            )
            .unwrap();
            let mut rec = TrajectoryRecorder::new();
            e.run(300, ConvergenceCriterion::new(2), &mut rec);
            rec.into_fractions()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ");
    }

    #[test]
    fn correct_zero_instance_converges_to_zero() {
        let spec0 = ProblemSpec::single_source(300, Opinion::Zero).unwrap();
        let p = FetProtocol::for_population(300, 4.0).unwrap();
        let mut e =
            Engine::new(p, spec0, Fidelity::Binomial, InitialCondition::AllWrong, 23).unwrap();
        let report = e.run(20_000, ConvergenceCriterion::new(5), &mut NullObserver);
        assert!(report.converged(), "{report:?}");
        assert!((e.fraction_ones() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn set_state_refreshes_counters() {
        let p = FetProtocol::new(4).unwrap();
        let mut e = Engine::new(
            p,
            spec(10),
            Fidelity::Agent,
            InitialCondition::AllCorrect,
            29,
        )
        .unwrap();
        assert!(e.all_correct());
        e.set_state(
            0,
            FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: 0,
            },
        );
        assert!(!e.all_correct());
        assert!((e.fraction_ones() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn source_retarget_mid_run_restabilizes() {
        let p = FetProtocol::for_population(300, 4.0).unwrap();
        let mut e = Engine::new(
            p,
            spec(300),
            Fidelity::Binomial,
            InitialCondition::AllCorrect,
            31,
        )
        .unwrap();
        e.set_fault_plan(FaultPlan::with_source_retarget(10, Opinion::Zero));
        // After round 10 the correct bit is Zero; the population must
        // re-converge to all-zero despite starting all-one.
        let mut converged_to_zero = false;
        for _ in 0..20_000 {
            e.step();
            if e.correct() == Opinion::Zero && e.all_correct() {
                converged_to_zero = true;
                break;
            }
        }
        assert!(
            converged_to_zero,
            "population failed to re-stabilize after retarget"
        );
        assert_eq!(e.fraction_ones(), 0.0);
    }
}
