//! Error type for the simulation engine.

use std::error::Error;
use std::fmt;

/// Errors produced by `fet-sim`.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The problem specification is unusable by this engine (e.g. the
    /// population exceeds addressable memory for an agent-level run).
    UnsupportedPopulation {
        /// Human-readable description.
        detail: String,
    },
    /// A parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// A configuration error bubbled up from `fet-core`.
    Core(fet_core::CoreError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedPopulation { detail } => {
                write!(f, "unsupported population: {detail}")
            }
            SimError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter `{name}`: {detail}")
            }
            SimError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fet_core::CoreError> for SimError {
    fn from(e: fet_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SimError::from(fet_core::CoreError::ZeroSampleSize);
        assert!(e.to_string().contains("at least 1"));
        assert!(Error::source(&e).is_some());
        let e = SimError::InvalidParameter {
            name: "threads",
            detail: "zero".into(),
        };
        assert!(e.to_string().contains("threads"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
