//! Observation sources: every fused observation draw, one abstraction.
//!
//! The fused round kernels ([`Protocol::step_fused`]) never see buffers —
//! they pull each agent's [`Observation`] from an
//! [`ObservationSource`] on demand. This module is where the engine's
//! sources live, one per sampling rule:
//!
//! * [`MeanFieldSource`] — the complete-graph fidelities
//!   ([`Fidelity::Binomial`] / [`Fidelity::WithoutReplacement`]): an
//!   observation is a pure function of the round-start global 1-count and
//!   the RNG, so the source is just the round's sampler configuration.
//! * [`GraphSource`] — neighborhood sampling on an explicit
//!   [`Neighborhood`]: agent `i` samples `m` neighbors **with
//!   replacement** from its adjacency list and counts 1-opinions in the
//!   round-start snapshot. The source is *positional*: it carries a vertex
//!   cursor that advances once per draw, so it must be constructed knowing
//!   the first vertex it streams for.
//!
//! Both sources compose the same per-observation fault corruption
//! ([`FaultPlan::corrupt_count`]) the batched pipeline applies, and both
//! come with a [`ShardSourceFactory`] so the work-sharded parallel round
//! can hand every shard a private source: [`MeanFieldSourceFactory`]
//! ignores the shard range (mean-field draws are position-oblivious),
//! [`GraphSourceFactory`] aligns the cursor with the shard's first agent.
//! Either way a source's draws are a pure function of the round
//! configuration and the shard plan — never of worker scheduling — which
//! is what keeps parallel graph rounds on the `(seed, shard count)`
//! determinism contract.
//!
//! Funneling *all* on-demand draws through this one abstraction is what
//! made the vectorized sampling tier slot in without touching any kernel:
//! [`GraphSource`] speculates eight Lemire index lanes per step through
//! the [`fet_stats::isa`] path kernels (replaying the speculated words
//! through the reference loop on the rare rejection), and
//! [`MeanFieldSource`]'s block path inherits the per-path alias kernels
//! from [`BinomialSampler::try_sample_block`]. Every path consumes the
//! RNG streams identically — the chosen ISA never enters the stream (see
//! docs/DETERMINISM.md).
//!
//! [`BinomialSampler::try_sample_block`]: fet_stats::binomial::BinomialSampler::try_sample_block
//!
//! [`Protocol::step_fused`]: fet_core::protocol::Protocol::step_fused
//! [`Fidelity::Binomial`]: crate::engine::Fidelity::Binomial
//! [`Fidelity::WithoutReplacement`]: crate::engine::Fidelity::WithoutReplacement

use crate::fault::FaultPlan;
use crate::neighborhood::Neighborhood;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::ObservationSource;
use fet_core::shard::ShardSourceFactory;
use fet_stats::isa::{self, IsaPath};
use fet_stats::rng::{counter_split, counter_stream_base};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// The round's mean-field sampler: one of the two exact per-agent
/// shortcuts for complete-graph sampling.
#[derive(Debug, Clone, Copy)]
pub enum MeanFieldSampler<'a> {
    /// `Binomial(m, x_t)` — with-replacement sampling.
    Binomial(&'a fet_stats::binomial::BinomialSampler),
    /// `Hypergeometric(n, ones_t, m)` — without-replacement sampling.
    Hypergeometric(&'a fet_stats::hypergeometric::Hypergeometric),
}

/// The engine's [`ObservationSource`] for mean-field fused rounds: the
/// fidelity's per-round sampler plus per-observation fault corruption —
/// exactly the sampling semantics of the batched pipeline's sampler
/// branches, delivered one observation at a time so no buffer ever
/// exists. The noise-free configuration (`fault: None`) skips the
/// corruption call, keeping the per-agent cost to one sampler draw.
#[derive(Debug)]
pub struct MeanFieldSource<'a> {
    pub(crate) sampler: MeanFieldSampler<'a>,
    /// `Some` only when observation noise is active.
    pub(crate) fault: Option<&'a FaultPlan>,
    pub(crate) m: u32,
}

impl ObservationSource for MeanFieldSource<'_> {
    fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
        let raw_ones = match self.sampler {
            MeanFieldSampler::Binomial(sampler) => sampler.sample(rng) as u32,
            MeanFieldSampler::Hypergeometric(h) => h.sample(rng) as u32,
        };
        let seen = match self.fault {
            Some(fault) => fault.corrupt_count(raw_ones, self.m, rng),
            None => raw_ones,
        };
        Observation::new(seen, self.m).expect("corrupt_count preserves the bound")
    }

    /// The word-at-a-time override behind the bit-plane threshold kernel:
    /// hoists the sampler match and fault check out of the per-draw loop,
    /// so the `count ≤ 64` draws cost one virtual call total instead of
    /// one each. **Stream-identical** to `count` successive
    /// [`MeanFieldSource::next_observation`] calls by construction — the
    /// same sampler and corruption draws from the same `rng` in the same
    /// order; only the [`Observation`] wrapper and dispatch overhead are
    /// elided.
    fn next_threshold_word(&mut self, rng: &mut dyn RngCore, count: u32, threshold: u32) -> u64 {
        debug_assert!(count as usize <= 64, "a word holds at most 64 draws");
        let mut word = 0u64;
        match (self.sampler, self.fault) {
            (MeanFieldSampler::Binomial(sampler), None) => {
                // Fast path: one `fill_bytes` block for all `count` draws
                // (exact-stream — see `AliasTable::try_sample_block`);
                // falls back to per-draw sampling when the round's alias
                // table isn't block-eligible.
                let mut draws = [0usize; 64];
                let draws = &mut draws[..count as usize];
                if sampler.try_sample_block(rng, draws) {
                    for (j, &seen) in draws.iter().enumerate() {
                        word |= u64::from(seen as u32 >= threshold) << j;
                    }
                } else {
                    for j in 0..count {
                        word |= u64::from(sampler.sample(rng) as u32 >= threshold) << j;
                    }
                }
            }
            (MeanFieldSampler::Hypergeometric(h), None) => {
                for j in 0..count {
                    word |= u64::from(h.sample(rng) as u32 >= threshold) << j;
                }
            }
            (MeanFieldSampler::Binomial(sampler), Some(fault)) => {
                for j in 0..count {
                    let seen = fault.corrupt_count(sampler.sample(rng) as u32, self.m, rng);
                    word |= u64::from(seen >= threshold) << j;
                }
            }
            (MeanFieldSampler::Hypergeometric(h), Some(fault)) => {
                for j in 0..count {
                    let seen = fault.corrupt_count(h.sample(rng) as u32, self.m, rng);
                    word |= u64::from(seen >= threshold) << j;
                }
            }
        }
        word
    }
}

/// The engine's [`ShardSourceFactory`] for parallel mean-field rounds:
/// hands every shard a private [`MeanFieldSource`] over the *shared,
/// round-start* sampler configuration. Sharing is read-only (the samplers
/// are built from the round-start 1-count and never mutated), so shards
/// sample the same per-round distribution as the single-threaded fused
/// path while drawing from their own RNG streams. The shard range is
/// ignored: mean-field draws are position-oblivious.
#[derive(Debug)]
pub struct MeanFieldSourceFactory<'a> {
    pub(crate) sampler: MeanFieldSampler<'a>,
    pub(crate) fault: Option<&'a FaultPlan>,
    pub(crate) m: u32,
}

impl ShardSourceFactory for MeanFieldSourceFactory<'_> {
    fn shard_source(&self, _range: Range<usize>) -> Box<dyn ObservationSource + '_> {
        Box::new(MeanFieldSource {
            sampler: self.sampler,
            fault: self.fault,
            m: self.m,
        })
    }
}

/// A read-only, vertex-indexed view of the round-start opinions — the
/// one abstraction graph sampling reads through, whatever the engine's
/// storage representation.
///
/// Byte-addressed engines snapshot all `n` opinions into a `Vec<Opinion>`
/// (1 byte/agent); bit-plane engines word-copy the population's packed
/// opinion plane (1 bit/agent) and handle the source prefix
/// arithmetically — source vertices occupy the lowest ids and all hold
/// the round's source output, so the snapshot plane stays a straight
/// word copy of the stepped agents. Both views answer the only question
/// sampling ever asks: *was vertex `v` a 1 at round start?*
#[derive(Debug, Clone, Copy)]
pub enum SnapshotView<'a> {
    /// One `Opinion` per vertex, vertex-id indexed — the byte-addressed
    /// double buffer.
    Bytes(&'a [Opinion]),
    /// Packed 64 opinions/word. Vertices `0..num_sources` are sources
    /// (all showing `source_output` this round); stepped agents follow,
    /// bit `v - num_sources` of the plane.
    Bits {
        /// The opinion every source vertex shows this round.
        source_output: Opinion,
        /// Number of source vertices (the lowest vertex ids).
        num_sources: u32,
        /// The stepped agents' round-start opinion plane words.
        words: &'a [u64],
    },
}

impl SnapshotView<'_> {
    /// `true` iff vertex `vertex` held opinion 1 at round start.
    #[inline]
    pub fn is_one(&self, vertex: u32) -> bool {
        match *self {
            SnapshotView::Bytes(snapshot) => snapshot[vertex as usize].is_one(),
            SnapshotView::Bits {
                source_output,
                num_sources,
                words,
            } => {
                if vertex < num_sources {
                    source_output.is_one()
                } else {
                    let idx = (vertex - num_sources) as usize;
                    ((words[idx / 64] >> (idx % 64)) & 1) == 1
                }
            }
        }
    }
}

impl<'a> From<&'a [Opinion]> for SnapshotView<'a> {
    fn from(snapshot: &'a [Opinion]) -> Self {
        SnapshotView::Bytes(snapshot)
    }
}

impl<'a> From<&'a Vec<Opinion>> for SnapshotView<'a> {
    fn from(snapshot: &'a Vec<Opinion>) -> Self {
        SnapshotView::Bytes(snapshot)
    }
}

impl<'a, const N: usize> From<&'a [Opinion; N]> for SnapshotView<'a> {
    fn from(snapshot: &'a [Opinion; N]) -> Self {
        SnapshotView::Bytes(snapshot)
    }
}

/// The engine's [`ObservationSource`] for graph (neighborhood) fused
/// rounds: for each successive agent, samples `m` neighbors uniformly
/// **with replacement** from the agent's adjacency list, counts 1-opinions
/// in the round-start snapshot, and applies per-observation fault
/// corruption — the sampling semantics of the batched pipeline's
/// neighborhood branch (same law, its own index-draw stream), delivered
/// one observation at a time so no observation buffer ever exists.
///
/// The source is positional: construction fixes the first vertex it
/// streams for, and the cursor advances once per draw. The snapshot it
/// reads is the engine's *round-start opinion double buffer* (all `n`
/// vertices, sources included), so the fused round preserves the
/// synchronous semantics — every observation reads round-`t` outputs even
/// though the kernel writes round-`t+1` outputs in place.
///
/// # The owned index stream
///
/// The kernel hands sources a `&mut dyn RngCore`, so every word drawn
/// from it costs a truly opaque virtual call — at `m = 2ℓ` index draws
/// per agent, that call (and the instruction-level parallelism it
/// forfeits inside the sampling loop) would dominate a graph observation.
/// A graph source therefore owns a **concrete** [`SmallRng`] for its
/// index draws, seeded by a counter-based split of the engine's dedicated
/// `graph-index` stream and the source's first agent index
/// ([`fet_stats::rng::counter_split`]): the generator state lives in
/// registers across the whole sampling loop, and each 64-bit word yields
/// **two** index lanes.
/// The kernel's `rng` is still what fault corruption draws from, so the
/// shard-keyed update stream is untouched. Determinism is preserved
/// exactly: the index stream is a pure function of
/// `(engine seed, round, first agent)` — never of worker scheduling.
#[derive(Debug)]
pub struct GraphSource<'a> {
    neighborhood: &'a dyn Neighborhood,
    snapshot: SnapshotView<'a>,
    fault: Option<&'a FaultPlan>,
    m: u32,
    /// The vertex the next draw streams for.
    vertex: u32,
    /// The owned index-draw generator (see the type-level docs).
    index_rng: SmallRng,
}

impl<'a> GraphSource<'a> {
    /// A source streaming observations for vertices `first_vertex..`, in
    /// order, drawing neighbor indices from the stream seeded by
    /// `index_seed`. `snapshot` holds the round-start output of **every**
    /// vertex (sources included, vertex-id indexed); `fault` should be
    /// `Some` only when observation noise is active.
    ///
    /// Every streamed vertex must have at least one neighbor (the PULL
    /// model cannot deliver an observation to an isolated vertex —
    /// engines reject such structures up front via
    /// [`crate::neighborhood::ensure_observable`]); drawing for an
    /// isolated vertex panics.
    pub fn new(
        neighborhood: &'a dyn Neighborhood,
        snapshot: impl Into<SnapshotView<'a>>,
        fault: Option<&'a FaultPlan>,
        m: u32,
        first_vertex: u32,
        index_seed: u64,
    ) -> Self {
        GraphSource {
            neighborhood,
            snapshot: snapshot.into(),
            fault,
            m,
            vertex: first_vertex,
            index_rng: SmallRng::seed_from_u64(index_seed),
        }
    }
}

impl ObservationSource for GraphSource<'_> {
    fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
        let neighbors = self.neighborhood.neighbors_of(self.vertex);
        debug_assert!(
            !neighbors.is_empty(),
            "vertex {} has no neighbors to observe (see ensure_observable)",
            self.vertex
        );
        self.vertex += 1;
        let d = u32::try_from(neighbors.len()).expect("degree < n fits u32");
        let raw_ones = if d == 1 {
            // A degree-1 vertex observes its one neighbor m times:
            // unanimous by construction, no randomness to draw.
            u32::from(self.snapshot.is_one(neighbors[0])) * self.m
        } else {
            sample_neighbor_ones(
                isa::active_path(),
                &mut self.index_rng,
                self.snapshot,
                neighbors,
                d,
                self.m,
            )
        };
        let seen = match self.fault {
            Some(fault) => fault.corrupt_count(raw_ones, self.m, rng),
            None => raw_ones,
        };
        Observation::new(seen, self.m).expect("corrupt_count preserves the bound")
    }
}

/// The scalar loop's lane source: two 32-bit lanes per RNG word, low half
/// first — optionally replaying words the vector path already pulled, so
/// a rejected speculation resumes the *reference* stream mid-word without
/// re-drawing anything.
struct LaneFeed<'r> {
    buffered: [u64; 4],
    buffered_len: usize,
    next_buffered: usize,
    word: u64,
    lanes: u32,
    rng: &'r mut SmallRng,
}

impl<'r> LaneFeed<'r> {
    fn fresh(rng: &'r mut SmallRng) -> Self {
        LaneFeed {
            buffered: [0; 4],
            buffered_len: 0,
            next_buffered: 0,
            word: 0,
            lanes: 0,
            rng,
        }
    }

    fn replaying(words: [u64; 4], rng: &'r mut SmallRng) -> Self {
        LaneFeed {
            buffered: words,
            buffered_len: 4,
            next_buffered: 0,
            word: 0,
            lanes: 0,
            rng,
        }
    }

    #[inline]
    fn next_lane(&mut self) -> u32 {
        if self.lanes == 0 {
            self.word = if self.next_buffered < self.buffered_len {
                let word = self.buffered[self.next_buffered];
                self.next_buffered += 1;
                word
            } else {
                self.rng.next_u64()
            };
            self.lanes = 2;
        }
        let lane = self.word as u32;
        self.word >>= 32;
        self.lanes -= 1;
        lane
    }
}

/// The reference index-draw loop: `count` with-replacement draws mapped
/// into `[0, d)` by Lemire's multiply-with-rejection — a lane is rejected
/// iff the low half of `lane · d` falls below `2³² mod d` (never, when
/// `d` is a power of two; rare otherwise) — counting 1-opinions in the
/// round-start snapshot.
fn scalar_draws(
    feed: &mut LaneFeed<'_>,
    snapshot: SnapshotView<'_>,
    neighbors: &[u32],
    d: u32,
    threshold: u32,
    count: u32,
) -> u32 {
    let mut ones = 0u32;
    for _ in 0..count {
        let idx = loop {
            let lane = feed.next_lane();
            let wide = u64::from(lane) * u64::from(d);
            if (wide as u32) >= threshold {
                break (wide >> 32) as u32;
            }
        };
        ones += u32::from(snapshot.is_one(neighbors[idx as usize]));
    }
    ones
}

/// One agent's `m` neighbor draws through the selected ISA path. Word and
/// lane state is per-agent — fresh on entry, leftover lanes discarded on
/// return — exactly as the scalar loop always behaved.
///
/// The vector tiers speculate: eight draws consume exactly four RNG words
/// when no lane is rejected, so a group of eight is computed from four
/// words pulled up front. Any rejection (impossible for power-of-two
/// degree, probability `≈ 8·(2³² mod d)/2³²` per group otherwise) replays
/// those same four words through the reference loop, which then finishes
/// the agent scalar — the consumed stream is bit-identical to
/// [`IsaPath::Scalar`] in every case.
fn sample_neighbor_ones(
    path: IsaPath,
    rng: &mut SmallRng,
    snapshot: SnapshotView<'_>,
    neighbors: &[u32],
    d: u32,
    m: u32,
) -> u32 {
    let threshold = d.wrapping_neg() % d; // 2³² mod d
    match path {
        IsaPath::Scalar => scalar_draws(
            &mut LaneFeed::fresh(rng),
            snapshot,
            neighbors,
            d,
            threshold,
            m,
        ),
        IsaPath::Swar => vector_draws(isa::lemire8_swar, rng, snapshot, neighbors, d, threshold, m),
        IsaPath::Avx2 => {
            #[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
            {
                if isa::avx2_available() {
                    // SAFETY: AVX2 availability checked at runtime just above.
                    return unsafe { vector_draws_avx2(rng, snapshot, neighbors, d, threshold, m) };
                }
            }
            vector_draws(isa::lemire8_swar, rng, snapshot, neighbors, d, threshold, m)
        }
    }
}

/// The speculative vector loop, generic over the 8-lane Lemire kernel so
/// each ISA tier instantiates it with its kernel *inlined* — the AVX2
/// feature boundary then sits once per agent ([`vector_draws_avx2`]), not
/// once per 8 draws, which is the difference between winning and losing
/// to the scalar loop on short degree draws.
#[inline(always)]
fn vector_draws(
    lemire8: impl Fn(&[u64; 4], u32, u32, &mut [u32; 8]) -> u8,
    rng: &mut SmallRng,
    snapshot: SnapshotView<'_>,
    neighbors: &[u32],
    d: u32,
    threshold: u32,
    m: u32,
) -> u32 {
    let mut ones = 0u32;
    let mut remaining = m;
    let mut idx8 = [0u32; 8];
    while remaining >= 8 {
        let words = [
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ];
        let rejections = lemire8(&words, d, threshold, &mut idx8);
        if rejections == 0 {
            for &idx in &idx8 {
                ones += u32::from(snapshot.is_one(neighbors[idx as usize]));
            }
            remaining -= 8;
        } else {
            let mut feed = LaneFeed::replaying(words, rng);
            return ones + scalar_draws(&mut feed, snapshot, neighbors, d, threshold, remaining);
        }
    }
    ones + scalar_draws(
        &mut LaneFeed::fresh(rng),
        snapshot,
        neighbors,
        d,
        threshold,
        remaining,
    )
}

/// [`vector_draws`] compiled as one AVX2 region per agent, with the raw
/// AVX2 kernel inlined into it (closures inherit the enclosing function's
/// target features).
///
/// # Safety
///
/// The CPU must support AVX2 (check [`isa::avx2_available`]).
#[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
#[target_feature(enable = "avx2")]
unsafe fn vector_draws_avx2(
    rng: &mut SmallRng,
    snapshot: SnapshotView<'_>,
    neighbors: &[u32],
    d: u32,
    threshold: u32,
    m: u32,
) -> u32 {
    vector_draws(
        |words, d, threshold, out| unsafe { isa::lemire8_avx2_unchecked(words, d, threshold, out) },
        rng,
        snapshot,
        neighbors,
        d,
        threshold,
        m,
    )
}

/// The engine's [`ShardSourceFactory`] for graph rounds: hands every
/// shard a [`GraphSource`] whose cursor starts at the shard's first agent
/// and whose index stream is seeded by
/// [`counter_split`]`(round_base, range.start)`. The adjacency structure
/// and the round-start snapshot
/// are shared read-only across workers; each shard's draws depend only on
/// its range and the round base, so graph shard streams are
/// worker-invariant exactly like the mean-field ones. The single-threaded
/// fused round uses the same factory with the full range `0..n`.
#[derive(Debug)]
pub struct GraphSourceFactory<'a> {
    neighborhood: &'a dyn Neighborhood,
    snapshot: SnapshotView<'a>,
    fault: Option<&'a FaultPlan>,
    m: u32,
    /// Vertex id of agent 0 of the stepped slice (= the number of source
    /// agents, which occupy the lowest vertex ids).
    vertex_base: u32,
    /// The round's index-stream base (see [`GraphSourceFactory::new`]).
    round_base: u64,
}

impl<'a> GraphSourceFactory<'a> {
    /// A factory for one round. `vertex_base` is the vertex id of the
    /// first stepped (non-source) agent; shard ranges are offsets on top
    /// of it. `index_stream` is the engine's run-level `graph-index` seed
    /// lane and `round` the global round index: together they form the
    /// round's counter-derived index-stream base, from which each shard's
    /// seed splits purely by its range start.
    pub fn new(
        neighborhood: &'a dyn Neighborhood,
        snapshot: impl Into<SnapshotView<'a>>,
        fault: Option<&'a FaultPlan>,
        m: u32,
        vertex_base: u32,
        index_stream: u64,
        round: u64,
    ) -> Self {
        GraphSourceFactory {
            neighborhood,
            snapshot: snapshot.into(),
            fault,
            m,
            vertex_base,
            round_base: counter_stream_base(index_stream, round),
        }
    }

    /// Builds the shard source for `range` without boxing — the
    /// single-threaded fused round calls this with `0..n` and keeps the
    /// source on the stack (no per-round allocation).
    pub fn source_for(&self, range: Range<usize>) -> GraphSource<'_> {
        GraphSource::new(
            self.neighborhood,
            self.snapshot,
            self.fault,
            self.m,
            self.vertex_base + u32::try_from(range.start).expect("n is validated to fit u32"),
            counter_split(self.round_base, range.start as u64),
        )
    }
}

impl ShardSourceFactory for GraphSourceFactory<'_> {
    fn shard_source(&self, range: Range<usize>) -> Box<dyn ObservationSource + '_> {
        Box::new(self.source_for(range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A two-vertex graph where vertex 1 sees only vertex 0.
    #[derive(Debug, Clone)]
    struct Funnel;

    impl Neighborhood for Funnel {
        fn population(&self) -> u32 {
            2
        }
        fn neighbors_of(&self, vertex: u32) -> &[u32] {
            match vertex {
                0 => &[1],
                _ => &[0],
            }
        }
        fn clone_box(&self) -> Box<dyn Neighborhood> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn graph_source_counts_snapshot_ones_along_the_cursor() {
        let snapshot = [Opinion::One, Opinion::Zero];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut source = GraphSource::new(&Funnel, &snapshot, None, 3, 0, 11);
        // Vertex 0 sees only vertex 1 (a zero), vertex 1 only vertex 0 (a
        // one): unanimous counts either way, independent of the RNG.
        assert_eq!(source.next_observation(&mut rng).ones(), 0);
        assert_eq!(source.next_observation(&mut rng).ones(), 3);
    }

    #[test]
    fn graph_factory_aligns_the_cursor_with_the_shard_range() {
        let snapshot = [Opinion::One, Opinion::Zero];
        let factory = GraphSourceFactory::new(&Funnel, &snapshot, None, 2, 0, 9, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        // A shard starting at agent 1 streams vertex 1 first.
        let mut source = factory.shard_source(1..2);
        assert_eq!(source.next_observation(&mut rng).ones(), 2);
    }

    #[test]
    fn bit_view_reads_source_prefix_and_packed_plane() {
        let words = [0b101u64];
        let view = SnapshotView::Bits {
            source_output: Opinion::One,
            num_sources: 2,
            words: &words,
        };
        // Sources answer arithmetically…
        assert!(view.is_one(0));
        assert!(view.is_one(1));
        // …stepped agents from the packed plane, offset by the prefix.
        assert!(view.is_one(2));
        assert!(!view.is_one(3));
        assert!(view.is_one(4));
    }

    #[test]
    fn graph_source_reads_identically_through_either_view() {
        // Vertex 1's only neighbor is vertex 0 — a source in the bits
        // view, a plain snapshot slot in the bytes view.
        let snapshot = [Opinion::One, Opinion::Zero];
        let bits = SnapshotView::Bits {
            source_output: Opinion::One,
            num_sources: 1,
            words: &[0b0],
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut by_bytes = GraphSource::new(&Funnel, &snapshot, None, 3, 1, 11);
        let mut by_bits = GraphSource::new(&Funnel, bits, None, 3, 1, 11);
        assert_eq!(
            by_bytes.next_observation(&mut rng).ones(),
            by_bits.next_observation(&mut rng).ones(),
        );
    }

    /// A complete graph on `n` vertices: every vertex has degree `n − 1`.
    #[derive(Debug, Clone)]
    struct Complete(Vec<Vec<u32>>);

    impl Complete {
        fn new(n: u32) -> Self {
            Complete(
                (0..n)
                    .map(|v| (0..n).filter(|&u| u != v).collect())
                    .collect(),
            )
        }
    }

    impl Neighborhood for Complete {
        fn population(&self) -> u32 {
            self.0.len() as u32
        }
        fn neighbors_of(&self, vertex: u32) -> &[u32] {
            &self.0[vertex as usize]
        }
        fn clone_box(&self) -> Box<dyn Neighborhood> {
            Box::new(self.clone())
        }
    }

    /// Every ISA path draws the same neighbor indices from the same
    /// words, leaves the owned generator in the same state, and counts
    /// the same ones — across rejection-prone (d = 3, 7) and
    /// rejection-free (d = 4) degrees, and across draw counts that
    /// exercise the vector groups, the rejection replay, and the scalar
    /// tail.
    #[test]
    fn neighbor_sampling_paths_are_stream_identical() {
        for d in [3u32, 4, 7] {
            let graph = Complete::new(d + 1);
            let neighbors = graph.neighbors_of(0);
            let snapshot: Vec<Opinion> = (0..=d)
                .map(|v| {
                    if v % 2 == 0 {
                        Opinion::One
                    } else {
                        Opinion::Zero
                    }
                })
                .collect();
            let view = SnapshotView::Bytes(&snapshot);
            for m in [1u32, 7, 8, 9, 16, 21, 64] {
                let seed = 0xFEED ^ (u64::from(d) << 8) ^ u64::from(m);
                let mut rng_ref = SmallRng::seed_from_u64(seed);
                let expect =
                    sample_neighbor_ones(IsaPath::Scalar, &mut rng_ref, view, neighbors, d, m);
                let end_state = rng_ref.next_u64();
                for path in IsaPath::available() {
                    let mut rng_path = SmallRng::seed_from_u64(seed);
                    let got = sample_neighbor_ones(path, &mut rng_path, view, neighbors, d, m);
                    assert_eq!(got, expect, "d={d} m={m} {path:?}: counts diverged");
                    assert_eq!(
                        rng_path.next_u64(),
                        end_state,
                        "d={d} m={m} {path:?}: RNG word consumption diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn index_streams_are_pure_in_round_and_range() {
        // Same (stream, round, range) ⇒ same draws; different rounds or
        // range starts ⇒ different streams.
        let a = GraphSourceFactory::new(&Funnel, &[Opinion::One, Opinion::Zero], None, 2, 0, 9, 3);
        let b = GraphSourceFactory::new(&Funnel, &[Opinion::One, Opinion::Zero], None, 2, 0, 9, 3);
        let c = GraphSourceFactory::new(&Funnel, &[Opinion::One, Opinion::Zero], None, 2, 0, 9, 4);
        assert_eq!(a.round_base, b.round_base);
        assert_ne!(a.round_base, c.round_base);
        assert_ne!(
            counter_split(a.round_base, 0),
            counter_split(a.round_base, 1)
        );
    }
}
