//! The aggregate FET chain: Observation 1 executed literally.
//!
//! Observation 1 of the paper states that, conditioned on
//! `(x_t, x_{t+1})`, the next fraction `x_{t+2}` is a (normalized) sum of
//! *independent* per-agent indicators:
//!
//! * a non-source agent holding 1 keeps it with probability
//!   `P(B_ℓ(x_{t+1}) ≥ B_ℓ(x_t))`;
//! * a non-source agent holding 0 switches to 1 with probability
//!   `P(B_ℓ(x_{t+1}) > B_ℓ(x_t))`;
//! * the source is constant.
//!
//! Summing independent indicators with two distinct success probabilities
//! is two binomial draws — so the whole population's round costs `O(ℓ)`
//! (the comparison kernels) plus two `O(log n)` exact binomial samples,
//! **independent of `n`**. This is what lets the reproduction run
//! populations of `10^9` agents and is distributionally *exact* for FET
//! (not a mean-field approximation).

use crate::convergence::{ConvergenceCriterion, ConvergenceDetector, ConvergenceReport};
use crate::error::SimError;
use fet_core::config::ProblemSpec;
use fet_core::opinion::Opinion;
use fet_stats::binomial::sample_binomial;
use fet_stats::compare::{trend_probabilities, TrendProbabilities};
use fet_stats::rng::SeedTree;
use rand::rngs::SmallRng;

/// The exact population-level FET chain over `(ones_t, ones_{t+1})`.
///
/// # Example
///
/// ```
/// use fet_core::config::ProblemSpec;
/// use fet_core::opinion::Opinion;
/// use fet_sim::aggregate::AggregateFetChain;
/// use fet_sim::convergence::ConvergenceCriterion;
///
/// let spec = ProblemSpec::single_source(1_000_000, Opinion::One)?;
/// // Start from the all-wrong configuration: only the source holds 1.
/// let mut chain = AggregateFetChain::new(spec, 40, 1, 1, 7)?;
/// let report = chain.run(50_000, ConvergenceCriterion::new(3));
/// assert!(report.converged());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AggregateFetChain {
    spec: ProblemSpec,
    ell: u32,
    ones_prev: u64,
    ones_curr: u64,
    rng: SmallRng,
    round: u64,
}

impl AggregateFetChain {
    /// Creates the chain at state `(ones_t, ones_{t+1}) = (ones_prev,
    /// ones_curr)` — counts of 1-opinions over the *whole* population.
    ///
    /// The pair may be set arbitrarily (subject to the source's
    /// contribution), reflecting the adversary's power to choose both
    /// initial opinions and stale counts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when a count exceeds `n` or
    /// contradicts the sources' fixed opinions, or when `ell == 0`.
    pub fn new(
        spec: ProblemSpec,
        ell: u32,
        ones_prev: u64,
        ones_curr: u64,
        seed: u64,
    ) -> Result<Self, SimError> {
        if ell == 0 {
            return Err(SimError::InvalidParameter {
                name: "ell",
                detail: "sample size must be at least 1".into(),
            });
        }
        let k = spec.num_sources();
        for (label, ones) in [("ones_prev", ones_prev), ("ones_curr", ones_curr)] {
            if ones > spec.n() {
                return Err(SimError::InvalidParameter {
                    name: "ones",
                    detail: format!("{label} = {ones} exceeds n = {}", spec.n()),
                });
            }
            let feasible = match spec.correct() {
                Opinion::One => ones >= k,
                Opinion::Zero => ones <= spec.n() - k,
            };
            if !feasible {
                return Err(SimError::InvalidParameter {
                    name: "ones",
                    detail: format!(
                        "{label} = {ones} contradicts {k} source(s) holding {}",
                        spec.correct()
                    ),
                });
            }
        }
        Ok(AggregateFetChain {
            spec,
            ell,
            ones_prev,
            ones_curr,
            rng: SeedTree::new(seed).child("aggregate").rng(),
            round: 0,
        })
    }

    /// Convenience: the chain started from the all-wrong configuration
    /// (both coordinates at the sources-only count).
    ///
    /// # Errors
    ///
    /// Propagates [`AggregateFetChain::new`] errors.
    pub fn all_wrong(spec: ProblemSpec, ell: u32, seed: u64) -> Result<Self, SimError> {
        let ones = match spec.correct() {
            Opinion::One => spec.num_sources(),
            Opinion::Zero => spec.n() - spec.num_sources(),
        };
        AggregateFetChain::new(spec, ell, ones, ones, seed)
    }

    /// The problem specification.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// The half-sample size `ℓ`.
    pub fn ell(&self) -> u32 {
        self.ell
    }

    /// Current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The chain state as fractions `(x_t, x_{t+1})`.
    pub fn fractions(&self) -> (f64, f64) {
        let n = self.spec.n() as f64;
        (self.ones_prev as f64 / n, self.ones_curr as f64 / n)
    }

    /// The per-agent transition probabilities at the current state
    /// (Observation 1's kernel).
    pub fn current_probabilities(&self) -> TrendProbabilities {
        let (x_t, x_t1) = self.fractions();
        trend_probabilities(u64::from(self.ell), x_t, x_t1)
    }

    /// `E[x_{t+2} | x_t, x_{t+1}]` per Eq. (2) of the paper.
    pub fn expected_next_fraction(&self) -> f64 {
        let n = self.spec.n() as f64;
        let tp = self.current_probabilities();
        let (_, x_t1) = self.fractions();
        let sources_one = match self.spec.correct() {
            Opinion::One => self.spec.num_sources() as f64,
            Opinion::Zero => 0.0,
        };
        let holders_one = self.ones_curr as f64 - sources_one;
        let holders_zero = n - self.spec.num_sources() as f64 - holders_one;
        let _ = x_t1;
        (sources_one + holders_one * (tp.adopt_one + tp.keep) + holders_zero * tp.adopt_one) / n
    }

    /// Advances one round, drawing `ones_{t+2}` from the exact law.
    pub fn step(&mut self) {
        let tp = self.current_probabilities();
        let k = self.spec.num_sources();
        let sources_one = match self.spec.correct() {
            Opinion::One => k,
            Opinion::Zero => 0,
        };
        let holders_one = self.ones_curr - sources_one;
        let holders_zero = self.spec.n() - k - holders_one;
        // Float rounding can push the sum an ulp past 1.0.
        let p_stay = (tp.adopt_one + tp.keep).min(1.0);
        let stay_one = sample_binomial(holders_one, p_stay, &mut self.rng);
        let join_one = sample_binomial(holders_zero, tp.adopt_one, &mut self.rng);
        let next = sources_one + stay_one + join_one;
        self.ones_prev = self.ones_curr;
        self.ones_curr = next;
        self.round += 1;
    }

    /// `true` when every non-source agent currently holds the correct
    /// opinion.
    pub fn all_correct(&self) -> bool {
        match self.spec.correct() {
            Opinion::One => self.ones_curr == self.spec.n(),
            Opinion::Zero => self.ones_curr == 0,
        }
    }

    /// Fraction of non-source agents currently holding the correct
    /// opinion.
    pub fn fraction_correct(&self) -> f64 {
        let correct_now = match self.spec.correct() {
            Opinion::One => (self.ones_curr - self.spec.num_sources()) as f64,
            Opinion::Zero => (self.spec.n() - self.ones_curr - self.spec.num_sources()) as f64,
        };
        correct_now / self.spec.num_non_sources() as f64
    }

    /// Runs until convergence is confirmed or the round budget is spent.
    pub fn run(&mut self, max_rounds: u64, criterion: ConvergenceCriterion) -> ConvergenceReport {
        let mut detector = ConvergenceDetector::new(criterion);
        let mut done = detector.observe(self.round, self.all_correct());
        while !done && self.round < max_rounds {
            self.step();
            done = detector.observe(self.round, self.all_correct());
        }
        let nn = self.spec.num_non_sources() as f64;
        let correct_now = match self.spec.correct() {
            Opinion::One => (self.ones_curr - self.spec.num_sources()) as f64,
            Opinion::Zero => (self.spec.n() - self.ones_curr - self.spec.num_sources()) as f64,
        };
        ConvergenceReport {
            converged_at: detector.converged_at(),
            rounds_run: self.round,
            final_fraction_correct: correct_now / nn,
        }
    }

    /// Runs and records the `x_t` trajectory (including both initial
    /// coordinates).
    pub fn run_recording(
        &mut self,
        max_rounds: u64,
        criterion: ConvergenceCriterion,
    ) -> (ConvergenceReport, Vec<f64>) {
        let mut traj = Vec::with_capacity(64);
        let (x0, x1) = self.fractions();
        traj.push(x0);
        traj.push(x1);
        let mut detector = ConvergenceDetector::new(criterion);
        let mut done = detector.observe(self.round, self.all_correct());
        while !done && self.round < max_rounds {
            self.step();
            traj.push(self.fractions().1);
            done = detector.observe(self.round, self.all_correct());
        }
        let nn = self.spec.num_non_sources() as f64;
        let correct_now = match self.spec.correct() {
            Opinion::One => (self.ones_curr - self.spec.num_sources()) as f64,
            Opinion::Zero => (self.spec.n() - self.ones_curr - self.spec.num_sources()) as f64,
        };
        let report = ConvergenceReport {
            converged_at: detector.converged_at(),
            rounds_run: self.round,
            final_fraction_correct: correct_now / nn,
        };
        (report, traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: u64) -> ProblemSpec {
        ProblemSpec::single_source(n, Opinion::One).unwrap()
    }

    #[test]
    fn validation_rejects_bad_counts() {
        assert!(AggregateFetChain::new(spec(10), 4, 11, 1, 0).is_err());
        // Source holds 1, so zero ones is infeasible.
        assert!(AggregateFetChain::new(spec(10), 4, 0, 1, 0).is_err());
        assert!(AggregateFetChain::new(spec(10), 0, 1, 1, 0).is_err());
    }

    #[test]
    fn all_wrong_start_converges_large_population() {
        let mut chain = AggregateFetChain::all_wrong(spec(100_000), 46, 3).unwrap();
        let report = chain.run(100_000, ConvergenceCriterion::new(3));
        assert!(report.converged(), "{report:?}");
        assert!(chain.all_correct());
    }

    #[test]
    fn converged_state_is_absorbing() {
        let mut chain = AggregateFetChain::new(spec(1_000), 30, 1_000, 1_000, 5).unwrap();
        for _ in 0..50 {
            chain.step();
            assert!(
                chain.all_correct(),
                "absorbing state left at round {}",
                chain.round()
            );
        }
    }

    #[test]
    fn correct_zero_converges_to_zero() {
        let spec0 = ProblemSpec::single_source(10_000, Opinion::Zero).unwrap();
        let mut chain = AggregateFetChain::all_wrong(spec0, 37, 7).unwrap();
        let report = chain.run(50_000, ConvergenceCriterion::new(3));
        assert!(report.converged(), "{report:?}");
        assert_eq!(chain.fractions().1, 0.0);
    }

    #[test]
    fn expected_next_fraction_matches_eq2_shape() {
        // Rising configuration: expectation must exceed a falling one's.
        let rising = AggregateFetChain::new(spec(10_000), 40, 2_000, 5_000, 1).unwrap();
        let falling = AggregateFetChain::new(spec(10_000), 40, 5_000, 2_000, 1).unwrap();
        assert!(rising.expected_next_fraction() > 0.9);
        assert!(falling.expected_next_fraction() < 0.1);
    }

    #[test]
    fn step_mean_matches_expectation() {
        let base = AggregateFetChain::new(spec(50_000), 32, 20_000, 26_000, 0).unwrap();
        let expect = base.expected_next_fraction();
        let reps = 3_000;
        let mut acc = 0.0;
        for seed in 0..reps {
            let mut c = AggregateFetChain::new(spec(50_000), 32, 20_000, 26_000, seed).unwrap();
            c.step();
            acc += c.fractions().1;
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - expect).abs() < 0.002,
            "mean {mean} vs expectation {expect}"
        );
    }

    #[test]
    fn trajectory_recording_includes_initial_pair() {
        let mut chain = AggregateFetChain::all_wrong(spec(1_000), 28, 9).unwrap();
        let (report, traj) = chain.run_recording(20_000, ConvergenceCriterion::new(2));
        assert!(report.converged());
        assert_eq!(traj.len() as u64, report.rounds_run + 2);
        assert_eq!(*traj.last().unwrap(), 1.0);
    }

    #[test]
    fn billion_agent_round_is_fast_and_sane() {
        // A single step at n = 10^9 must be effectively instantaneous and
        // produce a fraction in [0, 1].
        let spec_big = ProblemSpec::single_source(1_000_000_000, Opinion::One).unwrap();
        let mut chain = AggregateFetChain::new(spec_big, 80, 400_000_000, 500_000_000, 2).unwrap();
        chain.step();
        let (_, x) = chain.fractions();
        assert!((0.0..=1.0).contains(&x));
    }
}
