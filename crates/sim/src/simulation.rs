//! The unified `Simulation` facade: one validated builder over every way
//! this workspace can run a protocol.
//!
//! The workspace grew five bespoke entry points — `Engine::<P>::new`, the
//! neighbor-sampling engine, `AsyncEngine`, `AggregateFetChain`, and the
//! `ExperimentSpec` helpers — each re-wired by hand in the CLI, every
//! example, and every experiment binary. [`Simulation::builder`] replaces
//! that wiring with one fluent, validated configuration surface:
//!
//! * **protocol** — a typed instance, an [`ErasedProtocol`], or a registry
//!   name (`"fet"`, `"voter"`, `"3-majority"`, … — see
//!   [`fet_protocols::registry::ProtocolRegistry`]); defaults to FET at the
//!   paper's `ℓ = ⌈c·ln n⌉`.
//! * **fidelity** — [`Fidelity::Agent`], [`Fidelity::Binomial`],
//!   [`Fidelity::WithoutReplacement`], or [`Fidelity::Aggregate`] (the
//!   `O(ℓ)`-per-round Observation 1 chain, FET only).
//! * **communication structure** — the complete graph, or any
//!   [`Neighborhood`] (e.g. a `fet_topology::graph::Graph`).
//! * **scheduler** — synchronous rounds ([`Scheduler::Synchronous`]) or the
//!   population-protocol-style random-activation scheduler
//!   ([`Scheduler::Asynchronous`]).
//! * **execution mode** — how a synchronous round executes:
//!   [`ExecutionMode::Auto`] (default; a fused single-pass kernel on
//!   mean-field rounds — work-sharded across threads above an `n`
//!   threshold on multi-core hosts — and the batched pipeline otherwise),
//!   or force one with [`ExecutionMode::Fused`] /
//!   [`ExecutionMode::FusedParallel`] / [`ExecutionMode::Batched`].
//! * **fault plan, initial condition, convergence criterion, budgets,
//!   seed, trajectory recording** — one method each.
//!
//! Every combination is validated in [`SimulationBuilder::build`];
//! incompatible selections (aggregate + topology, without-replacement with
//! `m > n`, …) fail there with a specific [`SimError`], never at run time.
//! Running yields a uniform [`RunReport`] regardless of the execution
//! strategy chosen underneath.
//!
//! Synchronous runs — however the protocol was chosen — execute on the
//! [`PopulationEngine`]: the protocol handle builds a type-erased
//! *population container* (one contiguous buffer of concrete states, see
//! [`fet_core::population`]) and every round dispatches once into the typed
//! batch kernel. A registry-name run is therefore stream-identical to, and
//! within a few percent of, the equivalent typed `Engine<P>` run; the older
//! per-agent boxed route (`Engine<ErasedProtocol>`) remains available for
//! code that needs owned boxed states but is no longer used here.
//!
//! # Example
//!
//! ```
//! use fet_sim::simulation::Simulation;
//!
//! // FET, binomial fidelity, worst-case start — the default everything.
//! let report = Simulation::builder()
//!     .population(1_000)
//!     .seed(42)
//!     .build()?
//!     .run();
//! assert!(report.converged());
//!
//! // Same instance through the registry, by name.
//! let voter = Simulation::builder()
//!     .population(200)
//!     .protocol_name("voter")
//!     .max_rounds(500)
//!     .build()?
//!     .run();
//! assert_eq!(voter.protocol, "voter");
//! # Ok::<(), fet_sim::SimError>(())
//! ```

use crate::aggregate::AggregateFetChain;
use crate::asynchronous::AsyncEngine;
use crate::convergence::{
    ConvergenceCriterion, ConvergenceDetector, ConvergenceReport, RecoveryRecord,
};
use crate::engine::{ExecutionMode, Fidelity, PopulationEngine};
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultSchedule};
use crate::init::InitialCondition;
use crate::neighborhood::Neighborhood;
use crate::observer::{NullObserver, RoundObserver, RoundSnapshot, TrajectoryRecorder};
use fet_core::config::{ell_for_population, ProblemSpec};
use fet_core::erased::ErasedProtocol;
use fet_core::fet::FetProtocol;
use fet_core::opinion::Opinion;
use fet_core::protocol::Protocol;
use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
use fet_stats::binomial::sample_binomial;
use fet_stats::rng::SeedTree;
use serde::{Deserialize, Serialize};
use std::fmt;

/// When agents act relative to one another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheduler {
    /// The paper's model: every agent observes and updates each round.
    Synchronous,
    /// Population-protocol-style: one random agent activates per tick;
    /// time is counted in parallel rounds (`n` ticks each). Note the
    /// reproduction's negative finding: FET does **not** converge under
    /// this scheduler (see [`crate::asynchronous`]).
    Asynchronous,
}

/// Default sample-size constant `c` in `ℓ = ⌈c·ln n⌉`.
pub const DEFAULT_SAMPLE_CONSTANT: f64 = 4.0;

/// Population size at which [`Storage::Auto`] switches a packable,
/// fused-capable synchronous run to bit-plane storage. Below it the byte
/// representation's ~8 bytes/agent are immaterial and the typed buffer
/// stays the familiar default; above it the packed planes cut resident
/// opinion storage 8× (64×, for opinion-only protocols).
pub const BIT_PLANE_AUTO_MIN_N: u64 = 10_000_000;

/// How the synchronous engine stores per-agent state (orthogonal to
/// [`ExecutionMode`], which picks how a round *executes*).
///
/// Bit-plane storage packs opinions 64 agents per `u64` word, plus a
/// packed auxiliary plane for protocols like FET that carry a small
/// counter: exactly `⌈log₂(ℓ+1)⌉` bits per agent (a nibble or
/// interleaved bit-sliced plane — 3 bits/agent at `ℓ = 5`), or one byte
/// per agent when the counter needs all 8 bits — see
/// [`fet_core::bitplane`]. Rounds run through the in-place fused
/// kernels; opinion-only threshold protocols (voter, 3-majority)
/// additionally take the word-at-a-time kernel, 64 agents per plane
/// write. It requires a *packable, passive* protocol
/// ([`fet_core::protocol::Protocol::state_planes`]), a synchronous
/// fused-capable configuration (any mean-field fidelity, or any
/// topology), and no sleepy-agent faults; [`SimulationBuilder::build`]
/// validates all of that. Trajectories are **bit-identical** to the
/// typed representation for the same `(seed, execution mode, shard
/// count)` — storage never perturbs the stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Storage {
    /// Select automatically: bit-plane when the protocol is packable,
    /// the configuration supports it, and `n ≥` [`BIT_PLANE_AUTO_MIN_N`];
    /// the typed byte representation otherwise. The default.
    #[default]
    Auto,
    /// One typed state per agent in a contiguous buffer — the byte
    /// representation every PR before bit planes used.
    Typed,
    /// Packed bit planes: 1 bit/agent opinion plus the protocol's packed
    /// auxiliary plane
    /// ([`fet_core::protocol::StatePlanes::OpinionPlusPacked`] bits,
    /// [`StatePlanes::OpinionPlusByte`](fet_core::protocol::StatePlanes::OpinionPlusByte)
    /// bytes, or nothing for opinion-only protocols). Rejected at build
    /// time when the protocol or configuration cannot support it.
    BitPlane,
}

impl fmt::Display for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Storage::Auto => f.write_str("auto"),
            Storage::Typed => f.write_str("typed"),
            Storage::BitPlane => f.write_str("bit-plane"),
        }
    }
}

/// Generous default budget: `200·ln²n` rounds, far above the paper's
/// `O(log^{5/2} n)` expectation at practical sizes while still bounded.
pub fn default_max_rounds(n: u64) -> u64 {
    let ln = (n.max(2) as f64).ln();
    (200.0 * ln * ln).ceil() as u64
}

/// Uniform outcome of one run, whatever ran underneath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the protocol that ran.
    pub protocol: String,
    /// Agents observed per agent per round (the protocol's `m`; `2ℓ` for
    /// FET).
    pub samples_per_round: u32,
    /// Population size.
    pub n: u64,
    /// Fidelity the run used.
    pub fidelity: Fidelity,
    /// Execution mode the run was configured with ([`ExecutionMode::Auto`]
    /// resolves to the fused single-pass kernel on synchronous mean-field
    /// runs and the batched pipeline otherwise; the aggregate and
    /// asynchronous runners have one implementation each).
    pub mode: ExecutionMode,
    /// Scheduler the run used.
    pub scheduler: Scheduler,
    /// The storage representation the run resolved to — never
    /// [`Storage::Auto`]; [`Storage::BitPlane`] exactly when the
    /// synchronous engine drove packed planes, [`Storage::Typed`]
    /// otherwise (including the aggregate and asynchronous runners,
    /// which keep no packable per-agent planes).
    pub storage: Storage,
    /// Heap bytes resident in the per-agent state container at report
    /// time (`0` for the aggregate chain, which keeps no per-agent
    /// states) — the number the packed planes shrink to
    /// `1 + ⌈log₂(ℓ+1)⌉` bits/agent for FET (16× under the typed buffer
    /// at `ℓ = 5`) and to 1 bit/agent for opinion-only protocols.
    pub resident_bytes: u64,
    /// Convergence outcome. Under [`Scheduler::Asynchronous`] the rounds
    /// are parallel rounds (`n` activations each).
    pub report: ConvergenceReport,
    /// The `x_t` trajectory, when recording was requested.
    pub trajectory: Option<Vec<f64>>,
    /// Per-event recovery records, one per fired fault-schedule event in
    /// firing order. Empty unless a [`FaultSchedule`] with events ran.
    /// `None` milestones mean the run never recovered before the next
    /// event or the round budget — expected under persistent noise.
    pub recovery: Vec<RecoveryRecord>,
}

impl RunReport {
    /// `true` when the run converged within budget.
    pub fn converged(&self) -> bool {
        self.report.converged()
    }

    /// `t_con`, if the run converged.
    pub fn converged_at(&self) -> Option<u64> {
        self.report.converged_at
    }
}

enum Runner {
    /// The synchronous hot path: the generic round loop over a type-erased
    /// *population container* (one contiguous typed state buffer — zero
    /// per-round allocation or cloning), stream-identical to the typed
    /// `Engine<P>` for the same seed.
    Sync(Box<PopulationEngine>),
    /// The per-activation scheduler steps one agent at a time, so it keeps
    /// the per-agent erased representation.
    Async(Box<AsyncEngine<ErasedProtocol>>),
    Aggregate(AggregateFetChain),
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Runner::Sync(_) => f.write_str("Runner::Sync"),
            Runner::Async(_) => f.write_str("Runner::Async"),
            Runner::Aggregate(_) => f.write_str("Runner::Aggregate"),
        }
    }
}

/// A fully configured, ready-to-run simulation.
///
/// Construct through [`Simulation::builder`]; run with [`Simulation::run`]
/// or [`Simulation::run_observed`]. The simulation owns its state, so
/// repeated `run` calls continue from where the previous one stopped
/// (useful for warm-up / measurement phases).
#[derive(Debug)]
pub struct Simulation {
    runner: Runner,
    protocol_name: String,
    samples_per_round: u32,
    n: u64,
    fidelity: Fidelity,
    mode: ExecutionMode,
    scheduler: Scheduler,
    storage: Storage,
    criterion: ConvergenceCriterion,
    max_rounds: u64,
    record_trajectory: bool,
}

impl Simulation {
    /// Starts a builder with the workspace defaults: FET at
    /// `ℓ = ⌈4·ln n⌉`, binomial fidelity, complete graph, synchronous
    /// scheduler, all-wrong initial condition, no faults, seed 0.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }

    /// The paper's `x_t`: fraction of agents currently outputting 1.
    pub fn fraction_ones(&self) -> f64 {
        match &self.runner {
            Runner::Sync(e) => e.fraction_ones(),
            Runner::Async(e) => e.fraction_ones(),
            Runner::Aggregate(c) => c.fractions().1,
        }
    }

    /// Fraction of non-source agents currently deciding correctly.
    pub fn fraction_correct(&self) -> f64 {
        match &self.runner {
            Runner::Sync(e) => e.fraction_correct(),
            Runner::Async(e) => e.fraction_correct(),
            Runner::Aggregate(c) => c.fraction_correct(),
        }
    }

    /// Rounds executed so far (parallel rounds under the async scheduler).
    pub fn round(&self) -> u64 {
        match &self.runner {
            Runner::Sync(e) => e.round(),
            Runner::Async(e) => e.parallel_rounds(),
            Runner::Aggregate(c) => c.round(),
        }
    }

    /// The current correct opinion (tracks mid-run source retargeting).
    pub fn correct(&self) -> Opinion {
        match &self.runner {
            Runner::Sync(e) => e.correct(),
            Runner::Async(e) => e.spec().correct(),
            Runner::Aggregate(c) => c.spec().correct(),
        }
    }

    /// `true` when every non-source agent currently decides correctly.
    pub fn all_correct(&self) -> bool {
        match &self.runner {
            Runner::Sync(e) => e.all_correct(),
            Runner::Async(e) => e.all_correct(),
            Runner::Aggregate(c) => c.all_correct(),
        }
    }

    /// Advances one round (one parallel round — `n` activations — under
    /// the async scheduler) without convergence bookkeeping. For manual
    /// drive loops; [`Simulation::run`] is the usual entry point.
    pub fn step(&mut self) {
        match &mut self.runner {
            Runner::Sync(e) => e.step(),
            Runner::Async(e) => {
                for _ in 0..e.spec().n() {
                    e.tick();
                }
            }
            Runner::Aggregate(c) => c.step(),
        }
    }

    /// Replaces the fault plan mid-run — e.g. scheduling a source
    /// retarget relative to a convergence round that is only known after a
    /// first [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for the aggregate and
    /// asynchronous runners, which do not execute fault plans.
    pub fn set_fault_plan(&mut self, fault: FaultPlan) -> Result<(), SimError> {
        match &mut self.runner {
            Runner::Sync(e) => {
                e.set_fault_plan(fault);
                Ok(())
            }
            Runner::Async(_) | Runner::Aggregate(_) => Err(SimError::InvalidParameter {
                name: "fault",
                detail: "fault plans are a synchronous per-agent engine feature".into(),
            }),
        }
    }

    /// Installs a round-indexed fault schedule mid-run (see
    /// [`PopulationEngine::set_fault_schedule`]); event rounds are
    /// absolute, so events scheduled before the current round never fire.
    ///
    /// # Errors
    ///
    /// As [`Simulation::set_fault_plan`].
    pub fn set_fault_schedule(&mut self, schedule: &FaultSchedule) -> Result<(), SimError> {
        match &mut self.runner {
            Runner::Sync(e) => {
                e.set_fault_schedule(schedule);
                Ok(())
            }
            Runner::Async(_) | Runner::Aggregate(_) => Err(SimError::InvalidParameter {
                name: "fault",
                detail: "fault schedules are a synchronous per-agent engine feature".into(),
            }),
        }
    }

    /// Per-event recovery records accumulated so far (empty for runners
    /// without fault schedules).
    pub fn recovery_records(&self) -> &[RecoveryRecord] {
        match &self.runner {
            Runner::Sync(e) => e.recovery_records(),
            Runner::Async(_) | Runner::Aggregate(_) => &[],
        }
    }

    /// Runs to convergence or budget, reporting the outcome.
    pub fn run(&mut self) -> RunReport {
        self.run_observed(&mut NullObserver)
    }

    /// Runs to convergence or budget, feeding every round snapshot
    /// (including round 0) to `observer`.
    pub fn run_observed(&mut self, observer: &mut dyn RoundObserver) -> RunReport {
        let mut recorder = self.record_trajectory.then(TrajectoryRecorder::new);
        let report = {
            let mut fanout = |snapshot: RoundSnapshot| {
                if let Some(rec) = recorder.as_mut() {
                    rec.on_round(snapshot);
                }
                observer.on_round(snapshot);
            };
            let criterion = self.criterion;
            let max_rounds = self.max_rounds;
            match &mut self.runner {
                Runner::Sync(engine) => engine.run(max_rounds, criterion, &mut fanout),
                Runner::Async(engine) => run_async(engine, max_rounds, criterion, &mut fanout),
                Runner::Aggregate(chain) => {
                    run_aggregate(chain, max_rounds, criterion, &mut fanout)
                }
            }
        };
        RunReport {
            protocol: self.protocol_name.clone(),
            samples_per_round: self.samples_per_round,
            n: self.n,
            fidelity: self.fidelity,
            mode: self.mode,
            scheduler: self.scheduler,
            storage: self.storage,
            resident_bytes: self.resident_bytes(),
            report,
            trajectory: recorder.map(TrajectoryRecorder::into_fractions),
            recovery: self.recovery_records().to_vec(),
        }
    }

    /// Heap bytes resident in the per-agent state container right now.
    pub fn resident_bytes(&self) -> u64 {
        match &self.runner {
            Runner::Sync(e) => e.population().resident_bytes() as u64,
            Runner::Async(e) => e.resident_state_bytes() as u64,
            Runner::Aggregate(_) => 0,
        }
    }

    /// The storage representation this simulation resolved to (never
    /// [`Storage::Auto`]).
    pub fn storage(&self) -> Storage {
        self.storage
    }
}

/// Drives the async engine in parallel rounds, with observer snapshots.
fn run_async(
    engine: &mut AsyncEngine<ErasedProtocol>,
    max_parallel_rounds: u64,
    criterion: ConvergenceCriterion,
    observer: &mut dyn RoundObserver,
) -> ConvergenceReport {
    let n = engine.spec().n();
    let mut detector = ConvergenceDetector::new(criterion);
    let mut round = engine.parallel_rounds();
    let snapshot = |engine: &AsyncEngine<ErasedProtocol>, round| RoundSnapshot {
        round,
        fraction_ones: engine.fraction_ones(),
        fraction_correct: engine.fraction_correct(),
    };
    observer.on_round(snapshot(engine, round));
    let mut done = detector.observe(round, engine.all_correct());
    while !done && round < max_parallel_rounds {
        for _ in 0..n {
            engine.tick();
        }
        round = engine.parallel_rounds();
        observer.on_round(snapshot(engine, round));
        done = detector.observe(round, engine.all_correct());
    }
    ConvergenceReport {
        converged_at: detector.converged_at(),
        rounds_run: round,
        final_fraction_correct: engine.fraction_correct(),
    }
}

/// Drives the aggregate chain round by round, with observer snapshots.
fn run_aggregate(
    chain: &mut AggregateFetChain,
    max_rounds: u64,
    criterion: ConvergenceCriterion,
    observer: &mut dyn RoundObserver,
) -> ConvergenceReport {
    let mut detector = ConvergenceDetector::new(criterion);
    let snapshot = |chain: &AggregateFetChain| RoundSnapshot {
        round: chain.round(),
        fraction_ones: chain.fractions().1,
        fraction_correct: chain.fraction_correct(),
    };
    observer.on_round(snapshot(chain));
    let mut done = detector.observe(chain.round(), chain.all_correct());
    while !done && chain.round() < max_rounds {
        chain.step();
        observer.on_round(snapshot(chain));
        done = detector.observe(chain.round(), chain.all_correct());
    }
    ConvergenceReport {
        converged_at: detector.converged_at(),
        rounds_run: chain.round(),
        final_fraction_correct: chain.fraction_correct(),
    }
}

#[derive(Debug)]
enum ProtocolChoice {
    /// FET at the resolved `ℓ`.
    Default,
    /// Resolved through the registry at build time.
    Named(String),
    /// A caller-supplied instance.
    Instance(ErasedProtocol),
}

/// Fluent, validated configuration for [`Simulation`].
///
/// Consuming builder: each method takes and returns `self`, ending in
/// [`SimulationBuilder::build`]. See the [module docs](self) for the
/// selection axes and an example.
#[derive(Debug)]
pub struct SimulationBuilder {
    n: Option<u64>,
    num_sources: u64,
    correct: Opinion,
    seed: u64,
    sample_constant: f64,
    ell_override: Option<u32>,
    protocol: ProtocolChoice,
    registry: Option<ProtocolRegistry>,
    fidelity: Option<Fidelity>,
    mode: ExecutionMode,
    scheduler: Scheduler,
    storage: Storage,
    topology: Option<Box<dyn Neighborhood>>,
    init: InitialCondition,
    fault: FaultPlan,
    schedule: Option<FaultSchedule>,
    max_rounds: Option<u64>,
    stability_window: u64,
    record_trajectory: bool,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder::new()
    }
}

impl SimulationBuilder {
    fn new() -> Self {
        SimulationBuilder {
            n: None,
            num_sources: 1,
            correct: Opinion::One,
            seed: 0,
            sample_constant: DEFAULT_SAMPLE_CONSTANT,
            ell_override: None,
            protocol: ProtocolChoice::Default,
            registry: None,
            fidelity: None,
            mode: ExecutionMode::Auto,
            scheduler: Scheduler::Synchronous,
            storage: Storage::Auto,
            topology: None,
            init: InitialCondition::AllWrong,
            fault: FaultPlan::none(),
            schedule: None,
            max_rounds: None,
            stability_window: 3,
            record_trajectory: false,
        }
    }

    /// Sets the population size (required unless a topology provides it).
    pub fn population(mut self, n: u64) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the number of source agents (default 1).
    pub fn sources(mut self, k: u64) -> Self {
        self.num_sources = k;
        self
    }

    /// Sets the correct opinion (default [`Opinion::One`]).
    pub fn correct(mut self, o: Opinion) -> Self {
        self.correct = o;
        self
    }

    /// Sets the root seed (default 0).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the sample constant `c` in `ℓ = ⌈c·ln n⌉` (default 4.0).
    pub fn sample_constant(mut self, c: f64) -> Self {
        self.sample_constant = c;
        self
    }

    /// Overrides `ℓ` directly (wins over the sample constant).
    pub fn ell(mut self, ell: u32) -> Self {
        self.ell_override = Some(ell);
        self
    }

    /// Runs a specific protocol instance.
    pub fn protocol<P>(mut self, protocol: P) -> Self
    where
        P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
        P::State: 'static,
    {
        self.protocol = ProtocolChoice::Instance(ErasedProtocol::new(protocol));
        self
    }

    /// Runs an already-erased protocol instance.
    pub fn protocol_erased(mut self, protocol: ErasedProtocol) -> Self {
        self.protocol = ProtocolChoice::Instance(protocol);
        self
    }

    /// Selects the protocol by registry name at build time (built-in
    /// registry unless [`SimulationBuilder::registry`] supplies another).
    pub fn protocol_name(mut self, name: impl Into<String>) -> Self {
        self.protocol = ProtocolChoice::Named(name.into());
        self
    }

    /// Uses a custom protocol registry for name resolution.
    pub fn registry(mut self, registry: ProtocolRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the observation fidelity (default [`Fidelity::Binomial`] on
    /// the complete graph, [`Fidelity::Agent`] with a topology).
    pub fn fidelity(mut self, f: Fidelity) -> Self {
        self.fidelity = Some(f);
        self
    }

    /// Sets the synchronous round implementation (default
    /// [`ExecutionMode::Auto`]: a fused single-pass kernel on mean-field
    /// *and* topology (graph) rounds — parallelized above an `n` threshold
    /// on multi-core hosts — and the batched pipeline for the literal
    /// complete-graph Agent fidelity). Forcing [`ExecutionMode::Fused`] or
    /// [`ExecutionMode::FusedParallel`] is validated in
    /// [`SimulationBuilder::build`]: both require a synchronous per-agent
    /// run with an on-demand observation source (any mean-field fidelity,
    /// or any topology — only the literal Agent fidelity on the complete
    /// graph is rejected), and the parallel mode additionally a non-zero
    /// thread count and a
    /// [`parallel_eligible`](fet_core::protocol::Protocol::parallel_eligible)
    /// protocol. Note the stream caveat in [`crate::engine`]'s docs: each
    /// mode (and each parallel shard count) is its own deterministic
    /// stream per seed.
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the scheduler (default [`Scheduler::Synchronous`]).
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = s;
        self
    }

    /// Selects the per-agent storage representation (default
    /// [`Storage::Auto`]): the contiguous typed buffer, or packed bit
    /// planes — 1 bit/agent opinion plus, for protocols like FET that
    /// carry a small per-agent counter, 1 byte/agent of auxiliary state
    /// (see [`fet_core::bitplane`]).
    ///
    /// Storage is orthogonal to [`SimulationBuilder::execution_mode`]: it
    /// changes where states live, never which random stream the round
    /// draws — trajectories are bit-identical across representations for
    /// the same `(seed, mode, shard count)`. Forcing
    /// [`Storage::BitPlane`] is validated in
    /// [`SimulationBuilder::build`]: it requires a packable passive
    /// protocol ([`fet_core::protocol::Protocol::state_planes`]), the
    /// synchronous scheduler, a fused-capable configuration (any
    /// mean-field fidelity, or any topology — not the literal Agent
    /// fidelity on the complete graph, and not
    /// [`ExecutionMode::Batched`]), and no sleepy-agent faults.
    pub fn storage(mut self, s: Storage) -> Self {
        self.storage = s;
        self
    }

    /// Restricts each agent's observations to an explicit communication
    /// structure (e.g. a `fet_topology::graph::Graph`). Implies
    /// [`Fidelity::Agent`] (neighbor sampling is literal — an explicit
    /// non-agent fidelity is a build error); the population size is taken
    /// from the structure.
    pub fn topology(self, topology: impl Neighborhood + 'static) -> Self {
        self.topology_boxed(Box::new(topology))
    }

    /// Boxed-topology variant of [`SimulationBuilder::topology`].
    pub fn topology_boxed(mut self, topology: Box<dyn Neighborhood>) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the initial condition (default [`InitialCondition::AllWrong`]).
    pub fn init(mut self, init: InitialCondition) -> Self {
        self.init = init;
        self
    }

    /// Installs a fault plan (default none).
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Installs a round-indexed fault schedule (default none). Wins over
    /// [`SimulationBuilder::fault`]: the schedule's base plan becomes the
    /// run's fault plan and its events fire at the start of their rounds.
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the round budget (default `200·ln²n`).
    pub fn max_rounds(mut self, r: u64) -> Self {
        self.max_rounds = Some(r);
        self
    }

    /// Sets the convergence stability window (default 3).
    pub fn stability_window(mut self, w: u64) -> Self {
        self.stability_window = w;
        self
    }

    /// Records the `x_t` trajectory into the [`RunReport`] (default off).
    pub fn record_trajectory(mut self, record: bool) -> Self {
        self.record_trajectory = record;
        self
    }

    fn invalid(name: &'static str, detail: impl Into<String>) -> SimError {
        SimError::InvalidParameter {
            name,
            detail: detail.into(),
        }
    }

    /// Validates the configuration and assembles the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for incompatible selections
    /// — topology with a non-agent fidelity or the async scheduler,
    /// aggregate fidelity with a protocol lacking the Observation 1
    /// structure / with faults / with the async scheduler,
    /// without-replacement sampling with `m > n`, an unknown registry name
    /// — and [`SimError::Core`] for invalid instance parameters.
    pub fn build(self) -> Result<Simulation, SimError> {
        let n = match (self.n, self.topology.as_ref()) {
            (Some(n), Some(t)) if n != u64::from(t.population()) => {
                return Err(Self::invalid(
                    "population",
                    format!(
                        "population {n} disagrees with the topology's {} vertices",
                        t.population()
                    ),
                ));
            }
            (_, Some(t)) => u64::from(t.population()),
            (Some(n), None) => n,
            (None, None) => {
                return Err(Self::invalid(
                    "population",
                    "set .population(n) or provide a topology",
                ));
            }
        };
        let ell = match self.ell_override {
            Some(e) => e,
            None => {
                if !(self.sample_constant.is_finite() && self.sample_constant > 0.0) {
                    return Err(Self::invalid(
                        "sample_constant",
                        format!("must be positive and finite, got {}", self.sample_constant),
                    ));
                }
                ell_for_population(n, self.sample_constant)
            }
        };
        let protocol = match &self.protocol {
            ProtocolChoice::Default => ErasedProtocol::new(FetProtocol::new(ell)?),
            ProtocolChoice::Named(name) => {
                let builtins;
                let registry = match self.registry.as_ref() {
                    Some(r) => r,
                    None => {
                        builtins = ProtocolRegistry::with_builtins();
                        &builtins
                    }
                };
                registry
                    .build(name, &ProtocolParams::with_ell(n, ell))
                    .map_err(|e| Self::invalid("protocol", e.to_string()))?
            }
            ProtocolChoice::Instance(p) => p.clone(),
        };
        let spec = ProblemSpec::new(n, self.num_sources, self.correct)?;
        let max_rounds = self.max_rounds.unwrap_or_else(|| default_max_rounds(n));
        let criterion = ConvergenceCriterion::new(self.stability_window);
        let fidelity = self.fidelity.unwrap_or(
            if self.topology.is_some() || self.scheduler == Scheduler::Asynchronous {
                Fidelity::Agent
            } else {
                Fidelity::Binomial
            },
        );
        // The fault plan the run actually executes: a schedule's base
        // plan wins over `.fault()` (the schedule's events ride on top).
        let effective_fault = self
            .schedule
            .as_ref()
            .map_or(self.fault, FaultSchedule::base);
        let faulty =
            !effective_fault.is_none() || self.schedule.as_ref().is_some_and(|s| !s.is_trivial());
        if self.scheduler == Scheduler::Asynchronous {
            if fidelity != Fidelity::Agent {
                return Err(Self::invalid(
                    "scheduler",
                    format!(
                        "the asynchronous scheduler samples literally; {fidelity:?} fidelity \
                         applies to synchronous rounds only"
                    ),
                ));
            }
            if faulty {
                return Err(Self::invalid(
                    "fault",
                    "fault plans and schedules are a synchronous-engine feature",
                ));
            }
        }

        if self.topology.is_some() {
            if self.scheduler == Scheduler::Asynchronous {
                return Err(Self::invalid(
                    "topology",
                    "the asynchronous scheduler runs on the complete graph only",
                ));
            }
            if !matches!(fidelity, Fidelity::Agent) {
                return Err(Self::invalid(
                    "topology",
                    format!(
                        "neighbor sampling is literal; {fidelity:?} fidelity applies to the \
                         complete graph only (use Fidelity::Agent or drop the topology)"
                    ),
                ));
            }
        }
        if fidelity == Fidelity::Aggregate {
            if self.scheduler == Scheduler::Asynchronous {
                return Err(Self::invalid(
                    "fidelity",
                    "the aggregate chain models synchronous rounds only",
                ));
            }
            if faulty {
                return Err(Self::invalid(
                    "fidelity",
                    "fault plans and schedules need per-agent state; use agent or binomial \
                     fidelity",
                ));
            }
        }
        if self.mode != ExecutionMode::Auto {
            // The batched/fused choice exists only for the synchronous
            // per-agent engine; other runners have a single implementation.
            if self.scheduler == Scheduler::Asynchronous || fidelity == Fidelity::Aggregate {
                return Err(Self::invalid(
                    "mode",
                    format!(
                        "execution mode `{}` applies to synchronous per-agent runs; the \
                         aggregate chain and the asynchronous scheduler have one \
                         implementation each (use ExecutionMode::Auto)",
                        self.mode
                    ),
                ));
            }
            let fused_family = matches!(
                self.mode,
                ExecutionMode::Fused | ExecutionMode::FusedParallel { .. }
            );
            if fused_family && self.topology.is_none() && fidelity == Fidelity::Agent {
                return Err(Self::invalid(
                    "mode",
                    "offending axis: fidelity — the literal Agent fidelity on the complete \
                     graph has no on-demand observation source and keeps the snapshot-driven \
                     batched path; fused modes run on the mean-field fidelities \
                     (Binomial/WithoutReplacement) and on topology (graph) runs",
                ));
            }
            if matches!(self.mode, ExecutionMode::FusedParallel { threads: 0 }) {
                return Err(Self::invalid(
                    "mode",
                    "offending axis: threads — fused-parallel needs at least one thread",
                ));
            }
            if matches!(self.mode, ExecutionMode::FusedParallel { .. })
                && !protocol.parallel_eligible()
            {
                return Err(Self::invalid(
                    "mode",
                    format!(
                        "offending axis: protocol — `{}` opts out of parallel sharding",
                        protocol.name()
                    ),
                ));
            }
        }

        // Storage is a synchronous per-agent engine axis riding the fused
        // round family; every requirement is checkable here, so forcing
        // bit planes fails at build time with the offending axis named.
        let bit_plane_obstacle: Option<String> = if self.scheduler == Scheduler::Asynchronous {
            Some(
                "offending axis: scheduler — the asynchronous runner steps boxed per-agent \
                 states, not packed planes"
                    .into(),
            )
        } else if fidelity == Fidelity::Aggregate {
            Some(
                "offending axis: fidelity — the aggregate chain keeps no per-agent states \
                 to pack"
                    .into(),
            )
        } else if self.mode == ExecutionMode::Batched {
            Some(
                "offending axis: mode — bit-plane populations run the fused round family, \
                 not the snapshot-driven batched pipeline"
                    .into(),
            )
        } else if self.topology.is_none() && fidelity == Fidelity::Agent {
            Some(
                "offending axis: fidelity — the literal Agent fidelity on the complete graph \
                 keeps the batched path, which bit planes do not support (use \
                 Binomial/WithoutReplacement fidelity, or a topology)"
                    .into(),
            )
        } else if effective_fault.sleep_prob > 0.0 {
            Some(
                "offending axis: fault — sleepy-agent faults need the per-agent byte output \
                 buffer; run them on typed storage"
                    .into(),
            )
        } else if protocol.bit_population().is_none() {
            Some(format!(
                "offending axis: protocol — `{}` has no packed-plane representation \
                 (its state_planes layout is Unpacked)",
                protocol.name()
            ))
        } else {
            None
        };
        let storage = match self.storage {
            Storage::Typed => Storage::Typed,
            Storage::BitPlane => match bit_plane_obstacle {
                Some(detail) => return Err(Self::invalid("storage", detail)),
                None => Storage::BitPlane,
            },
            Storage::Auto => {
                if bit_plane_obstacle.is_none() && n >= BIT_PLANE_AUTO_MIN_N {
                    Storage::BitPlane
                } else {
                    Storage::Typed
                }
            }
        };

        let runner = match (self.scheduler, fidelity) {
            (Scheduler::Synchronous, Fidelity::Aggregate) => {
                let chain_ell = protocol.aggregate_ell().ok_or_else(|| {
                    Self::invalid(
                        "fidelity",
                        format!(
                            "protocol `{}` has no exact aggregate chain (Observation 1 \
                             holds for FET only)",
                            protocol.name()
                        ),
                    )
                })?;
                let ones = initial_ones(&spec, self.init, self.seed);
                Runner::Aggregate(AggregateFetChain::new(
                    spec, chain_ell, ones, ones, self.seed,
                )?)
            }
            (Scheduler::Asynchronous, _) => Runner::Async(Box::new(AsyncEngine::new(
                protocol.clone(),
                spec,
                self.init,
                self.seed,
            )?)),
            (Scheduler::Synchronous, per_agent) => {
                // The factory-produced handle hands out a population
                // container — contiguous typed states, or packed bit
                // planes when the storage axis resolved there; the engine
                // fills it once and every round after dispatches straight
                // into the typed kernel. The representation never enters
                // the random stream.
                let population = match storage {
                    Storage::BitPlane => protocol
                        .bit_population()
                        .expect("packability validated by the storage axis above"),
                    _ => protocol.population(),
                };
                let mut engine = match self.topology {
                    Some(topology) => PopulationEngine::with_neighborhood(
                        population,
                        topology,
                        u32::try_from(self.num_sources).map_err(|_| {
                            Self::invalid("sources", "topology engines index sources as u32")
                        })?,
                        self.correct,
                        self.init,
                        self.seed,
                    )?,
                    None => {
                        PopulationEngine::new(population, spec, per_agent, self.init, self.seed)?
                    }
                };
                match &self.schedule {
                    Some(schedule) => engine.set_fault_schedule(schedule),
                    None => engine.set_fault_plan(self.fault),
                }
                engine
                    .set_execution_mode(self.mode)
                    .expect("fused-mode compatibility validated above");
                Runner::Sync(Box::new(engine))
            }
        };

        Ok(Simulation {
            protocol_name: protocol.name().to_string(),
            samples_per_round: protocol.samples_per_round(),
            n,
            fidelity,
            mode: self.mode,
            scheduler: self.scheduler,
            storage,
            criterion,
            max_rounds,
            record_trajectory: self.record_trajectory,
            runner,
        })
    }
}

/// Maps an [`InitialCondition`] to the whole-population 1-count the
/// aggregate chain starts from (sources included).
fn initial_ones(spec: &ProblemSpec, init: InitialCondition, seed: u64) -> u64 {
    let k = spec.num_sources();
    let non_sources = spec.num_non_sources();
    let sources_one = match spec.correct() {
        Opinion::One => k,
        Opinion::Zero => 0,
    };
    let p_one = |p_correct: f64| match spec.correct() {
        Opinion::One => p_correct,
        Opinion::Zero => 1.0 - p_correct,
    };
    match init {
        InitialCondition::AllWrong => {
            sources_one + non_sources * u64::from(spec.correct() == Opinion::Zero)
        }
        InitialCondition::AllCorrect => {
            sources_one + non_sources * u64::from(spec.correct() == Opinion::One)
        }
        InitialCondition::FractionCorrect(p) => {
            let mut rng = SeedTree::new(seed).child("aggregate-init").rng();
            sources_one + sample_binomial(non_sources, p_one(p), &mut rng)
        }
        InitialCondition::Random => {
            let mut rng = SeedTree::new(seed).child("aggregate-init").rng();
            sources_one + sample_binomial(non_sources, 0.5, &mut rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_converges() {
        let mut sim = Simulation::builder()
            .population(400)
            .seed(7)
            .build()
            .unwrap();
        let report = sim.run();
        assert!(report.converged(), "{report:?}");
        assert_eq!(report.protocol, "fet");
        assert_eq!(report.n, 400);
        assert_eq!(report.report.final_fraction_correct, 1.0);
        assert!(report.trajectory.is_none());
    }

    #[test]
    fn trajectory_recording_through_builder() {
        let mut sim = Simulation::builder()
            .population(300)
            .seed(3)
            .record_trajectory(true)
            .build()
            .unwrap();
        let report = sim.run();
        let traj = report.trajectory.expect("recording requested");
        assert_eq!(traj.len() as u64, report.report.rounds_run + 1);
        assert!((traj[0] - 1.0 / 300.0).abs() < 1e-12, "all-wrong start");
        assert_eq!(*traj.last().unwrap(), 1.0);
    }

    #[test]
    fn aggregate_fidelity_runs_large_populations() {
        let mut sim = Simulation::builder()
            .population(1_000_000)
            .fidelity(Fidelity::Aggregate)
            .seed(5)
            .build()
            .unwrap();
        let report = sim.run();
        assert!(report.converged(), "{report:?}");
        assert_eq!(report.fidelity, Fidelity::Aggregate);
    }

    #[test]
    fn registry_name_selects_protocol() {
        for name in ["voter", "majority", "3-majority"] {
            let sim = Simulation::builder()
                .population(100)
                .protocol_name(name)
                .max_rounds(50)
                .build()
                .unwrap();
            assert_eq!(sim.protocol_name, name);
        }
    }

    #[test]
    fn unknown_protocol_name_is_a_build_error() {
        let err = Simulation::builder()
            .population(100)
            .protocol_name("frobnicate")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown protocol"), "{err}");
    }

    #[test]
    fn without_replacement_oversampling_is_a_build_error() {
        // 2ℓ = 64 samples from 20 agents cannot be distinct.
        let err = Simulation::builder()
            .population(20)
            .ell(32)
            .fidelity(Fidelity::WithoutReplacement)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("without-replacement"), "{err}");
    }

    #[test]
    fn execution_mode_axis_builds_and_converges() {
        for mode in [
            ExecutionMode::Auto,
            ExecutionMode::Batched,
            ExecutionMode::Fused,
            ExecutionMode::FusedParallel { threads: 2 },
        ] {
            let mut sim = Simulation::builder()
                .population(300)
                .seed(7)
                .execution_mode(mode)
                .build()
                .unwrap();
            let report = sim.run();
            assert!(report.converged(), "{mode:?}: {report:?}");
            assert_eq!(report.mode, mode);
        }
    }

    #[test]
    fn fused_mode_rejects_incompatible_configurations() {
        // Literal fidelity needs the snapshot-driven batched path.
        let err = Simulation::builder()
            .population(100)
            .fidelity(Fidelity::Agent)
            .execution_mode(ExecutionMode::Fused)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("fused"), "{err}");
        // Aggregate and async runners have one implementation each.
        for (fidelity, scheduler) in [
            (Some(Fidelity::Aggregate), Scheduler::Synchronous),
            (None, Scheduler::Asynchronous),
        ] {
            let mut b = Simulation::builder()
                .population(100)
                .scheduler(scheduler)
                .execution_mode(ExecutionMode::Fused);
            if let Some(f) = fidelity {
                b = b.fidelity(f);
            }
            let err = b.build().unwrap_err();
            assert!(err.to_string().contains("mode"), "{err}");
        }
    }

    #[test]
    fn fused_parallel_mode_is_validated_at_build_time() {
        // Literal fidelity needs the snapshot-driven batched path.
        let err = Simulation::builder()
            .population(100)
            .fidelity(Fidelity::Agent)
            .execution_mode(ExecutionMode::FusedParallel { threads: 4 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("fused"), "{err}");
        // Zero threads is meaningless.
        let err = Simulation::builder()
            .population(100)
            .execution_mode(ExecutionMode::FusedParallel { threads: 0 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("thread"), "{err}");
    }

    #[test]
    fn fused_parallel_facade_replays_per_seed_and_thread_count() {
        let run = || {
            Simulation::builder()
                .population(300)
                .seed(21)
                .execution_mode(ExecutionMode::FusedParallel { threads: 3 })
                .record_trajectory(true)
                .build()
                .unwrap()
                .run()
        };
        let a = run();
        let b = run();
        assert!(a.converged(), "{a:?}");
        assert_eq!(a, b, "fixed (seed, threads) facade runs must replay");
    }

    #[test]
    fn aggregate_rejects_non_fet_protocols() {
        let err = Simulation::builder()
            .population(1_000)
            .protocol_name("voter")
            .fidelity(Fidelity::Aggregate)
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("no exact aggregate chain"),
            "{err}"
        );
    }

    #[test]
    fn aggregate_rejects_fault_plans() {
        let err = Simulation::builder()
            .population(1_000)
            .fidelity(Fidelity::Aggregate)
            .fault(FaultPlan::with_noise(0.05).unwrap())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("per-agent state"), "{err}");
    }

    #[test]
    fn async_scheduler_reports_the_negative_finding() {
        let mut sim = Simulation::builder()
            .population(150)
            .scheduler(Scheduler::Asynchronous)
            .fidelity(Fidelity::Agent)
            .max_rounds(300)
            .seed(11)
            .build()
            .unwrap();
        let report = sim.run();
        assert!(
            !report.converged(),
            "async FET should not converge: {report:?}"
        );
        assert_eq!(report.scheduler, Scheduler::Asynchronous);
    }

    #[test]
    fn initial_ones_matches_conditions() {
        let spec = ProblemSpec::single_source(1_000, Opinion::One).unwrap();
        assert_eq!(initial_ones(&spec, InitialCondition::AllWrong, 0), 1);
        assert_eq!(initial_ones(&spec, InitialCondition::AllCorrect, 0), 1_000);
        let half = initial_ones(&spec, InitialCondition::Random, 1);
        assert!(
            (400..=600).contains(&half),
            "binomial(999, 0.5) draw: {half}"
        );
        let spec0 = ProblemSpec::single_source(1_000, Opinion::Zero).unwrap();
        assert_eq!(initial_ones(&spec0, InitialCondition::AllWrong, 0), 999);
        assert_eq!(initial_ones(&spec0, InitialCondition::AllCorrect, 0), 0);
    }

    #[test]
    fn storage_axis_is_trajectory_invisible() {
        // The representation equivalence contract at facade level: for a
        // fixed (seed, mode), typed and bit-plane storage produce the
        // same trajectory, report, and convergence round — the packed
        // planes never enter the stream.
        for mode in [
            ExecutionMode::Fused,
            ExecutionMode::FusedParallel { threads: 3 },
        ] {
            let run = |storage: Storage| {
                Simulation::builder()
                    .population(350)
                    .seed(13)
                    .execution_mode(mode)
                    .storage(storage)
                    .record_trajectory(true)
                    .build()
                    .unwrap()
                    .run()
            };
            let typed = run(Storage::Typed);
            let bits = run(Storage::BitPlane);
            assert!(typed.converged(), "{mode:?}: {typed:?}");
            assert_eq!(typed.storage, Storage::Typed);
            assert_eq!(bits.storage, Storage::BitPlane);
            assert_eq!(typed.trajectory, bits.trajectory, "{mode:?}");
            assert_eq!(typed.report, bits.report, "{mode:?}");
            // And the representation actually shrinks resident state:
            // ~16 bytes/agent typed FET vs 1 bit + 1 byte packed.
            assert!(
                bits.resident_bytes * 4 < typed.resident_bytes,
                "{mode:?}: {} !< {}",
                bits.resident_bytes,
                typed.resident_bytes
            );
        }
    }

    #[test]
    fn storage_auto_resolves_typed_below_the_threshold() {
        let sim = Simulation::builder().population(500).build().unwrap();
        assert_eq!(sim.storage(), Storage::Typed);
        // The aggregate and async runners always report typed storage.
        let sim = Simulation::builder()
            .population(1_000_000)
            .fidelity(Fidelity::Aggregate)
            .build()
            .unwrap();
        assert_eq!(sim.storage(), Storage::Typed);
    }

    #[test]
    fn bit_plane_storage_rejects_incompatible_configurations() {
        let base = || {
            Simulation::builder()
                .population(200)
                .storage(Storage::BitPlane)
        };
        for (what, builder) in [
            (
                "batched mode",
                base().execution_mode(ExecutionMode::Batched),
            ),
            ("literal fidelity", base().fidelity(Fidelity::Agent)),
            ("aggregate fidelity", base().fidelity(Fidelity::Aggregate)),
            (
                "async scheduler",
                base()
                    .scheduler(Scheduler::Asynchronous)
                    .fidelity(Fidelity::Agent),
            ),
            (
                "sleep faults",
                base().fault(FaultPlan::with_sleep(0.1).unwrap()),
            ),
        ] {
            let err = builder.build().unwrap_err();
            assert!(
                err.to_string().contains("storage") && err.to_string().contains("offending axis"),
                "{what}: {err}"
            );
        }
        // An unpackable protocol (voter keeps OpinionOnly planes — that
        // IS packable; majority's tie-breaking state is too; use a big
        // ell so FET's count no longer fits the auxiliary byte).
        let err = Simulation::builder()
            .population(200)
            .ell(300)
            .storage(Storage::BitPlane)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("packed-plane"), "{err}");
    }

    #[test]
    fn bit_plane_storage_through_a_topology() {
        use crate::neighborhood::tests::Ring;
        let run = |storage: Storage| {
            Simulation::builder()
                .topology(Ring::new(180))
                .seed(23)
                .max_rounds(400)
                .storage(storage)
                .record_trajectory(true)
                .build()
                .unwrap()
                .run()
        };
        let typed = run(Storage::Typed);
        let bits = run(Storage::BitPlane);
        assert_eq!(typed.trajectory, bits.trajectory);
        assert_eq!(typed.report, bits.report);
        assert_eq!(bits.storage, Storage::BitPlane);
    }

    #[test]
    fn simulation_state_persists_across_runs() {
        let mut sim = Simulation::builder()
            .population(300)
            .seed(9)
            .build()
            .unwrap();
        let first = sim.run();
        assert!(first.converged());
        // A second run starts from the converged configuration.
        let second = sim.run();
        assert_eq!(second.report.final_fraction_correct, 1.0);
    }
}
