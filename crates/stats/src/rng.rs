//! Deterministic seed derivation.
//!
//! Every stochastic component in the reproduction takes an explicit RNG, and
//! every experiment derives its RNGs from a [`SeedTree`]: a SplitMix64-based
//! hierarchical seed generator. Deriving child seeds by *label* (rather than
//! by sequential draw) guarantees that adding a new consumer or changing the
//! thread count never perturbs the random streams of existing consumers — the
//! property that makes batch runs replayable bit-for-bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator.
///
/// SplitMix64 is a tiny, statistically solid mixing function (Steele, Lea &
/// Flood 2014) used here purely for *seed derivation*, not for simulation
/// randomness (simulation uses [`SmallRng`] seeded from these values).
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalizer of SplitMix64: turns a counter state into a well-mixed output.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-round base of a counter-based stream split: mixes a run-level
/// `stream` seed with a `round` counter strided by the SplitMix64 golden
/// constant. Pure in its inputs — no sequential state, so any round's base
/// can be derived in any order.
///
/// This is the canonical derivation behind every work-sharded stream in
/// the workspace — `fet_core::shard::ShardPlan` keys the parallel fused
/// rounds with it, and `fet-sim`'s graph-fused index streams split from
/// it per shard range: round base from [`counter_stream_base`], then one
/// independent stream per partition index from [`counter_split`].
#[inline]
pub fn counter_stream_base(stream: u64, round: u64) -> u64 {
    splitmix64_mix(stream.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Splits one partition's seed out of a round base produced by
/// [`counter_stream_base`]: pure in `(base, index)`, so any worker may
/// derive any partition's seed in any order, any number of times.
#[inline]
pub fn counter_split(base: u64, index: u64) -> u64 {
    splitmix64_mix(base ^ splitmix64_mix(index.wrapping_add(1)))
}

/// Hierarchical deterministic seed source.
///
/// A `SeedTree` maps `(root seed, label path)` to 64-bit seeds. Children are
/// derived by label, so the derivation is order-independent:
///
/// ```
/// use fet_stats::rng::SeedTree;
///
/// let tree = SeedTree::new(42);
/// let a = tree.child("replicate").child_indexed("rep", 7).seed();
/// let b = tree.child("replicate").child_indexed("rep", 7).seed();
/// assert_eq!(a, b); // same path ⇒ same seed
/// let c = tree.child("replicate").child_indexed("rep", 8).seed();
/// assert_ne!(a, c); // different path ⇒ (almost surely) different seed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Creates a seed tree rooted at `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        SeedTree {
            state: splitmix64_mix(root_seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Derives a child tree from a string label.
    #[must_use]
    pub fn child(&self, label: &str) -> SeedTree {
        let mut h = self.state;
        for &b in label.as_bytes() {
            h = splitmix64_mix(h ^ u64::from(b).wrapping_mul(0x100_0000_01B3));
        }
        SeedTree {
            state: splitmix64_mix(h ^ 0x2545_F491_4F6C_DD1D),
        }
    }

    /// Derives a child tree from a label and an index (e.g. a replicate id).
    #[must_use]
    pub fn child_indexed(&self, label: &str, index: u64) -> SeedTree {
        let base = self.child(label);
        SeedTree {
            state: splitmix64_mix(base.state ^ splitmix64_mix(index)),
        }
    }

    /// The 64-bit seed at this node.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Builds a [`SmallRng`] seeded from this node.
    ///
    /// `SmallRng` is the fastest generator shipped by `rand`; all simulation
    /// randomness in the workspace flows through RNGs constructed here.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.state)
    }
}

/// A tiny stand-alone SplitMix64 stream, usable where a full `rand` generator
/// is unnecessary (e.g. quick hashing of experiment labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64Stream {
    state: u64,
}

impl SplitMix64Stream {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64Stream { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state);
        splitmix64_mix(self.state)
    }

    /// Returns the next value as a float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seed_tree_is_deterministic() {
        let t1 = SeedTree::new(123).child("a").child_indexed("b", 4);
        let t2 = SeedTree::new(123).child("a").child_indexed("b", 4);
        assert_eq!(t1.seed(), t2.seed());
    }

    #[test]
    fn seed_tree_children_differ() {
        let root = SeedTree::new(7);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(
                seen.insert(root.child_indexed("rep", i).seed()),
                "collision at {i}"
            );
        }
        assert!(seen.insert(root.child("other").seed()));
    }

    #[test]
    fn seed_tree_is_order_independent() {
        let root = SeedTree::new(99);
        // Deriving `x` before or after `y` must not matter.
        let x1 = root.child("x").seed();
        let _y = root.child("y").seed();
        let x2 = root.child("x").seed();
        assert_eq!(x1, x2);
    }

    #[test]
    fn rng_streams_reproducible() {
        let mut r1 = SeedTree::new(5).child("sim").rng();
        let mut r2 = SeedTree::new(5).child("sim").rng();
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_stream_uniformity_smoke() {
        // Crude uniformity check: mean of many uniforms near 1/2.
        let mut s = SplitMix64Stream::new(2024);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| s.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn splitmix_stream_outputs_in_unit_interval() {
        let mut s = SplitMix64Stream::new(1);
        for _ in 0..10_000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
