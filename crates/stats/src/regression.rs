//! Least-squares fitting on transformed axes.
//!
//! Theorem 1 claims convergence in `O(log^{5/2} n)` rounds. To check the
//! *shape* empirically we fit the model `T(n) = a · (ln n)^b` by ordinary
//! least squares on `ln T` vs `ln ln n`: the slope recovers the exponent `b`.
//! The same machinery fits straight power laws `T(n) = a · n^b` for the
//! baseline protocols.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²`.
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_stderr: f64,
    /// Number of points.
    pub n: usize,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least squares on raw `(x, y)` pairs.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when fewer than 2 points are given,
/// [`StatsError::InvalidDomain`] when the slices' lengths differ or all `x`
/// are identical, and [`StatsError::NotFinite`] on NaN/∞ input.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::InvalidDomain {
            detail: format!("x and y lengths differ: {} vs {}", xs.len(), ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::EmptyInput {
            what: "regression needs ≥ 2 points",
        });
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(StatsError::NotFinite {
            name: "regression input",
        });
    }
    let n = xs.len() as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / n;
    let mean_y: f64 = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidDomain {
            detail: "all x values identical; slope undefined".into(),
        });
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // Residual sum of squares.
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
    let dof = (xs.len() as f64 - 2.0).max(1.0);
    let slope_stderr = (ss_res / dof / sxx).sqrt();
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
        slope_stderr,
        n: xs.len(),
    })
}

/// A fitted model `y = a · (ln x)^b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerOfLogFit {
    /// Multiplicative constant `a`.
    pub a: f64,
    /// Exponent `b` on `ln x`.
    pub b: f64,
    /// `R²` of the underlying linear fit in transformed coordinates.
    pub r_squared: f64,
    /// Standard error of `b`.
    pub b_stderr: f64,
}

impl PowerOfLogFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.a * x.ln().powf(self.b)
    }
}

/// Fits `y = a · (ln x)^b` by OLS on `ln y` against `ln ln x`.
///
/// This is the Theorem 1 shape check: feeding measured convergence times
/// `T(n)` recovers the exponent `b`, which the paper bounds by `5/2`.
///
/// # Errors
///
/// Propagates [`linear_fit`] errors; additionally rejects nonpositive inputs
/// (logs would be undefined) and `x ≤ e` (where `ln ln x ≤ 0` blows up the
/// transform) via [`StatsError::InvalidDomain`].
pub fn fit_power_of_log(xs: &[f64], ys: &[f64]) -> Result<PowerOfLogFit, StatsError> {
    if xs.iter().any(|&x| x <= std::f64::consts::E) || ys.iter().any(|&y| y <= 0.0) {
        return Err(StatsError::InvalidDomain {
            detail: "fit_power_of_log requires x > e and y > 0".into(),
        });
    }
    let tx: Vec<f64> = xs.iter().map(|&x| x.ln().ln()).collect();
    let ty: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let fit = linear_fit(&tx, &ty)?;
    Ok(PowerOfLogFit {
        a: fit.intercept.exp(),
        b: fit.slope,
        r_squared: fit.r_squared,
        b_stderr: fit.slope_stderr,
    })
}

/// A fitted model `y = a · x^b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Multiplicative constant `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// `R²` of the underlying linear fit in log–log coordinates.
    pub r_squared: f64,
}

/// Fits `y = a · x^b` by OLS on `ln y` against `ln x`.
///
/// Used to verify that measured times are *not* polynomial in `n`: a
/// poly-log time series fitted with a power law yields a tiny exponent that
/// shrinks as `n` grows.
///
/// # Errors
///
/// Propagates [`linear_fit`] errors; rejects nonpositive inputs.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Result<PowerLawFit, StatsError> {
    if xs.iter().any(|&x| x <= 0.0) || ys.iter().any(|&y| y <= 0.0) {
        return Err(StatsError::InvalidDomain {
            detail: "fit_power_law requires positive x and y".into(),
        });
    }
    let tx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ty: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let fit = linear_fit(&tx, &ty)?;
    Ok(PowerLawFit {
        a: fit.intercept.exp(),
        b: fit.slope,
        r_squared: fit.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_stderr < 1e-10);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(linear_fit(&[1.0], &[2.0]).is_err());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_err());
        assert!(linear_fit(&[1.0, f64::NAN], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn power_of_log_recovers_exponent() {
        // y = 2 (ln x)^{2.5}, exactly the Theorem 1 shape.
        let xs: Vec<f64> = (4..16).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x.ln().powf(2.5)).collect();
        let fit = fit_power_of_log(&xs, &ys).unwrap();
        assert!((fit.b - 2.5).abs() < 1e-9, "b = {}", fit.b);
        assert!((fit.a - 2.0).abs() < 1e-9, "a = {}", fit.a);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn power_of_log_prediction_round_trip() {
        let xs: Vec<f64> = (4..14).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 * x.ln().powf(1.5)).collect();
        let fit = fit_power_of_log(&xs, &ys).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((fit.predict(x) - y).abs() < 1e-6 * y);
        }
    }

    #[test]
    fn power_of_log_rejects_small_x() {
        assert!(fit_power_of_log(&[2.0, 3.0], &[1.0, 2.0]).is_err());
        assert!(fit_power_of_log(&[4.0, 8.0], &[0.0, 2.0]).is_err());
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (1..12).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x.powf(1.7)).collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        assert!((fit.b - 1.7).abs() < 1e-9);
        assert!((fit.a - 0.5).abs() < 1e-9);
    }

    #[test]
    fn polylog_data_under_power_law_has_shrinking_exponent() {
        // Fitting a·x^b to polylog data over growing windows must yield
        // decreasing b — the experiment E1 diagnostic.
        let window = |lo: u32, hi: u32| -> f64 {
            let xs: Vec<f64> = (lo..hi).map(|k| (1u64 << k) as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| x.ln().powf(2.5)).collect();
            fit_power_law(&xs, &ys).unwrap().b
        };
        let early = window(4, 10);
        let late = window(14, 20);
        assert!(
            late < early,
            "power-law exponent should shrink: {early} -> {late}"
        );
    }
}
