//! Error type for the statistics substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by `fet-stats` routines.
///
/// All statistical routines in this crate validate their numeric arguments
/// (probabilities in `[0, 1]`, nonempty samples, positive counts) and report
/// violations through this type rather than panicking, per the dependability
/// guidelines (C-VALIDATE).
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability argument fell outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A count or size argument was zero where a positive value is required.
    EmptyInput {
        /// Description of what was empty.
        what: &'static str,
    },
    /// A numeric argument was not finite (NaN or ±∞).
    NotFinite {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// A domain constraint between arguments was violated (e.g. `lo > hi`).
    InvalidDomain {
        /// Human-readable description of the violated constraint.
        detail: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must lie in [0, 1], got {value}")
            }
            StatsError::EmptyInput { what } => write!(f, "empty input: {what}"),
            StatsError::NotFinite { name } => write!(f, "argument `{name}` is not finite"),
            StatsError::InvalidDomain { detail } => write!(f, "invalid domain: {detail}"),
        }
    }
}

impl Error for StatsError {}

/// Validates that `value` is a probability in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] if `value` is outside `[0, 1]`
/// and [`StatsError::NotFinite`] if it is NaN or infinite.
pub fn check_probability(name: &'static str, value: f64) -> Result<(), StatsError> {
    if !value.is_finite() {
        return Err(StatsError::NotFinite { name });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(StatsError::InvalidProbability { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_probability_accepts_unit_interval() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 0.5).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
    }

    #[test]
    fn check_probability_rejects_out_of_range() {
        assert_eq!(
            check_probability("p", -0.1),
            Err(StatsError::InvalidProbability {
                name: "p",
                value: -0.1
            })
        );
        assert_eq!(
            check_probability("p", 1.1),
            Err(StatsError::InvalidProbability {
                name: "p",
                value: 1.1
            })
        );
    }

    #[test]
    fn check_probability_rejects_nan_and_inf() {
        assert_eq!(
            check_probability("p", f64::NAN),
            Err(StatsError::NotFinite { name: "p" })
        );
        assert_eq!(
            check_probability("p", f64::INFINITY),
            Err(StatsError::NotFinite { name: "p" })
        );
    }

    #[test]
    fn errors_display_is_lowercase_and_informative() {
        let e = StatsError::EmptyInput { what: "sample" };
        let s = e.to_string();
        assert!(s.contains("sample"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
