//! ISA path selection and the vectorized sampling kernels behind it.
//!
//! Graph rounds are sampler-bound: the per-round cost of the PULL model is
//! dominated by uniform index draws (Lemire multiply-shift) and alias-table
//! probes, not by protocol math. This module owns the workspace's answer —
//! three interchangeable kernel tiers, selected once per process:
//!
//! * [`IsaPath::Scalar`] — the reference loops, structured exactly like the
//!   original per-draw code. Every other tier is defined as "bit-identical
//!   to this".
//! * [`IsaPath::Swar`] — branchless integer reformulations on plain `u64`
//!   arithmetic, unrolled so the compiler can autovectorize at baseline
//!   x86-64 (SSE2) width. This is also the portable fallback for every
//!   non-x86_64 target.
//! * [`IsaPath::Avx2`] — explicit stable `core::arch::x86_64` intrinsics
//!   (8 Lemire lanes or 4 alias draws per iteration), used only when the
//!   host reports AVX2 at runtime (`is_x86_feature_detected!`).
//!
//! # The stream contract
//!
//! **The chosen path never enters the random stream.** Every kernel consumes
//! the same RNG words in the same order and produces bit-identical outputs;
//! the tiers differ only in how many draws they decide per iteration.
//! Trajectories are therefore bit-identical across forced paths per
//! `(seed, mode, storage, shard count)` — docs/DETERMINISM.md carries the
//! contract clause, `tests/simd_stream_identity.rs` the matrix that pins it,
//! and CI byte-diffs trajectory dumps under `FET_SIMD=scalar` vs
//! `FET_SIMD=avx2`.
//!
//! The alias probe equivalence is exact, not approximate: the scalar probe
//! accepts iff `(y >> 11) · 2⁻⁵³ < prob[i]` with both sides f64, and
//! multiplying by `2⁵³` (a power of two — exact scaling) turns that into the
//! integer compare `(y >> 11) < ceil(prob[i] · 2⁵³)`, which is what the SWAR
//! and AVX2 tiers evaluate. Both sides are below `2⁵⁴`, so the AVX2 *signed*
//! 64-bit compare is safe.
//!
//! # Selection
//!
//! [`active_path`] resolves once (atomically cached): a programmatic
//! [`force_path`] override beats the `FET_SIMD=scalar|swar|avx2` environment
//! variable, which beats runtime detection (AVX2 when available, SWAR
//! otherwise). Forcing `avx2` on a host without AVX2 panics loudly rather
//! than silently falling back — CI guards the forced leg with a cpuinfo
//! check. Building with `--cfg fet_no_simd` compiles the intrinsics out
//! entirely (the non-x86_64 story, checkable from an x86_64 host).

use std::sync::atomic::{AtomicU8, Ordering};

/// One kernel tier. See the module docs for what each path means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaPath {
    /// Reference per-draw loops (the original code paths).
    Scalar,
    /// Branchless integer kernels on plain `u64` words (portable).
    Swar,
    /// Explicit AVX2 intrinsics (x86_64 with runtime AVX2 only).
    Avx2,
}

impl IsaPath {
    /// The path's `FET_SIMD` spelling.
    pub fn name(self) -> &'static str {
        match self {
            IsaPath::Scalar => "scalar",
            IsaPath::Swar => "swar",
            IsaPath::Avx2 => "avx2",
        }
    }

    /// Parses a `FET_SIMD` spelling.
    pub fn from_name(name: &str) -> Option<IsaPath> {
        match name {
            "scalar" => Some(IsaPath::Scalar),
            "swar" => Some(IsaPath::Swar),
            "avx2" => Some(IsaPath::Avx2),
            _ => None,
        }
    }

    /// Every path this build can *name* (not necessarily run — see
    /// [`avx2_available`]). Useful for test/bench matrices.
    pub fn all() -> [IsaPath; 3] {
        [IsaPath::Scalar, IsaPath::Swar, IsaPath::Avx2]
    }

    /// Every path this host can actually execute.
    pub fn available() -> Vec<IsaPath> {
        let mut paths = vec![IsaPath::Scalar, IsaPath::Swar];
        if avx2_available() {
            paths.push(IsaPath::Avx2);
        }
        paths
    }
}

/// `true` iff the running host can execute the AVX2 kernels (x86_64,
/// intrinsics compiled in, CPU reports AVX2).
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(fet_no_simd))))]
    {
        false
    }
}

/// Cached selection: 0 = unresolved, else `IsaPath` discriminant + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(path: IsaPath) -> u8 {
    match path {
        IsaPath::Scalar => 1,
        IsaPath::Swar => 2,
        IsaPath::Avx2 => 3,
    }
}

fn resolve() -> IsaPath {
    if let Ok(name) = std::env::var("FET_SIMD") {
        let path = IsaPath::from_name(&name)
            .unwrap_or_else(|| panic!("FET_SIMD must be one of scalar|swar|avx2, got {name:?}"));
        assert!(
            path != IsaPath::Avx2 || avx2_available(),
            "FET_SIMD=avx2 forced, but this build/host cannot execute AVX2 \
             (non-x86_64, fet_no_simd, or the CPU lacks the feature)"
        );
        return path;
    }
    if avx2_available() {
        IsaPath::Avx2
    } else {
        IsaPath::Swar
    }
}

/// The process's selected kernel tier. Resolved once and cached:
/// [`force_path`] override > `FET_SIMD` environment variable > runtime
/// detection (AVX2 when available, SWAR otherwise).
pub fn active_path() -> IsaPath {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => IsaPath::Scalar,
        2 => IsaPath::Swar,
        3 => IsaPath::Avx2,
        _ => {
            let path = resolve();
            ACTIVE.store(encode(path), Ordering::Relaxed);
            path
        }
    }
}

/// Test/bench hook: pins [`active_path`] to `path` (`None` clears the pin,
/// re-resolving on next use). Safe to flip at any time precisely *because*
/// of the stream contract — every path computes identical outputs, so a
/// concurrent caller observing either side of the flip sees the same
/// numbers.
pub fn force_path(path: Option<IsaPath>) {
    ACTIVE.store(path.map_or(0, encode), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Lemire index kernels (graph neighbor draws)
// ---------------------------------------------------------------------------
//
// The graph observation loop maps each 32-bit RNG lane into [0, d) by
// Lemire's multiply-with-rejection: `wide = lane · d`; the candidate index
// is `wide >> 32` and the lane is REJECTED iff `wide as u32 < 2³² mod d`
// (never, when d is a power of two). Each `next_u64` word yields two lanes,
// low half first — so 8 draws consume exactly four words when nothing is
// rejected, which is what lets the vector tiers speculate on whole words
// without touching the stream: on any rejection the caller replays the same
// four words through the scalar loop.

/// Reference kernel: 8 Lemire lanes from four consecutive RNG words
/// (two 32-bit lanes per word, low lane first). Writes the candidate
/// indices to `out` and returns the rejection mask (bit `j` set iff lane
/// `j` must be rejected and redrawn).
pub fn lemire8_scalar(words: &[u64; 4], d: u32, threshold: u32, out: &mut [u32; 8]) -> u8 {
    let mut reject = 0u8;
    for (j, slot) in out.iter_mut().enumerate() {
        let lane = (words[j / 2] >> ((j % 2) * 32)) as u32;
        let wide = u64::from(lane) * u64::from(d);
        *slot = (wide >> 32) as u32;
        reject |= u8::from((wide as u32) < threshold) << j;
    }
    reject
}

/// SWAR kernel: the same 8 lanes, unrolled and branch-free so the compiler
/// autovectorizes the multiply/compare at SSE2 width.
pub fn lemire8_swar(words: &[u64; 4], d: u32, threshold: u32, out: &mut [u32; 8]) -> u8 {
    let d = u64::from(d);
    let mut wides = [0u64; 8];
    for (i, &w) in words.iter().enumerate() {
        wides[2 * i] = u64::from(w as u32) * d;
        wides[2 * i + 1] = (w >> 32) * d;
    }
    for (slot, wide) in out.iter_mut().zip(wides) {
        *slot = (wide >> 32) as u32;
    }
    let mut reject = 0u8;
    for (j, wide) in wides.into_iter().enumerate() {
        reject |= u8::from((wide as u32) < threshold) << j;
    }
    reject
}

/// AVX2 kernel: all 8 lanes in one register (loading the four `u64` words
/// as eight little-endian `u32` lanes lands them exactly in draw order).
/// Falls back to [`lemire8_swar`] when AVX2 can't run.
pub fn lemire8_avx2(words: &[u64; 4], d: u32, threshold: u32, out: &mut [u32; 8]) -> u8 {
    #[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
    {
        if avx2_available() {
            // SAFETY: AVX2 availability checked at runtime just above.
            return unsafe { lemire8_avx2_unchecked(words, d, threshold, out) };
        }
    }
    lemire8_swar(words, d, threshold, out)
}

/// The raw AVX2 Lemire kernel, for callers that are themselves
/// `#[target_feature(enable = "avx2")]` — unlike the checked
/// [`lemire8_avx2`] wrapper, this one can inline into such callers, which
/// is what makes a per-agent AVX2 loop (one feature-boundary call per
/// agent instead of one per 8 draws) worth having.
///
/// # Safety
///
/// The CPU must support AVX2 (check [`avx2_available`]).
#[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn lemire8_avx2_unchecked(
    words: &[u64; 4],
    d: u32,
    threshold: u32,
    out: &mut [u32; 8],
) -> u8 {
    use core::arch::x86_64::*;
    let v = _mm256_loadu_si256(words.as_ptr() as *const __m256i);
    let dv = _mm256_set1_epi64x(i64::from(d)); // mul_epu32 reads only the low 32 bits
                                               // 32×32→64 products of the even (low-half) and odd (high-half) lanes.
    let even = _mm256_mul_epu32(v, dv);
    let odd = _mm256_mul_epu32(_mm256_srli_epi64(v, 32), dv);
    // Candidate indices: wide >> 32, re-interleaved back into draw order.
    let idx = _mm256_blend_epi32::<0b10101010>(
        _mm256_srli_epi64(even, 32),
        odd, // the odd products' high halves already sit in the odd u32 lanes
    );
    _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, idx);
    if threshold == 0 {
        return 0; // power-of-two degree: rejection is impossible
    }
    // Rejection mask: low 32 bits of each product, compared unsigned
    // against the threshold via the sign-flip trick.
    let lo = _mm256_blend_epi32::<0b10101010>(even, _mm256_slli_epi64(odd, 32));
    let sign = _mm256_set1_epi32(i32::MIN);
    let rej = _mm256_cmpgt_epi32(
        _mm256_xor_si256(_mm256_set1_epi32(threshold as i32), sign),
        _mm256_xor_si256(lo, sign),
    );
    _mm256_movemask_ps(_mm256_castsi256_ps(rej)) as u8
}

/// Dispatches 8 Lemire lanes to `path`'s kernel. All paths are
/// bit-identical; see the module docs.
#[inline]
pub fn lemire8(path: IsaPath, words: &[u64; 4], d: u32, threshold: u32, out: &mut [u32; 8]) -> u8 {
    match path {
        IsaPath::Scalar => lemire8_scalar(words, d, threshold, out),
        IsaPath::Swar => lemire8_swar(words, d, threshold, out),
        IsaPath::Avx2 => lemire8_avx2(words, d, threshold, out),
    }
}

// ---------------------------------------------------------------------------
// Alias-block kernels (mean-field threshold words)
// ---------------------------------------------------------------------------
//
// `AliasTable::try_sample_block` draws one `fill_bytes` block of 16 bytes
// per draw: word `x` → slot via the power-of-two Lemire shift, word `y` →
// the acceptance probe. These kernels consume that block; the integer
// probe `(y >> 11) < thresh53[i]` is exactly the scalar f64 compare (see
// the module docs), so all tiers select the same categories.

/// SWAR alias-block kernel: branch-free integer select per 16-byte draw.
/// `shift` is `64 − log2(table len)` (a shift of 64 — the one-category
/// table — indexes slot 0); `thresh53[i] = ceil(prob[i] · 2⁵³)` and
/// `alias64` is the alias vector widened to `u64`.
pub fn alias_block_swar(
    bytes: &[u8],
    shift: u32,
    thresh53: &[u64],
    alias64: &[u64],
    out: &mut [usize],
) {
    for (slot, pair) in out.iter_mut().zip(bytes.chunks_exact(16)) {
        let x = u64::from_le_bytes(pair[..8].try_into().expect("8-byte word"));
        let y = u64::from_le_bytes(pair[8..].try_into().expect("8-byte word"));
        let i = x.checked_shr(shift).unwrap_or(0) as usize;
        let accept = (y >> 11) < thresh53[i];
        *slot = if accept { i } else { alias64[i] as usize };
    }
}

/// AVX2 alias-block kernel: 4 draws (64 bytes) per iteration — unpack the
/// x/y word pairs, shift-index, gather the integer thresholds and aliases,
/// compare, blend. Falls back to [`alias_block_swar`] when AVX2 can't run.
pub fn alias_block_avx2(
    bytes: &[u8],
    shift: u32,
    thresh53: &[u64],
    alias64: &[u64],
    out: &mut [usize],
) {
    #[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
    {
        if avx2_available() {
            // SAFETY: AVX2 availability checked at runtime just above.
            unsafe { alias_block_avx2_inner(bytes, shift, thresh53, alias64, out) };
            return;
        }
    }
    alias_block_swar(bytes, shift, thresh53, alias64, out);
}

#[cfg(all(target_arch = "x86_64", not(fet_no_simd)))]
#[target_feature(enable = "avx2")]
unsafe fn alias_block_avx2_inner(
    bytes: &[u8],
    shift: u32,
    thresh53: &[u64],
    alias64: &[u64],
    out: &mut [usize],
) {
    use core::arch::x86_64::*;
    let mut chunks = bytes.chunks_exact(64);
    let mut outs = out.chunks_exact_mut(4);
    let shift_count = _mm_cvtsi32_si128(shift as i32); // counts ≥ 64 shift to zero
    for (chunk, slots) in (&mut chunks).zip(&mut outs) {
        let a = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i); // x0 y0 x1 y1
        let b = _mm256_loadu_si256(chunk.as_ptr().add(32) as *const __m256i); // x2 y2 x3 y3
                                                                              // 128-bit-lane unpack scrambles draw order to (0, 2, 1, 3);
                                                                              // the store below unscrambles.
        let xs = _mm256_unpacklo_epi64(a, b); // x0 x2 x1 x3
        let ys = _mm256_unpackhi_epi64(a, b); // y0 y2 y1 y3
        let idx = _mm256_srl_epi64(xs, shift_count);
        let y53 = _mm256_srli_epi64(ys, 11);
        // Indices are < table len by construction, so the gathers stay in
        // bounds; both compare operands are < 2⁵⁴, so signed compare is
        // exact.
        let thr = _mm256_i64gather_epi64::<8>(thresh53.as_ptr() as *const i64, idx);
        let ali = _mm256_i64gather_epi64::<8>(alias64.as_ptr() as *const i64, idx);
        let accept = _mm256_cmpgt_epi64(thr, y53);
        let picked = _mm256_blendv_epi8(ali, idx, accept);
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, picked);
        slots[0] = lanes[0] as usize;
        slots[1] = lanes[2] as usize;
        slots[2] = lanes[1] as usize;
        slots[3] = lanes[3] as usize;
    }
    alias_block_swar(
        chunks.remainder(),
        shift,
        thresh53,
        alias64,
        outs.into_remainder(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The scalar reference, one lane at a time, straight from the graph
    /// loop's definition.
    fn lemire_lane(lane: u32, d: u32, threshold: u32) -> (u32, bool) {
        let wide = u64::from(lane) * u64::from(d);
        ((wide >> 32) as u32, (wide as u32) < threshold)
    }

    fn words_from_lanes(lanes: [u32; 8]) -> [u64; 4] {
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from(lanes[2 * i]) | (u64::from(lanes[2 * i + 1]) << 32);
        }
        words
    }

    /// Degrees at the 2³² boundary behave per the scalar definition on
    /// every path: d = 3 (threshold 1 — the only rejected lane is 0),
    /// and d = 2^k ± 1 where the threshold math is near-degenerate.
    #[test]
    fn lemire_lane_rejection_at_boundaries() {
        let interesting = [
            0u32,
            1,
            2,
            3,
            u32::MAX,
            u32::MAX - 1,
            1 << 31,
            (1 << 31) - 1,
            0x5555_5555,
            0xAAAA_AAAA,
        ];
        let degrees = [
            3u32,
            7,
            8,
            9,
            15,
            16,
            17,
            (1 << 30) - 1,
            1 << 30,
            (1 << 30) + 1,
            (1 << 31) - 1,
            1 << 31,
            (1 << 31) + 1,
            u32::MAX,
        ];
        for d in degrees {
            let threshold = d.wrapping_neg() % d;
            // d = 3: 2³² mod 3 = 1, so exactly the all-zero lane rejects.
            if d == 3 {
                assert_eq!(threshold, 1);
                assert!(lemire_lane(0, d, threshold).1);
                assert!(!lemire_lane(1, d, threshold).1);
            }
            // Powers of two never reject.
            if d.is_power_of_two() {
                assert_eq!(threshold, 0);
            }
            let lanes = interesting[..8].try_into().unwrap();
            let words = words_from_lanes(lanes);
            let mut expect = [0u32; 8];
            let mut expect_mask = 0u8;
            for (j, &lane) in lanes.iter().enumerate() {
                let (idx, rej) = lemire_lane(lane, d, threshold);
                expect[j] = idx;
                expect_mask |= u8::from(rej) << j;
                assert!(idx < d, "candidate index out of range for d={d}");
            }
            for path in IsaPath::available() {
                let mut got = [0u32; 8];
                let mask = lemire8(path, &words, d, threshold, &mut got);
                assert_eq!(got, expect, "{path:?} indices diverged for d={d}");
                assert_eq!(mask, expect_mask, "{path:?} mask diverged for d={d}");
            }
        }
    }

    /// Exhaustive-ish sweep: random words through every available path
    /// must match the scalar kernel exactly, mask and indices both.
    #[test]
    fn lemire8_paths_agree_on_random_words() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x151A);
        for _ in 0..500 {
            let d = (rng.next_u64() as u32).max(2);
            let threshold = d.wrapping_neg() % d;
            let words = [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ];
            let mut expect = [0u32; 8];
            let expect_mask = lemire8_scalar(&words, d, threshold, &mut expect);
            for path in IsaPath::available() {
                let mut got = [0u32; 8];
                let mask = lemire8(path, &words, d, threshold, &mut got);
                assert_eq!((mask, got), (expect_mask, expect), "{path:?} d={d}");
            }
        }
    }

    #[test]
    fn path_names_round_trip() {
        for path in IsaPath::all() {
            assert_eq!(IsaPath::from_name(path.name()), Some(path));
        }
        assert_eq!(IsaPath::from_name("sse9"), None);
    }

    #[test]
    fn force_path_pins_and_clears() {
        force_path(Some(IsaPath::Scalar));
        assert_eq!(active_path(), IsaPath::Scalar);
        force_path(Some(IsaPath::Swar));
        assert_eq!(active_path(), IsaPath::Swar);
        force_path(None);
        let resolved = active_path();
        assert!(IsaPath::available().contains(&resolved));
    }
}
