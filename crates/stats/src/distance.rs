//! Distances between distributions and two-sample tests.
//!
//! The fidelity tower (literal sampling ≡ binomial counts ≡ aggregate
//! chain) is validated *distributionally*: this module provides the
//! Kolmogorov–Smirnov two-sample test, total-variation and KL divergences
//! on discrete PMFs, and a chi-square-style goodness check used by the
//! equivalence tests and the E10/E14 experiments.

use crate::error::StatsError;

/// Two-sample Kolmogorov–Smirnov statistic between empirical samples.
///
/// Returns the KS statistic `D = sup_x |F₁(x) − F₂(x)|`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either sample is empty and
/// [`StatsError::NotFinite`] on NaN values.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput { what: "KS sample" });
    }
    if a.iter().chain(b).any(|v| v.is_nan()) {
        return Err(StatsError::NotFinite { name: "KS sample" });
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Ok(d)
}

/// Critical value of the two-sample KS test at significance `alpha`:
/// `c(α)·√((n+m)/(n·m))` with `c(α) = √(−ln(α/2)/2)`.
///
/// # Panics
///
/// Panics when `alpha ∉ (0, 1)` or a sample size is zero.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / (n as f64 * m as f64)).sqrt()
}

/// `true` when the two samples pass the KS equality test at level `alpha`.
///
/// # Errors
///
/// Propagates [`ks_two_sample`] errors.
pub fn ks_same_distribution(a: &[f64], b: &[f64], alpha: f64) -> Result<bool, StatsError> {
    let d = ks_two_sample(a, b)?;
    Ok(d <= ks_critical_value(a.len(), b.len(), alpha))
}

/// Total-variation distance `½·Σ|p_i − q_i|` between two PMFs over the
/// same support.
///
/// # Errors
///
/// Returns [`StatsError::InvalidDomain`] when lengths differ.
pub fn total_variation(p: &[f64], q: &[f64]) -> Result<f64, StatsError> {
    if p.len() != q.len() {
        return Err(StatsError::InvalidDomain {
            detail: format!("PMF lengths differ: {} vs {}", p.len(), q.len()),
        });
    }
    Ok(0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>())
}

/// Kullback–Leibler divergence `Σ p_i·ln(p_i/q_i)` (nats). Terms with
/// `p_i = 0` contribute zero; a positive-`p` term against `q_i = 0`
/// yields `+∞`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidDomain`] when lengths differ.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64, StatsError> {
    if p.len() != q.len() {
        return Err(StatsError::InvalidDomain {
            detail: format!("PMF lengths differ: {} vs {}", p.len(), q.len()),
        });
    }
    let mut acc = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        if a > 0.0 {
            if b <= 0.0 {
                return Ok(f64::INFINITY);
            }
            acc += a * (a / b).ln();
        }
    }
    Ok(acc)
}

/// Pearson chi-square statistic of observed counts against expected
/// probabilities; categories with `expected_prob == 0` must have zero
/// observations (else `+∞`).
///
/// # Errors
///
/// Returns [`StatsError::InvalidDomain`] when lengths differ or
/// [`StatsError::EmptyInput`] when there are no observations.
pub fn chi_square_statistic(observed: &[u64], expected_prob: &[f64]) -> Result<f64, StatsError> {
    if observed.len() != expected_prob.len() {
        return Err(StatsError::InvalidDomain {
            detail: format!(
                "lengths differ: {} vs {}",
                observed.len(),
                expected_prob.len()
            ),
        });
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return Err(StatsError::EmptyInput {
            what: "chi-square observations",
        });
    }
    let mut acc = 0.0;
    for (&o, &p) in observed.iter().zip(expected_prob) {
        let e = p * total as f64;
        if e <= 0.0 {
            if o > 0 {
                return Ok(f64::INFINITY);
            }
            continue;
        }
        let d = o as f64 - e;
        acc += d * d / e;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;
    use rand::Rng;

    #[test]
    fn ks_identical_samples_are_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_two_sample(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_are_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_two_sample(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_accepts_same_distribution_and_rejects_shifted() {
        let mut rng = SeedTree::new(1).child("ks").rng();
        let n = 4000;
        let a: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 0.15).collect();
        assert!(
            ks_same_distribution(&a, &b, 0.001).unwrap(),
            "same law rejected"
        );
        assert!(
            !ks_same_distribution(&a, &c, 0.001).unwrap(),
            "shifted law accepted"
        );
    }

    #[test]
    fn ks_input_validation() {
        assert!(ks_two_sample(&[], &[1.0]).is_err());
        assert!(ks_two_sample(&[1.0], &[f64::NAN]).is_err());
    }

    #[test]
    fn tv_properties() {
        let p = [0.5, 0.5];
        let q = [0.0, 1.0];
        assert!((total_variation(&p, &q).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p).unwrap(), 0.0);
        assert!(total_variation(&p, &[1.0]).is_err());
    }

    #[test]
    fn kl_properties() {
        let p = [0.5, 0.5];
        assert_eq!(kl_divergence(&p, &p).unwrap(), 0.0);
        assert_eq!(kl_divergence(&p, &[1.0, 0.0]).unwrap(), f64::INFINITY);
        let q = [0.25, 0.75];
        assert!(kl_divergence(&p, &q).unwrap() > 0.0);
    }

    #[test]
    fn chi_square_zero_for_perfect_fit() {
        let observed = [25u64, 25, 50];
        let probs = [0.25, 0.25, 0.5];
        assert!((chi_square_statistic(&observed, &probs).unwrap()).abs() < 1e-12);
        assert_eq!(
            chi_square_statistic(&[1, 0], &[0.0, 1.0]).unwrap(),
            f64::INFINITY
        );
    }
}
