//! Closed forms of the concentration and coin-competition bounds the paper
//! uses (appendix A): multiplicative Chernoff (Theorem 2), Hoeffding
//! (Theorem 3), and the coin-competition bounds of Lemmas 12, 13 and 15.
//!
//! These functions compute the *bound side* of each inequality; the
//! `fet-analysis` crate pits them against exact probabilities from
//! [`crate::compare`] to validate the lemmas numerically (experiment E9).

use crate::normal::{normal_cdf, BERRY_ESSEEN_C};

/// Multiplicative Chernoff upper-tail bound (paper Theorem 2):
/// `P(X ≥ (1+δ)μ) ≤ exp(−min(δ, δ²)·μ/3)` for `δ > 0`.
///
/// # Panics
///
/// Panics in debug builds when `delta ≤ 0` or `mu < 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    debug_assert!(delta > 0.0, "chernoff_upper requires δ > 0, got {delta}");
    debug_assert!(mu >= 0.0, "chernoff_upper requires μ ≥ 0, got {mu}");
    (-(delta.min(delta * delta)) * mu / 3.0).exp()
}

/// Multiplicative Chernoff lower-tail bound (paper Theorem 2):
/// `P(X ≤ (1−ε)μ) ≤ exp(−ε²·μ/2)` for `0 < ε < 1`.
///
/// # Panics
///
/// Panics in debug builds when `eps ∉ (0, 1)` or `mu < 0`.
pub fn chernoff_lower(mu: f64, eps: f64) -> f64 {
    debug_assert!(
        eps > 0.0 && eps < 1.0,
        "chernoff_lower requires ε ∈ (0,1), got {eps}"
    );
    debug_assert!(mu >= 0.0, "chernoff_lower requires μ ≥ 0, got {mu}");
    (-eps * eps * mu / 2.0).exp()
}

/// Hoeffding bound (paper Theorem 3) for a sum of `n` independent variables
/// each confined to an interval of width `range`: `P(X − μ ≥ δ) ≤
/// exp(−2δ² / (n·range²))`.
///
/// # Panics
///
/// Panics in debug builds when `n == 0`, `range ≤ 0`, or `delta < 0`.
pub fn hoeffding(n: u64, range: f64, delta: f64) -> f64 {
    debug_assert!(n > 0, "hoeffding requires n > 0");
    debug_assert!(
        range > 0.0,
        "hoeffding requires positive range, got {range}"
    );
    debug_assert!(delta >= 0.0, "hoeffding requires δ ≥ 0, got {delta}");
    (-2.0 * delta * delta / (n as f64 * range * range)).exp()
}

/// Lemma 13's lower bound on the probability that the favored coin wins:
/// for `p < q`, `P(B_k(p) < B_k(q)) ≥ 1 − exp(−k(q−p)²/2)`.
pub fn lemma13_favorite_wins_lower(k: u64, p: f64, q: f64) -> f64 {
    debug_assert!(p < q, "lemma13 requires p < q");
    1.0 - (-(k as f64) * (q - p) * (q - p) / 2.0).exp()
}

/// Lemma 15's lower bound on the probability that the *underdog* coin wins:
/// for `p < q`,
/// `P(B_k(p) > B_k(q)) ≥ 1 − Φ(√k(q−p)/σ) − C/(σ√k)` with
/// `σ = √(p(1−p) + q(1−q))` and the Berry–Esseen constant `C = 0.4748`.
///
/// The bound can be vacuous (negative) for large `k(q−p)²`; callers should
/// clamp at zero when comparing against exact probabilities.
pub fn lemma15_underdog_wins_lower(k: u64, p: f64, q: f64) -> f64 {
    debug_assert!(p < q, "lemma15 requires p < q");
    let sigma = (p * (1.0 - p) + q * (1.0 - q)).sqrt();
    if sigma == 0.0 {
        return 0.0;
    }
    let kf = k as f64;
    1.0 - normal_cdf(kf.sqrt() * (q - p) / sigma) - BERRY_ESSEEN_C / (sigma * kf.sqrt())
}

/// Lemma 12's upper bound on the probability that the favored coin wins when
/// the gap is small (`q − p ≤ 1/√k`, `p, q ∈ [1/3, 2/3]`):
/// `P(B_k(p) < B_k(q)) < 1/2 + α(q−p)√k − P(B_k(p) = B_k(q))/2`.
///
/// `alpha` is the constant from the lemma; the proof's explicit construction
/// yields `α = 9` (Claim 9: any upper bound on `1/(q(1−p))` works, and
/// `q(1−p) ≥ 1/9` on `[1/3, 2/3]²`), doubled to `2α·(q−p)√k` then halved
/// back in the final rearrangement — we expose `alpha` as a parameter so the
/// validation experiment can probe how tight the constant really is.
pub fn lemma12_favorite_wins_upper(k: u64, p: f64, q: f64, p_tie: f64, alpha: f64) -> f64 {
    debug_assert!(p < q, "lemma12 requires p < q");
    0.5 + alpha * (q - p) * (k as f64).sqrt() - p_tie / 2.0
}

/// Claim 10's bound: `E|B_k(q) − B_k(p)| ≤ √(2k·q(1−q)) + k(q−p)`.
pub fn claim10_abs_difference_upper(k: u64, p: f64, q: f64) -> f64 {
    debug_assert!(p <= q, "claim10 requires p ≤ q");
    (2.0 * k as f64 * q * (1.0 - q)).sqrt() + k as f64 * (q - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::CoinCompetition;

    #[test]
    fn chernoff_bounds_decay() {
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(10.0, 0.5));
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
        assert!(chernoff_upper(50.0, 0.1) <= 1.0);
    }

    #[test]
    fn chernoff_upper_large_delta_uses_linear_exponent() {
        // For δ ≥ 1 the exponent is δμ/3, not δ²μ/3.
        let b = chernoff_upper(9.0, 2.0);
        assert!((b - (-2.0 * 9.0 / 3.0_f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn hoeffding_matches_hand_computation() {
        // n=100 variables in [0,1], deviation 10: exp(−2·100/100) = e^{−2}.
        let b = hoeffding(100, 1.0, 10.0);
        assert!((b - (-2.0_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn lemma13_bound_is_valid_against_exact() {
        for k in [16u64, 64, 256] {
            for (p, q) in [(0.2, 0.5), (0.4, 0.6), (0.45, 0.55)] {
                let exact = CoinCompetition::new(k, p, q).p_second_wins();
                let bound = lemma13_favorite_wins_lower(k, p, q);
                assert!(
                    exact >= bound - 1e-10,
                    "k={k} p={p} q={q}: exact {exact} < bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma15_bound_is_valid_against_exact() {
        for k in [16u64, 64, 256, 1024] {
            for (p, q) in [(0.45, 0.5), (0.48, 0.52), (0.4, 0.45)] {
                let exact = CoinCompetition::new(k, p, q).p_first_wins();
                let bound = lemma15_underdog_wins_lower(k, p, q).max(0.0);
                assert!(
                    exact >= bound - 1e-10,
                    "k={k} p={p} q={q}: exact {exact} < bound {bound}"
                );
            }
        }
    }

    #[test]
    fn lemma12_bound_is_valid_against_exact_with_alpha9() {
        for k in [16u64, 64, 256] {
            let inv_sqrt_k = 1.0 / (k as f64).sqrt();
            for gap_frac in [0.25, 0.5, 1.0] {
                let p = 0.45;
                let q = p + gap_frac * inv_sqrt_k;
                let cc = CoinCompetition::new(k, p, q);
                let exact = cc.p_second_wins();
                let bound = lemma12_favorite_wins_upper(k, p, q, cc.p_tie(), 9.0);
                assert!(
                    exact <= bound + 1e-10,
                    "k={k} gap={gap_frac}/√k: exact {exact} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn claim10_bound_is_valid_against_exact() {
        for k in [8u64, 32, 128] {
            let (p, q) = (0.4, 0.4 + 1.0 / (k as f64).sqrt());
            let cc = CoinCompetition::new(k, p, q);
            assert!(cc.expected_abs_difference() <= claim10_abs_difference_upper(k, p, q) + 1e-9);
        }
    }
}
