//! Standard normal distribution: `erf`, CDF `Φ`, quantile `Φ⁻¹`, and the
//! Berry–Esseen bound (Theorem 5 in the paper's appendix).

/// Error function `erf(x)`, Abramowitz & Stegun 7.1.26 rational
/// approximation; absolute error below 1.5e-7 on the real line, which is
/// ample for every tolerance used in this workspace.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(x) = P(Z ≤ x)`.
///
/// # Example
///
/// ```
/// use fet_stats::normal::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!(normal_cdf(3.0) > 0.998);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's algorithm, refined with one
/// Halley step); relative error below 1e-9 for `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics when `p ∉ (0, 1)`.
///
/// # Example
///
/// ```
/// use fet_stats::normal::{normal_cdf, normal_quantile};
///
/// let z = normal_quantile(0.975);
/// assert!((z - 1.959964).abs() < 1e-4);
/// assert!((normal_cdf(z) - 0.975).abs() < 1e-9);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The Berry–Esseen constant used by the paper (Theorem 5): `C = 0.4748`.
pub const BERRY_ESSEEN_C: f64 = 0.4748;

/// Berry–Esseen bound on the Kolmogorov distance between the standardized
/// sum of `n` i.i.d. variables with third absolute central moment `rho` and
/// standard deviation `sigma`, and the standard normal:
/// `|F(x) − Φ(x)| ≤ C·ρ / (σ³ √n)`.
///
/// # Example
///
/// ```
/// use fet_stats::normal::berry_esseen_bound;
///
/// // Rademacher: σ = 1, ρ = 1.
/// let b = berry_esseen_bound(10_000, 1.0, 1.0);
/// assert!(b < 0.005);
/// ```
pub fn berry_esseen_bound(n: u64, sigma: f64, rho: f64) -> f64 {
    BERRY_ESSEEN_C * rho / (sigma.powi(3) * (n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_26).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12, "odd function");
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let c = normal_cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12, "CDF not monotone at {x}");
            prev = c;
            x += 0.05;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-7, "p={p}: round trip failed");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn quantile_symmetry() {
        for p in [0.01, 0.2, 0.4] {
            let a = normal_quantile(p);
            let b = normal_quantile(1.0 - p);
            assert!((a + b).abs() < 1e-8);
        }
    }

    #[test]
    fn pdf_integrates_to_cdf_increments() {
        // Midpoint rule sanity: ∫φ over [0, 1] ≈ Φ(1) − Φ(0).
        let steps = 10_000;
        let h = 1.0 / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| normal_pdf((i as f64 + 0.5) * h) * h)
            .sum();
        let expect = normal_cdf(1.0) - normal_cdf(0.0);
        assert!((integral - expect).abs() < 1e-7);
    }

    #[test]
    fn berry_esseen_decreases_with_n() {
        let b1 = berry_esseen_bound(100, 1.0, 1.0);
        let b2 = berry_esseen_bound(10_000, 1.0, 1.0);
        assert!(b2 < b1);
        assert!((b1 / b2 - 10.0).abs() < 1e-9, "scales as 1/√n");
    }
}
