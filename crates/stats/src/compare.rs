//! Coin-competition kernels: exact comparison probabilities between two
//! binomials with the same number of tosses.
//!
//! The entire drift analysis of the FET protocol reduces to three numbers
//! (Observation 1 of the paper): for sample size `ℓ` and opinion fractions
//! `x_t`, `x_{t+1}`,
//!
//! * `P(B_ℓ(x_{t+1}) > B_ℓ(x_t))` — probability a non-source agent adopts 1,
//! * `P(B_ℓ(x_{t+1}) = B_ℓ(x_t))` — probability it keeps its opinion,
//! * `P(B_ℓ(x_{t+1}) < B_ℓ(x_t))` — probability it adopts 0.
//!
//! [`CoinCompetition`] computes these exactly in `O(k)` after two `O(k)` PMF
//! tabulations, plus the full distribution of the difference
//! `B_k(q) − B_k(p)` in `O(k²)` (needed to validate Lemmas 12 and 14, whose
//! proofs manipulate `P(|B_k(q) − B_k(p)| = d)` term by term).

use crate::binomial::Binomial;
use crate::error::{check_probability, StatsError};

/// Outcome probabilities of the per-agent FET comparison.
///
/// `adopt_one + keep + adopt_zero = 1` exactly (up to float rounding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendProbabilities {
    /// `P(B_ℓ(x_{t+1}) > B_ℓ(x_t))`: the agent switches to opinion 1.
    pub adopt_one: f64,
    /// `P(B_ℓ(x_{t+1}) = B_ℓ(x_t))`: the agent keeps its current opinion.
    pub keep: f64,
    /// `P(B_ℓ(x_{t+1}) < B_ℓ(x_t))`: the agent switches to opinion 0.
    pub adopt_zero: f64,
}

impl TrendProbabilities {
    /// Probability that an agent currently holding opinion 1 outputs 1 next
    /// round: `adopt_one + keep`.
    pub fn one_if_holding_one(&self) -> f64 {
        self.adopt_one + self.keep
    }
}

/// Exact comparison of two binomial "coins" `B_k(p)` (first) and `B_k(q)`
/// (second), both tossed `k` times.
///
/// # Example
///
/// ```
/// use fet_stats::compare::CoinCompetition;
///
/// // Identical coins tie with symmetric win probabilities.
/// let cc = CoinCompetition::new(20, 0.4, 0.4);
/// assert!((cc.p_first_wins() - cc.p_second_wins()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CoinCompetition {
    k: u64,
    p: f64,
    q: f64,
    pmf_p: Vec<f64>,
    pmf_q: Vec<f64>,
}

impl CoinCompetition {
    /// Creates the competition between `B_k(p)` and `B_k(q)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is not a probability. Use [`CoinCompetition::try_new`]
    /// for a fallible constructor.
    pub fn new(k: u64, p: f64, q: f64) -> Self {
        Self::try_new(k, p, q).expect("p and q must be probabilities in [0, 1]")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] when `p` or `q` lies
    /// outside `[0, 1]`.
    pub fn try_new(k: u64, p: f64, q: f64) -> Result<Self, StatsError> {
        check_probability("p", p)?;
        check_probability("q", q)?;
        let pmf_p = Binomial::new(k, p)?.pmf_vector();
        let pmf_q = Binomial::new(k, q)?.pmf_vector();
        Ok(CoinCompetition {
            k,
            p,
            q,
            pmf_p,
            pmf_q,
        })
    }

    /// Number of tosses per coin.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// First coin's bias.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Second coin's bias.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// `P(B_k(p) > B_k(q))`.
    pub fn p_first_wins(&self) -> f64 {
        // Σ_i pmf_p(i) · P(B(q) < i) via a running CDF of q. The O(k)
        // accumulation can overshoot 1.0 by a few ε (observed at k ≥ 56);
        // clamp so callers can feed the result to probability validators.
        let mut cdf_q = 0.0;
        let mut acc = 0.0;
        for i in 0..=self.k as usize {
            if i > 0 {
                cdf_q += self.pmf_q[i - 1];
            }
            acc += self.pmf_p[i] * cdf_q;
        }
        acc.clamp(0.0, 1.0)
    }

    /// `P(B_k(p) = B_k(q))`.
    pub fn p_tie(&self) -> f64 {
        self.pmf_p
            .iter()
            .zip(&self.pmf_q)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// `P(B_k(q) > B_k(p))`. Clamped to `[0, 1]` (see [`CoinCompetition::p_first_wins`]).
    pub fn p_second_wins(&self) -> f64 {
        let mut cdf_p = 0.0;
        let mut acc = 0.0;
        for i in 0..=self.k as usize {
            if i > 0 {
                cdf_p += self.pmf_p[i - 1];
            }
            acc += self.pmf_q[i] * cdf_p;
        }
        acc.clamp(0.0, 1.0)
    }

    /// `P(B_k(q) ≥ B_k(p))`. Clamped to `[0, 1]` (see [`CoinCompetition::p_first_wins`]).
    pub fn p_second_wins_or_ties(&self) -> f64 {
        (self.p_second_wins() + self.p_tie()).clamp(0.0, 1.0)
    }

    /// Full PMF of the difference `D = B_k(q) − B_k(p)` as a vector indexed
    /// by `d + k` for `d ∈ [−k, k]`. `O(k²)`.
    pub fn difference_pmf(&self) -> Vec<f64> {
        let k = self.k as usize;
        let mut out = vec![0.0f64; 2 * k + 1];
        for (j, &pq) in self.pmf_q.iter().enumerate() {
            if pq == 0.0 {
                continue;
            }
            for (i, &pp) in self.pmf_p.iter().enumerate() {
                out[j + k - i] += pq * pp;
            }
        }
        out
    }

    /// `P(|B_k(q) − B_k(p)| = d)` for `d ≥ 0`, read off the difference PMF.
    pub fn abs_difference_pmf(&self) -> Vec<f64> {
        let diff = self.difference_pmf();
        let k = self.k as usize;
        let mut out = vec![0.0f64; k + 1];
        out[0] = diff[k];
        for d in 1..=k {
            out[d] = diff[k + d] + diff[k - d];
        }
        out
    }

    /// `E|B_k(q) − B_k(p)|`, the quantity bounded by Claim 10 of the paper
    /// (`≤ √(2k q(1−q)) + k(q−p)`).
    pub fn expected_abs_difference(&self) -> f64 {
        self.abs_difference_pmf()
            .iter()
            .enumerate()
            .map(|(d, &pr)| d as f64 * pr)
            .sum()
    }
}

/// The per-agent FET transition probabilities for sample size `ell`, given
/// the 1-fractions `x_t` (previous round) and `x_t1` (current round).
///
/// This is Observation 1's kernel: the agent compares a fresh
/// `B_ell(x_t1)` count against a stale `B_ell(x_t)` count.
///
/// # Example
///
/// ```
/// use fet_stats::compare::trend_probabilities;
///
/// // Rising trend: adopting 1 is more likely than adopting 0.
/// let t = trend_probabilities(32, 0.3, 0.5);
/// assert!(t.adopt_one > t.adopt_zero);
/// let total = t.adopt_one + t.keep + t.adopt_zero;
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
pub fn trend_probabilities(ell: u64, x_t: f64, x_t1: f64) -> TrendProbabilities {
    let cc = CoinCompetition::new(ell, x_t, x_t1);
    TrendProbabilities {
        adopt_one: cc.p_second_wins(),
        keep: cc.p_tie(),
        adopt_zero: cc.p_first_wins(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_partition_unity() {
        for (k, p, q) in [
            (1u64, 0.2, 0.9),
            (16, 0.5, 0.5),
            (64, 0.33, 0.66),
            (256, 0.01, 0.99),
        ] {
            let cc = CoinCompetition::new(k, p, q);
            let s = cc.p_first_wins() + cc.p_tie() + cc.p_second_wins();
            assert!((s - 1.0).abs() < 1e-10, "({k},{p},{q}) sums to {s}");
        }
    }

    #[test]
    fn symmetry_under_swap() {
        let a = CoinCompetition::new(40, 0.3, 0.7);
        let b = CoinCompetition::new(40, 0.7, 0.3);
        assert!((a.p_first_wins() - b.p_second_wins()).abs() < 1e-12);
        assert!((a.p_tie() - b.p_tie()).abs() < 1e-12);
    }

    #[test]
    fn better_coin_is_favored() {
        for k in [4u64, 16, 64, 256] {
            let cc = CoinCompetition::new(k, 0.4, 0.6);
            assert!(
                cc.p_second_wins() > cc.p_first_wins(),
                "k={k}: better coin not favored"
            );
        }
    }

    #[test]
    fn hand_computed_single_toss() {
        // k=1: P(B(p)=1, B(q)=0) = p(1−q), ties = pq + (1−p)(1−q).
        let (p, q) = (0.3, 0.8);
        let cc = CoinCompetition::new(1, p, q);
        assert!((cc.p_first_wins() - p * (1.0 - q)).abs() < 1e-12);
        assert!((cc.p_second_wins() - q * (1.0 - p)).abs() < 1e-12);
        assert!((cc.p_tie() - (p * q + (1.0 - p) * (1.0 - q))).abs() < 1e-12);
    }

    #[test]
    fn difference_pmf_consistency() {
        let cc = CoinCompetition::new(24, 0.45, 0.55);
        let diff = cc.difference_pmf();
        let k = 24usize;
        let total: f64 = diff.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        // P(D > 0) must equal p_second_wins().
        let p_pos: f64 = diff[k + 1..].iter().sum();
        assert!((p_pos - cc.p_second_wins()).abs() < 1e-10);
        let p_zero = diff[k];
        assert!((p_zero - cc.p_tie()).abs() < 1e-10);
    }

    #[test]
    fn abs_difference_pmf_sums_to_one() {
        let cc = CoinCompetition::new(17, 0.2, 0.6);
        let s: f64 = cc.abs_difference_pmf().iter().sum();
        assert!((s - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expected_abs_difference_matches_claim10_bound() {
        // Claim 10: E|B_k(q) − B_k(p)| ≤ √(2k q(1−q)) + k(q−p) for p<q in [1/3,2/3].
        for k in [8u64, 32, 128] {
            for (p, q) in [(0.34, 0.4), (0.4, 0.6), (0.5, 0.55)] {
                let cc = CoinCompetition::new(k, p, q);
                let lhs = cc.expected_abs_difference();
                let rhs = (2.0 * k as f64 * q * (1.0 - q)).sqrt() + k as f64 * (q - p);
                assert!(lhs <= rhs + 1e-9, "k={k}, p={p}, q={q}: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn trend_probabilities_rising_vs_falling() {
        let rising = trend_probabilities(32, 0.3, 0.6);
        let falling = trend_probabilities(32, 0.6, 0.3);
        assert!(rising.adopt_one > 0.9, "strong rise should be near-certain");
        assert!(falling.adopt_zero > 0.9);
        // Mirror symmetry.
        assert!((rising.adopt_one - falling.adopt_zero).abs() < 1e-12);
    }

    #[test]
    fn trend_probabilities_stationary_point() {
        // At x_t = x_t1 the two comparisons are symmetric.
        let t = trend_probabilities(16, 0.5, 0.5);
        assert!((t.adopt_one - t.adopt_zero).abs() < 1e-12);
    }

    #[test]
    fn one_if_holding_one_bounds() {
        let t = trend_probabilities(16, 0.4, 0.5);
        assert!(t.one_if_holding_one() >= t.adopt_one);
        assert!(t.one_if_holding_one() <= 1.0);
    }

    #[test]
    fn try_new_rejects_bad_probabilities() {
        assert!(CoinCompetition::try_new(4, -0.1, 0.5).is_err());
        assert!(CoinCompetition::try_new(4, 0.5, 2.0).is_err());
    }
}
