//! Hypergeometric distribution: PMF and exact sampling.
//!
//! The FET protocol (Protocol 1) partitions its `2ℓ`-sample *uniformly at
//! random* into two halves `S′`, `S″`. Given that the full sample contains
//! `K` ones among `N = 2ℓ` observations, the number of ones landing in `S′`
//! is exactly `Hypergeometric(N, K, ℓ)`. Sampling that split from the count
//! alone keeps the passive-communication interface (counts only) while
//! implementing the protocol's partition step *literally*.

use crate::error::StatsError;
use crate::ln_choose;
use rand::Rng;

/// A hypergeometric distribution: draws without replacement.
///
/// Parameters: population `total`, of which `successes` are marked, drawing
/// `draws` items. The support is
/// `[max(0, draws + successes − total), min(draws, successes)]`.
///
/// # Example
///
/// ```
/// use fet_stats::hypergeometric::Hypergeometric;
///
/// let h = Hypergeometric::new(10, 4, 5).unwrap();
/// let total: f64 = (0..=4).map(|k| h.pmf(k)).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    total: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidDomain`] when `successes > total` or
    /// `draws > total`.
    pub fn new(total: u64, successes: u64, draws: u64) -> Result<Self, StatsError> {
        if successes > total {
            return Err(StatsError::InvalidDomain {
                detail: format!("successes {successes} exceed population {total}"),
            });
        }
        if draws > total {
            return Err(StatsError::InvalidDomain {
                detail: format!("draws {draws} exceed population {total}"),
            });
        }
        Ok(Hypergeometric {
            total,
            successes,
            draws,
        })
    }

    /// Population size.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of marked items.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of items drawn.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Smallest value in the support.
    pub fn support_min(&self) -> u64 {
        (self.draws + self.successes).saturating_sub(self.total)
    }

    /// Largest value in the support.
    pub fn support_max(&self) -> u64 {
        self.draws.min(self.successes)
    }

    /// Mean `draws · successes / total`.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.draws as f64 * self.successes as f64 / self.total as f64
        }
    }

    /// PMF at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k < self.support_min() || k > self.support_max() {
            return 0.0;
        }
        (ln_choose(self.successes, k) + ln_choose(self.total - self.successes, self.draws - k)
            - ln_choose(self.total, self.draws))
        .exp()
    }

    /// Draws one variate by inverse-transform over the support (the support
    /// here is at most `min(draws, successes) + 1` wide — tiny for the
    /// sample sizes `ℓ = O(log n)` this crate serves).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lo = self.support_min();
        let hi = self.support_max();
        if lo == hi {
            return lo;
        }
        let u: f64 = rng.gen();
        let mut k = lo;
        let mut pk = self.pmf(lo);
        let mut acc = pk;
        // Ratio recurrence:
        // pmf(k+1)/pmf(k) = (K−k)(n−k) / ((k+1)(N−K−n+k+1)).
        while acc < u && k < hi {
            let num = (self.successes - k) as f64 * (self.draws - k) as f64;
            // k + 1 exceeds the support minimum (draws + successes − total),
            // so this reassociated form never underflows in u64.
            let den = (k + 1) as f64 * ((self.total + k + 1) - self.successes - self.draws) as f64;
            pk *= num / den;
            acc += pk;
            k += 1;
        }
        k
    }
}

/// Splits a count of `ones` observed in a sample of size `2 * half` into the
/// number that lands in the first half under a uniformly random partition
/// into two equal halves — the FET partition step.
///
/// Returns `(count_first_half, count_second_half)`.
///
/// # Panics
///
/// Panics when `ones > 2 * half`.
///
/// # Example
///
/// ```
/// use fet_stats::hypergeometric::split_sample;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let (a, b) = split_sample(7, 8, &mut rng);
/// assert_eq!(a + b, 7);
/// assert!(a <= 8 && b <= 8);
/// ```
pub fn split_sample<R: Rng + ?Sized>(ones: u64, half: u64, rng: &mut R) -> (u64, u64) {
    assert!(
        ones <= 2 * half,
        "ones {ones} exceed sample size {}",
        2 * half
    );
    let h = Hypergeometric::new(2 * half, ones, half)
        .expect("parameters validated by the assertion above");
    let first = h.sample(rng);
    (first, ones - first)
}

/// Precomputed inverse-transform tables for [`split_sample`] at every
/// possible observed count `0..=2·half`.
///
/// [`split_sample`] spends one `exp(ln Γ …)` evaluation per draw to seed
/// the PMF recurrence. A round of the batched FET kernel performs one
/// split per agent, all from the same family `Hypergeometric(2ℓ, c, ℓ)` —
/// so the table computes each count's CDF once (`O(ℓ²)` total) and every
/// draw becomes one uniform plus a short scan. Construction amortizes
/// after roughly `2ℓ` draws.
///
/// Stream-compatible with [`split_sample`]: the CDF entries are the exact
/// partial sums the sequential sampler accumulates (same seed PMF, same
/// ratio recurrence, same addition order), each draw consumes exactly one
/// uniform — and none for degenerate counts — so for a given RNG state the
/// two produce bit-identical results.
///
/// # Example
///
/// ```
/// use fet_stats::hypergeometric::{split_sample, SplitTable};
/// use rand::SeedableRng;
///
/// let table = SplitTable::new(8);
/// let mut a = rand::rngs::SmallRng::seed_from_u64(3);
/// let mut b = rand::rngs::SmallRng::seed_from_u64(3);
/// for ones in [0u64, 3, 7, 12, 16] {
///     assert_eq!(table.split(ones, &mut a), split_sample(ones, 8, &mut b));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SplitTable {
    half: u64,
    /// Per count `c`: the partial sums of `Hypergeometric(2·half, c, half)`
    /// over its support (empty for degenerate single-point supports).
    cdfs: Vec<Vec<f64>>,
    /// Per count `c`: the support minimum.
    mins: Vec<u64>,
}

impl SplitTable {
    /// Builds the tables for half-sample size `half` (total `2·half`).
    pub fn new(half: u64) -> Self {
        let total = 2 * half;
        let mut cdfs = Vec::with_capacity((total + 1) as usize);
        let mut mins = Vec::with_capacity((total + 1) as usize);
        for c in 0..=total {
            let h = Hypergeometric::new(total, c, half).expect("c ≤ 2·half by construction");
            let (lo, hi) = (h.support_min(), h.support_max());
            mins.push(lo);
            if lo == hi {
                cdfs.push(Vec::new());
                continue;
            }
            // The sequential sampler's accumulation, reified: same seed
            // PMF, same ratio recurrence, same addition order.
            let mut cdf = Vec::with_capacity((hi - lo + 1) as usize);
            let mut pk = h.pmf(lo);
            let mut acc = pk;
            cdf.push(acc);
            for k in lo..hi {
                let num = (c - k) as f64 * (half - k) as f64;
                let den = (k + 1) as f64 * ((total + k + 1) - c - half) as f64;
                pk *= num / den;
                acc += pk;
                cdf.push(acc);
            }
            cdfs.push(cdf);
        }
        SplitTable { half, cdfs, mins }
    }

    /// The half-sample size the table was built for.
    pub fn half(&self) -> u64 {
        self.half
    }

    /// Draws the FET partition split for an observed count of `ones`,
    /// exactly as [`split_sample`] would for the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics when `ones > 2 * half`.
    pub fn split<R: Rng + ?Sized>(&self, ones: u64, rng: &mut R) -> (u64, u64) {
        assert!(
            ones <= 2 * self.half,
            "ones {ones} exceed sample size {}",
            2 * self.half
        );
        let lo = self.mins[ones as usize];
        let cdf = &self.cdfs[ones as usize];
        if cdf.is_empty() {
            return (lo, ones - lo);
        }
        let u: f64 = rng.gen();
        // First k with acc ≥ u — the sequential sampler's stop rule,
        // located by binary search (the partial sums are non-decreasing,
        // so `partition_point` finds exactly the index the linear scan
        // would). The final entry is taken when u exceeds every partial
        // sum (float round-off can leave the total a hair below 1).
        let offset = cdf.partition_point(|&acc| acc < u).min(cdf.len() - 1) as u64;
        let first = lo + offset;
        (first, ones - first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;

    #[test]
    fn pmf_sums_to_one() {
        for (n, k, d) in [(10u64, 3u64, 4u64), (20, 10, 10), (7, 7, 3), (12, 0, 5)] {
            let h = Hypergeometric::new(n, k, d).unwrap();
            let s: f64 = (h.support_min()..=h.support_max()).map(|x| h.pmf(x)).sum();
            assert!((s - 1.0).abs() < 1e-10, "({n},{k},{d}) sums to {s}");
        }
    }

    #[test]
    fn support_bounds() {
        let h = Hypergeometric::new(10, 8, 5).unwrap();
        assert_eq!(h.support_min(), 3); // 5 + 8 − 10
        assert_eq!(h.support_max(), 5);
        assert_eq!(h.pmf(2), 0.0);
        assert_eq!(h.pmf(6), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Hypergeometric::new(5, 6, 2).is_err());
        assert!(Hypergeometric::new(5, 2, 6).is_err());
    }

    #[test]
    fn sample_within_support_and_mean_matches() {
        let h = Hypergeometric::new(40, 15, 20).unwrap();
        let mut rng = SeedTree::new(11).child("hyper").rng();
        let reps = 50_000;
        let mut sum = 0u64;
        for _ in 0..reps {
            let x = h.sample(&mut rng);
            assert!(x >= h.support_min() && x <= h.support_max());
            sum += x;
        }
        let mean = sum as f64 / reps as f64;
        assert!(
            (mean - h.mean()).abs() < 0.05,
            "mean {mean} vs {}",
            h.mean()
        );
    }

    #[test]
    fn degenerate_support_is_constant() {
        // All marked: every draw is a success.
        let h = Hypergeometric::new(6, 6, 4).unwrap();
        let mut rng = SeedTree::new(3).child("deg").rng();
        for _ in 0..10 {
            assert_eq!(h.sample(&mut rng), 4);
        }
    }

    #[test]
    fn split_sample_preserves_total_and_marginal() {
        let mut rng = SeedTree::new(17).child("split").rng();
        let half = 16u64;
        let ones = 13u64;
        let reps = 40_000;
        let mut sum_first = 0u64;
        for _ in 0..reps {
            let (a, b) = split_sample(ones, half, &mut rng);
            assert_eq!(a + b, ones);
            assert!(a <= half && b <= half);
            sum_first += a;
        }
        // Marginal mean of the first half must be ones/2.
        let mean = sum_first as f64 / reps as f64;
        assert!((mean - ones as f64 / 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn split_sample_extremes() {
        let mut rng = SeedTree::new(29).child("ext").rng();
        assert_eq!(split_sample(0, 8, &mut rng), (0, 0));
        let (a, b) = split_sample(16, 8, &mut rng);
        assert_eq!((a, b), (8, 8));
    }

    #[test]
    #[should_panic(expected = "exceed sample size")]
    fn split_sample_rejects_overfull() {
        let mut rng = SeedTree::new(1).child("bad").rng();
        let _ = split_sample(17, 8, &mut rng);
    }
}
