//! # fet-stats — probability and statistics substrate
//!
//! Numerical foundation for the reproduction of *Korman & Vacus, "Early
//! Adapting to Trends: Self-Stabilizing Information Spread using Passive
//! Communication"* (PODC 2022).
//!
//! Everything the paper's analysis touches numerically lives here:
//!
//! * [`binomial`] — exact binomial PMF/CDF and exact samplers across all size
//!   regimes (alias tables for the per-round sample size `ℓ`, beta-splitting
//!   for population-sized counts).
//! * [`compare`] — the paper's *coin competition* kernels:
//!   `P(B_k(p) > B_k(q))`, `P(B_k(p) = B_k(q))` and the distribution of the
//!   difference `B_k(q) − B_k(p)` (Lemmas 12–15 and Observation 1 all reduce
//!   to these quantities).
//! * [`normal`] — `erf`, the standard normal CDF `Φ`, its inverse, and the
//!   Berry–Esseen error bound (Theorem 5 of the paper's appendix).
//! * [`bounds`] — closed forms of the concentration bounds the paper cites
//!   (multiplicative Chernoff, Hoeffding) and of the coin-competition bounds
//!   (Lemmas 12, 13, 15).
//! * [`summary`] — streaming moments (Welford), quantiles, bootstrap and
//!   normal-approximation confidence intervals.
//! * [`regression`] — least squares on transformed axes; used to fit
//!   `T(n) = a · log^b n` when reproducing Theorem 1's scaling.
//! * [`histogram`] — fixed-width binning for dwell-time distributions.
//! * [`rng`] — deterministic seed derivation (SplitMix64 trees) so that every
//!   experiment in the repository is exactly replayable.
//! * [`isa`] — ISA path selection (scalar / SWAR / AVX2) and the vectorized
//!   sampling kernels behind the `FET_SIMD` override; every path is
//!   bit-identical by contract.
//!
//! # Example
//!
//! Exact probability that one binomial "coin" beats another — the quantity at
//! the heart of the FET drift (Observation 1):
//!
//! ```
//! use fet_stats::compare::CoinCompetition;
//!
//! let cc = CoinCompetition::new(32, 0.45, 0.55);
//! // The more-biased coin wins more often than it loses.
//! assert!(cc.p_second_wins() > cc.p_first_wins());
//! // The three outcomes form a probability distribution.
//! let total = cc.p_first_wins() + cc.p_tie() + cc.p_second_wins();
//! assert!((total - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![allow(clippy::excessive_precision)] // published coefficient tables keep full digits
#![deny(missing_debug_implementations)]

pub mod bounds;
pub mod compare;
pub mod distance;
pub mod error;
pub mod histogram;
pub mod hypergeometric;
pub mod isa;
pub mod normal;
pub mod regression;
pub mod rng;
pub mod summary;

pub mod binomial;

pub use error::StatsError;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::binomial::{Binomial, BinomialSampler};
    pub use crate::compare::CoinCompetition;
    pub use crate::error::StatsError;
    pub use crate::histogram::Histogram;
    pub use crate::hypergeometric::Hypergeometric;
    pub use crate::normal::{normal_cdf, normal_quantile};
    pub use crate::regression::{fit_power_of_log, LinearFit};
    pub use crate::rng::SeedTree;
    pub use crate::summary::{Summary, WelfordAccumulator};
}

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9 coefficients), accurate to roughly
/// 1e-13 relative error over the domain used in this crate. This is the
/// backbone of the exact binomial PMF in log space.
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`.
///
/// # Example
///
/// ```
/// // ln Γ(5) = ln 4! = ln 24
/// let err = (fet_stats::ln_gamma(5.0) - 24.0_f64.ln()).abs();
/// assert!(err < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n`.
///
/// # Example
///
/// ```
/// let err = (fet_stats::ln_choose(10, 3) - 120.0_f64.ln()).abs();
/// assert!(err < 1e-12);
/// ```
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0_f64;
        for n in 1..20u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            let expect = fact.ln();
            let got = ln_gamma(f64::from(n));
            assert!(
                (got - expect).abs() < 1e-10 * expect.abs().max(1.0),
                "ln_gamma({n}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_small_values() {
        assert_eq!(ln_choose(5, 6), f64::NEG_INFINITY);
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        let expect = 10.0_f64.ln();
        assert!((ln_choose(5, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_symmetry() {
        for n in [10u64, 50, 200, 1000] {
            for k in 0..=n.min(20) {
                let a = ln_choose(n, k);
                let b = ln_choose(n, n - k);
                assert!((a - b).abs() < 1e-9, "C({n},{k}) symmetry violated");
            }
        }
    }
}
