//! Fixed-width histograms for dwell-time and convergence-time distributions.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equally wide bins, plus underflow and
/// overflow counters.
///
/// # Example
///
/// ```
/// use fet_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [0.5, 1.5, 2.5, 2.6, 11.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.bin_count(1), 2); // 2.5 and 2.6 fall in [2, 4)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidDomain`] when `lo ≥ hi` or `bins == 0`,
    /// and [`StatsError::NotFinite`] when a bound is NaN/∞.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::NotFinite {
                name: "histogram bounds",
            });
        }
        if lo >= hi {
            return Err(StatsError::InvalidDomain {
                detail: format!("histogram requires lo < hi, got [{lo}, {hi})"),
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidDomain {
                detail: "histogram requires ≥ 1 bin".into(),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive-exclusive bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Iterator over `(bin_low, bin_high, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (a, b) = self.bin_bounds(i);
            (a, b, self.bins[i])
        })
    }

    /// Empirical fraction of mass at or below `x` (counting underflow,
    /// attributing each bin wholly when its upper edge is ≤ `x`).
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        for (lo, hi, c) in self.iter() {
            if hi <= x {
                acc += c;
            } else if lo <= x {
                // Partial bin: attribute proportionally.
                let frac = (x - lo) / (hi - lo);
                acc += (c as f64 * frac) as u64;
            }
        }
        if x >= self.hi {
            acc += self.overflow;
        }
        acc as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(99.9);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 1);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-0.5);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn bin_bounds_partition_range() {
        let h = Histogram::new(-2.0, 2.0, 8).unwrap();
        let mut edge = -2.0;
        for i in 0..8 {
            let (lo, hi) = h.bin_bounds(i);
            assert!((lo - edge).abs() < 1e-12);
            edge = hi;
        }
        assert!((edge - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_endpoints() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.cdf_at(-1.0), 0.0);
        assert!((h.cdf_at(10.0) - 1.0).abs() < 1e-12);
        assert!((h.cdf_at(5.0) - 0.5).abs() < 1e-12);
    }
}
