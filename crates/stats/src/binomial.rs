//! Exact binomial distribution: PMF, CDF, and exact samplers.
//!
//! The PULL model with replacement makes every per-round observation count an
//! exact `Binomial(ℓ, x_t)` draw (this identity is used by Observation 1 of
//! the paper and by the `binomial` and `aggregate` simulation fidelities).
//! This module therefore provides:
//!
//! * [`Binomial`] — the distribution object: `pmf`, `ln_pmf`, `cdf`,
//!   `survival`, moments, mode, and a dense PMF vector for the comparison
//!   kernels in [`crate::compare`].
//! * [`BinomialSampler`] — a regime-dispatching *exact* sampler:
//!   alias tables (Walker/Vose) when `n` is small enough to tabulate, and
//!   Knuth's beta-splitting recursion (exact, `O(log n)` Beta draws) for
//!   population-sized `n` up to `u64` range.
//! * [`AliasTable`] — a reusable `O(1)`-per-draw discrete sampler.
//!
//! The CDF is computed through the regularized incomplete beta function
//! (continued-fraction evaluation), so it is accurate for any `n` without
//! summing the PMF.

use crate::error::{check_probability, StatsError};
use crate::{ln_choose, ln_gamma};
use rand::Rng;

/// Threshold below which [`BinomialSampler`] tabulates the distribution.
const ALIAS_THRESHOLD: u64 = 2048;
/// Threshold below which beta-splitting falls back to direct Bernoulli counting.
const DIRECT_THRESHOLD: u64 = 64;

/// A binomial distribution `B(n, p)`.
///
/// # Example
///
/// ```
/// use fet_stats::binomial::Binomial;
///
/// let b = Binomial::new(10, 0.3).unwrap();
/// assert!((b.mean() - 3.0).abs() < 1e-12);
/// assert!((b.pmf(0) - 0.7_f64.powi(10)).abs() < 1e-12);
/// assert!((b.cdf(10) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, StatsError> {
        check_probability("p", p)?;
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// The (smallest) mode, `⌊(n+1)p⌋` clamped to `[0, n]`.
    pub fn mode(&self) -> u64 {
        let m = ((self.n + 1) as f64 * self.p).floor() as i64;
        m.clamp(0, self.n as i64) as u64
    }

    /// Natural log of the PMF at `k`; `−∞` when `k > n`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln_1p_safe()
    }

    /// PMF at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF `P(X ≤ k)` via the regularized incomplete beta function.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n here.
        }
        // P(X ≤ k) = I_{1-p}(n-k, k+1).
        reg_inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Survival function `P(X > k)`.
    pub fn survival(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        // Complement computed directly for accuracy in the upper tail:
        // P(X > k) = I_p(k+1, n-k).
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        reg_inc_beta(k as f64 + 1.0, (self.n - k) as f64, self.p)
    }

    /// Dense PMF vector `[pmf(0), …, pmf(n)]`.
    ///
    /// Computed outward from the mode with the ratio recurrence, then
    /// normalized — numerically stable even when individual log terms
    /// underflow. Intended for moderate `n` (the per-round sample size `ℓ`);
    /// the comparison kernels and alias tables consume this.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `2^24` (the vector would be absurdly large; use
    /// [`Binomial::cdf`] instead).
    pub fn pmf_vector(&self) -> Vec<f64> {
        assert!(
            self.n <= (1 << 24),
            "pmf_vector: n = {} too large to tabulate",
            self.n
        );
        let n = self.n as usize;
        let mut v = vec![0.0f64; n + 1];
        if self.p == 0.0 {
            v[0] = 1.0;
            return v;
        }
        if self.p == 1.0 {
            v[n] = 1.0;
            return v;
        }
        let mode = self.mode() as usize;
        v[mode] = 1.0; // relative scale; normalize at the end
        let p = self.p;
        let q = 1.0 - p;
        // Upward recurrence: pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/q.
        for k in mode..n {
            let ratio = (self.n - k as u64) as f64 / (k as f64 + 1.0) * (p / q);
            v[k + 1] = v[k] * ratio;
        }
        // Downward recurrence: pmf(k−1) = pmf(k) · k/(n−k+1) · q/p.
        for k in (1..=mode).rev() {
            let ratio = k as f64 / (self.n - k as u64 + 1) as f64 * (q / p);
            v[k - 1] = v[k] * ratio;
        }
        let total: f64 = v.iter().sum();
        for x in &mut v {
            *x /= total;
        }
        v
    }
}

/// Internal helper: `ln(x)` that treats `ln(1·p)` consistently.
trait LnSafe {
    fn ln_1p_safe(self) -> f64;
}

impl LnSafe for f64 {
    #[inline]
    fn ln_1p_safe(self) -> f64 {
        // `self` is already (1 - p); plain ln is fine because p < 1 here.
        self.ln()
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's
/// continued-fraction algorithm (Numerical Recipes §6.4 style).
///
/// Accurate to ~1e-12 over the parameter ranges used by binomial CDFs.
///
/// # Panics
///
/// Panics in debug builds when `x ∉ [0, 1]` or `a, b ≤ 0`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x), "x out of range: {x}");
    debug_assert!(a > 0.0 && b > 0.0, "a, b must be positive: {a}, {b}");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x)) / a
    } else {
        1.0 - (ln_front.exp() * beta_cf(b, a, 1.0 - x)) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Alias table
// ---------------------------------------------------------------------------

/// Walker/Vose alias table: `O(1)` sampling from a fixed discrete
/// distribution after `O(n)` construction.
///
/// Rebuilt once per simulation round for the shared `Binomial(ℓ, x_t)` law,
/// then shared across all `n` agents — the core trick behind the `binomial`
/// simulation fidelity's `O(n)` rounds.
///
/// # Example
///
/// ```
/// use fet_stats::binomial::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[0.2, 0.3, 0.5]).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let x = table.sample(&mut rng);
/// assert!(x < 3);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
    /// `ceil(prob[i] · 2⁵³)` — the probe `gen::<f64>() < prob[i]` as an
    /// exact integer compare against the float word's 53 mantissa-source
    /// bits (`y >> 11`). Powers of two scale exactly, so this loses
    /// nothing; the SWAR/AVX2 block kernels select on it branch-free.
    thresh53: Vec<u64>,
    /// `alias` widened to `u64` so the AVX2 kernel can gather it.
    alias64: Vec<u64>,
}

impl AliasTable {
    /// Builds an alias table from (not necessarily normalized) nonnegative
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty slice and
    /// [`StatsError::InvalidDomain`] when any weight is negative/non-finite
    /// or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, StatsError> {
        if weights.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "alias-table weights",
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(StatsError::InvalidDomain {
                detail: "alias-table weights must be finite and nonnegative".into(),
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::InvalidDomain {
                detail: "alias-table weights must not all be zero".into(),
            });
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small = Vec::with_capacity(n);
        let mut large = Vec::with_capacity(n);
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked nonempty");
            let l = *large.last().expect("checked nonempty");
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i as u32;
        }
        let thresh53 = prob
            .iter()
            .map(|p| (p * (1u64 << 53) as f64).ceil() as u64)
            .collect();
        let alias64 = alias.iter().map(|&a| u64::from(a)).collect();
        Ok(AliasTable {
            prob,
            alias,
            thresh53,
            alias64,
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table has no categories (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Exact-stream block sampling: fills `out` with the same categories —
    /// and the same RNG word consumption — as `out.len()` successive
    /// [`AliasTable::sample`] calls, drawing all randomness as one
    /// `fill_bytes` block so a caller holding `&mut dyn RngCore` pays one
    /// virtual dispatch per block instead of two per draw. This is the
    /// sampler half of the bit-plane word-at-a-time kernel.
    ///
    /// Applies only when the table length is a power of two: the range
    /// draw's single-round Lemire rejection threshold is then zero, so
    /// every draw consumes exactly two `next_u64` words and the block's
    /// word count is known up front. Returns `false` without drawing
    /// anything otherwise (caller falls back to looping [`sample`]).
    ///
    /// Relies on two stream invariants of the workspace's `rand`:
    /// `fill_bytes` produces the little-endian byte stream of successive
    /// `next_u64` words (as `SmallRng` does), and `gen_range`/`gen::<f64>`
    /// each consume exactly one word (widening-multiply uniform, 53-bit
    /// float). `stream_identical_to_sample_loop` pins block-vs-loop
    /// equality so any swap to a differently-drawing `rand` fails loudly.
    ///
    /// [`sample`]: AliasTable::sample
    pub fn try_sample_block<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [usize]) -> bool {
        self.try_sample_block_with(crate::isa::active_path(), rng, out)
    }

    /// [`AliasTable::try_sample_block`] through an explicit ISA path —
    /// the kernel-level entry point for the per-path identity tests and
    /// benches. Every path consumes the same single `fill_bytes` block
    /// and selects the same categories (see [`crate::isa`] for the exact
    /// integer reformulation of the probe); only the instruction mix
    /// differs.
    pub fn try_sample_block_with<R: Rng + ?Sized>(
        &self,
        path: crate::isa::IsaPath,
        rng: &mut R,
        out: &mut [usize],
    ) -> bool {
        const MAX_BLOCK: usize = 64;
        let len = self.prob.len();
        if !len.is_power_of_two() || out.len() > MAX_BLOCK {
            return false;
        }
        let mut bytes = [0u8; MAX_BLOCK * 16];
        let bytes = &mut bytes[..out.len() * 16];
        rng.fill_bytes(bytes);
        let shift = 64 - len.trailing_zeros();
        match path {
            crate::isa::IsaPath::Scalar => {
                // The reference loop: the draws exactly as `sample` makes
                // them, one 16-byte pair at a time.
                for (slot, pair) in out.iter_mut().zip(bytes.chunks_exact(16)) {
                    let x = u64::from_le_bytes(pair[..8].try_into().expect("8-byte word"));
                    let y = u64::from_le_bytes(pair[8..].try_into().expect("8-byte word"));
                    // `gen_range(0..len)`: one widening multiply; power-of-two
                    // span → zero rejection threshold.
                    let i = (((x as u128) * (len as u128)) >> 64) as usize;
                    // `gen::<f64>()`: 53 high bits → uniform [0, 1).
                    let f = (y >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    *slot = if f < self.prob[i] {
                        i
                    } else {
                        self.alias[i] as usize
                    };
                }
            }
            crate::isa::IsaPath::Swar => {
                crate::isa::alias_block_swar(bytes, shift, &self.thresh53, &self.alias64, out);
            }
            crate::isa::IsaPath::Avx2 => {
                crate::isa::alias_block_avx2(bytes, shift, &self.thresh53, &self.alias64, out);
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Exact large-n sampling: normal, gamma, beta, beta-splitting binomial
// ---------------------------------------------------------------------------

/// Draws a standard normal variate (Marsaglia polar method).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws `Gamma(shape, 1)` via Marsaglia–Tsang (2000); exact for all
/// `shape > 0`.
///
/// # Panics
///
/// Panics in debug builds when `shape <= 0`.
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let g = sample_gamma(shape + 1.0, rng);
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws `Beta(a, b)` as `X/(X+Y)` with independent gammas.
///
/// # Panics
///
/// Panics in debug builds when `a <= 0` or `b <= 0`.
pub fn sample_beta<R: Rng + ?Sized>(a: f64, b: f64, rng: &mut R) -> f64 {
    let x = sample_gamma(a, rng);
    let y = sample_gamma(b, rng);
    // Guard against the (measure-zero, floating-point-possible) 0/0.
    let s = x + y;
    if s <= 0.0 {
        0.5
    } else {
        x / s
    }
}

/// Draws one exact `Binomial(n, p)` variate using Knuth's beta-splitting
/// recursion: `O(log n)` Beta draws regardless of `n`, falling back to direct
/// Bernoulli counting for small residual `n`.
///
/// This is what lets the `aggregate` fidelity simulate populations of
/// billions of agents exactly.
pub fn sample_binomial<R: Rng + ?Sized>(mut n: u64, mut p: f64, rng: &mut R) -> u64 {
    // Tolerate ulp-level drift from upstream probability arithmetic.
    if (-1e-9..0.0).contains(&p) || (1.0..1.0 + 1e-9).contains(&p) {
        p = p.clamp(0.0, 1.0);
    }
    debug_assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    let mut acc: u64 = 0;
    loop {
        if p <= 0.0 {
            return acc;
        }
        if p >= 1.0 {
            return acc + n;
        }
        if n <= DIRECT_THRESHOLD {
            for _ in 0..n {
                if rng.gen::<f64>() < p {
                    acc += 1;
                }
            }
            return acc;
        }
        // The a-th order statistic of n uniforms is Beta(a, n+1−a).
        let a = n / 2 + 1;
        let v = sample_beta(a as f64, (n + 1 - a) as f64, rng);
        if p < v {
            // All successes lie strictly below the a-th order statistic:
            // they are among the a−1 smallest uniforms, iid U(0, v).
            n = a - 1;
            p /= v;
            if p > 1.0 {
                p = 1.0;
            }
        } else {
            // The a smallest uniforms are all ≤ v ≤ p: a guaranteed
            // successes, and the remaining n−a uniforms are iid U(v, 1).
            acc += a;
            n -= a;
            p = (p - v) / (1.0 - v);
            if !(0.0..=1.0).contains(&p) {
                p = p.clamp(0.0, 1.0);
            }
        }
    }
}

/// A reusable exact sampler for a fixed `Binomial(n, p)`.
///
/// Dispatches by regime:
///
/// * degenerate `p ∈ {0, 1}` — constant;
/// * `n ≤ 2048` — precomputed [`AliasTable`] (`O(1)` per draw);
/// * otherwise — [`sample_binomial`] beta-splitting (`O(log n)` per draw).
///
/// # Example
///
/// ```
/// use fet_stats::binomial::BinomialSampler;
/// use rand::SeedableRng;
///
/// let s = BinomialSampler::new(40, 0.25).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
/// let draw = s.sample(&mut rng);
/// assert!(draw <= 40);
/// ```
#[derive(Debug, Clone)]
pub struct BinomialSampler {
    n: u64,
    p: f64,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Degenerate(u64),
    Alias(AliasTable),
    BetaSplit,
}

impl BinomialSampler {
    /// Creates a sampler for `Binomial(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, StatsError> {
        check_probability("p", p)?;
        let kind = if p == 0.0 {
            SamplerKind::Degenerate(0)
        } else if p == 1.0 {
            SamplerKind::Degenerate(n)
        } else if n <= ALIAS_THRESHOLD {
            let pmf = Binomial { n, p }.pmf_vector();
            SamplerKind::Alias(AliasTable::new(&pmf).expect("pmf vector is a valid weight vector"))
        } else {
            SamplerKind::BetaSplit
        };
        Ok(BinomialSampler { n, p, kind })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one variate.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.kind {
            SamplerKind::Degenerate(v) => *v,
            SamplerKind::Alias(t) => t.sample(rng) as u64,
            SamplerKind::BetaSplit => sample_binomial(self.n, self.p, rng),
        }
    }

    /// Exact-stream block sampling: fills `out` with the same variates —
    /// and the same RNG word consumption — as `out.len()` successive
    /// [`BinomialSampler::sample`] calls, or returns `false` without
    /// drawing anything when this sampler can't batch (beta-splitting
    /// tail, or a non-power-of-two alias table). Degenerate samplers
    /// (`p ∈ {0, 1}`) batch trivially: they consume no randomness.
    ///
    /// See [`AliasTable::try_sample_block`] for the stream argument and
    /// the invariants this relies on.
    pub fn try_sample_block<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [usize]) -> bool {
        self.try_sample_block_with(crate::isa::active_path(), rng, out)
    }

    /// [`BinomialSampler::try_sample_block`] through an explicit ISA path;
    /// see [`AliasTable::try_sample_block_with`].
    pub fn try_sample_block_with<R: Rng + ?Sized>(
        &self,
        path: crate::isa::IsaPath,
        rng: &mut R,
        out: &mut [usize],
    ) -> bool {
        match &self.kind {
            SamplerKind::Degenerate(v) => {
                out.fill(*v as usize);
                true
            }
            SamplerKind::Alias(t) => t.try_sample_block_with(path, rng, out),
            SamplerKind::BetaSplit => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;
    use rand::RngCore;

    fn rng(label: &str) -> rand::rngs::SmallRng {
        SeedTree::new(0xB10B).child(label).rng()
    }

    #[test]
    fn pmf_sums_to_one() {
        for (n, p) in [(1u64, 0.5), (10, 0.3), (63, 0.9), (200, 0.01)] {
            let b = Binomial::new(n, p).unwrap();
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert!(
                (total - 1.0).abs() < 1e-10,
                "pmf sum for ({n},{p}) = {total}"
            );
        }
    }

    #[test]
    fn pmf_vector_matches_pointwise_pmf() {
        let b = Binomial::new(48, 0.37).unwrap();
        let v = b.pmf_vector();
        for (k, &pk) in v.iter().enumerate() {
            let direct = b.pmf(k as u64);
            assert!(
                (pk - direct).abs() < 1e-12,
                "pmf_vector[{k}] = {pk}, pmf = {direct}"
            );
        }
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let b = Binomial::new(30, 0.42).unwrap();
        let v = b.pmf_vector();
        let mut run = 0.0;
        for k in 0..=30u64 {
            run += v[k as usize];
            assert!(
                (b.cdf(k) - run).abs() < 1e-10,
                "cdf({k}) = {}, partial sum = {run}",
                b.cdf(k)
            );
        }
    }

    #[test]
    fn survival_complements_cdf() {
        let b = Binomial::new(25, 0.6).unwrap();
        for k in 0..=25u64 {
            let s = b.survival(k) + b.cdf(k);
            assert!((s - 1.0).abs() < 1e-10, "cdf+sf at {k} = {s}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let b0 = Binomial::new(12, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.cdf(0), 1.0);
        let b1 = Binomial::new(12, 1.0).unwrap();
        assert_eq!(b1.pmf(12), 1.0);
        assert_eq!(b1.cdf(11), 0.0);
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Binomial::new(4, -0.5).is_err());
        assert!(Binomial::new(4, 1.5).is_err());
        assert!(Binomial::new(4, f64::NAN).is_err());
    }

    #[test]
    fn large_n_cdf_is_sane() {
        // Binomial(1e6, 0.5): median at the mean.
        let b = Binomial::new(1_000_000, 0.5).unwrap();
        let c = b.cdf(500_000);
        assert!((c - 0.5).abs() < 1e-3, "cdf at mean = {c}");
        assert!(b.cdf(490_000) < 0.01);
        assert!(b.cdf(510_000) > 0.99);
    }

    #[test]
    fn alias_table_frequencies_match() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = rng("alias");
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - weights[i]).abs() < 0.01,
                "category {i}: freq {freq} vs weight {}",
                weights[i]
            );
        }
    }

    /// The invariant `try_sample_block` is built on: for a power-of-two
    /// table, a block draw is byte-for-byte the same stream as looping
    /// `sample` — same categories out, RNG left in the same state. Any
    /// swap to a `rand` with different `gen_range`/`gen::<f64>`/
    /// `fill_bytes` draw patterns fails here first.
    #[test]
    fn stream_identical_to_sample_loop() {
        for (label, weights) in [
            ("len2", &[0.35, 0.65][..]),
            ("len4", &[0.1, 0.2, 0.3, 0.4][..]),
            ("len8", &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0][..]),
        ] {
            let t = AliasTable::new(weights).unwrap();
            for block_len in [1usize, 7, 63, 64] {
                let mut rng_block = rng(label);
                let mut rng_loop = rng(label);
                let mut block = vec![0usize; block_len];
                assert!(t.try_sample_block(&mut rng_block, &mut block));
                let looped: Vec<usize> = (0..block_len).map(|_| t.sample(&mut rng_loop)).collect();
                assert_eq!(block, looped, "{label} block_len {block_len}");
                // RNG state must agree too: follow-up draws line up.
                assert_eq!(rng_block.next_u64(), rng_loop.next_u64());
            }
        }
        // Non-power-of-two tables refuse (and must not consume the RNG).
        let odd = AliasTable::new(&[0.5, 0.3, 0.2]).unwrap();
        let mut rng_a = rng("odd");
        let mut rng_b = rng("odd");
        assert!(!odd.try_sample_block(&mut rng_a, &mut [0usize; 8]));
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        // Oversized blocks refuse rather than splitting the fill call.
        let t = AliasTable::new(&[0.5, 0.5]).unwrap();
        assert!(!t.try_sample_block(&mut rng("big"), &mut vec![0usize; 65]));
    }

    /// `BinomialSampler::try_sample_block` covers the degenerate kinds
    /// and inherits the alias-path stream identity.
    #[test]
    fn sampler_block_matches_sample_loop() {
        for (n, p) in [(1u64, 0.5), (3, 0.3), (5, 0.0), (5, 1.0)] {
            let s = BinomialSampler::new(n, p).unwrap();
            let mut rng_block = rng("sampler-block");
            let mut rng_loop = rng("sampler-block");
            let mut block = [0usize; 64];
            assert!(s.try_sample_block(&mut rng_block, &mut block));
            let looped: Vec<usize> = (0..64).map(|_| s.sample(&mut rng_loop) as usize).collect();
            assert_eq!(&block[..], &looped[..], "Binomial({n}, {p})");
            assert_eq!(rng_block.next_u64(), rng_loop.next_u64());
        }
        // The beta-splitting tail can't batch.
        let big = BinomialSampler::new(1 << 20, 0.5).unwrap();
        assert!(!big.try_sample_block(&mut rng("beta"), &mut [0usize; 8]));
    }

    /// Every ISA path selects the same categories from the same block and
    /// leaves the RNG in the same state — the per-kernel half of the
    /// trajectory-level contract in `tests/simd_stream_identity.rs`. The
    /// weight sets deliberately include fractional probes (so the integer
    /// threshold reformulation is actually exercised, not just the
    /// always-accept `prob = 1.0` rows) and the one-category table (shift
    /// of 64).
    #[test]
    fn block_paths_are_bit_identical() {
        use crate::isa::IsaPath;
        for (label, weights) in [
            ("len1", &[1.0][..]),
            ("len2", &[0.35, 0.65][..]),
            ("len4", &[0.1, 0.2, 0.3, 0.4][..]),
            (
                "len16",
                &[
                    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 1.5, 2.5, 3.5, 4.5, 0.1, 0.2, 9.0, 0.7,
                ][..],
            ),
        ] {
            let t = AliasTable::new(weights).unwrap();
            for block_len in [1usize, 3, 4, 5, 7, 8, 63, 64] {
                let mut reference = vec![0usize; block_len];
                let mut rng_ref = rng(label);
                assert!(t.try_sample_block_with(IsaPath::Scalar, &mut rng_ref, &mut reference));
                let state_ref = rng_ref.next_u64();
                for path in IsaPath::available() {
                    let mut got = vec![0usize; block_len];
                    let mut rng_path = rng(label);
                    assert!(t.try_sample_block_with(path, &mut rng_path, &mut got));
                    assert_eq!(got, reference, "{label} block_len {block_len} {path:?}");
                    assert_eq!(
                        rng_path.next_u64(),
                        state_ref,
                        "{label} block_len {block_len} {path:?}: RNG state diverged"
                    );
                }
            }
        }
    }

    /// The integer probe threshold is the exact ceiling of `prob · 2⁵³`:
    /// spot-check the boundary algebra the SWAR/AVX2 select relies on.
    #[test]
    fn integer_probe_matches_float_probe_at_boundaries() {
        let t = AliasTable::new(&[0.25, 0.75]).unwrap();
        for (i, (&p, &thr)) in t.prob.iter().zip(&t.thresh53).enumerate() {
            // The probe accepts y iff (y >> 11) < thr; check equivalence
            // at thr − 1, thr, thr + 1 (clamped into the 53-bit domain).
            for y53 in [thr.saturating_sub(1), thr, (thr + 1).min((1 << 53) - 1)] {
                let f = y53 as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(
                    f < p,
                    y53 < thr,
                    "slot {i}: float/integer probes disagree at y53 = {y53}"
                );
            }
        }
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.1]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut rng = rng("gamma");
        for shape in [0.5, 1.0, 2.5, 10.0] {
            let n = 60_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.12 * shape.max(1.0),
                "gamma({shape}) sample mean {mean}"
            );
        }
    }

    #[test]
    fn beta_sampler_moments() {
        let mut rng = rng("beta");
        let (a, b) = (3.0, 7.0);
        let n = 60_000;
        let mean: f64 = (0..n).map(|_| sample_beta(a, b, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - a / (a + b)).abs() < 0.01, "beta mean {mean}");
    }

    #[test]
    fn beta_split_binomial_moments_large_n() {
        let mut rng = rng("betasplit");
        let (n, p) = (10_000_000u64, 0.3);
        let reps = 3_000;
        let mean: f64 = (0..reps)
            .map(|_| sample_binomial(n, p, &mut rng) as f64)
            .sum::<f64>()
            / reps as f64;
        let expect = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Sample mean of `reps` draws has sd = sd/sqrt(reps); allow 5 sigma.
        assert!(
            (mean - expect).abs() < 5.0 * sd / (reps as f64).sqrt(),
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn beta_split_matches_direct_distribution() {
        // Kolmogorov–Smirnov-style comparison between beta-splitting and
        // direct Bernoulli counting at a moderate n where both are exact.
        let n = 200u64;
        let p = 0.47;
        let reps = 40_000;
        let mut rng = rng("ks");
        let mut counts_split = vec![0u32; (n + 1) as usize];
        let mut counts_direct = vec![0u32; (n + 1) as usize];
        for _ in 0..reps {
            counts_split[sample_binomial(n, p, &mut rng) as usize] += 1;
            let mut c = 0usize;
            for _ in 0..n {
                if rng.gen::<f64>() < p {
                    c += 1;
                }
            }
            counts_direct[c] += 1;
        }
        let mut cdf_a = 0.0;
        let mut cdf_b = 0.0;
        let mut ks: f64 = 0.0;
        for k in 0..=n as usize {
            cdf_a += counts_split[k] as f64 / reps as f64;
            cdf_b += counts_direct[k] as f64 / reps as f64;
            ks = ks.max((cdf_a - cdf_b).abs());
        }
        // Two-sample KS critical value at alpha=1e-3 ~ 1.95*sqrt(2/reps).
        let crit = 1.95 * (2.0 / reps as f64).sqrt();
        assert!(ks < crit, "KS statistic {ks} exceeds {crit}");
    }

    #[test]
    fn sampler_regimes_agree_with_distribution_mean() {
        let mut rng = rng("sampler");
        for (n, p) in [(10u64, 0.5), (2000, 0.2), (5000, 0.7)] {
            let s = BinomialSampler::new(n, p).unwrap();
            let reps = 20_000;
            let mean: f64 = (0..reps).map(|_| s.sample(&mut rng) as f64).sum::<f64>() / reps as f64;
            let expect = n as f64 * p;
            let tol = 5.0 * (n as f64 * p * (1.0 - p)).sqrt() / (reps as f64).sqrt();
            assert!(
                (mean - expect).abs() < tol,
                "({n},{p}) mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn sampler_degenerate() {
        let mut rng = rng("degen");
        let s0 = BinomialSampler::new(9, 0.0).unwrap();
        let s1 = BinomialSampler::new(9, 1.0).unwrap();
        for _ in 0..10 {
            assert_eq!(s0.sample(&mut rng), 0);
            assert_eq!(s1.sample(&mut rng), 9);
        }
    }

    #[test]
    fn reg_inc_beta_boundaries() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform CDF).
        for x in [0.1, 0.5, 0.9] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }
}
