//! Streaming and batch summary statistics: Welford moments, quantiles,
//! confidence intervals, and success-rate estimation with Wilson intervals.

use crate::error::StatsError;
use crate::normal::normal_quantile;
use serde::{Deserialize, Serialize};

/// Numerically stable streaming accumulator for mean and variance
/// (Welford's algorithm), plus min/max tracking.
///
/// # Example
///
/// ```
/// use fet_stats::summary::WelfordAccumulator;
///
/// let mut acc = WelfordAccumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WelfordAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl WelfordAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WelfordAccumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &WelfordAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (dividing by `n`); 0 when fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (dividing by `n − 1`); 0 when fewer than 2.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observed value; `+∞` for an empty accumulator.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value; `−∞` for an empty accumulator.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// confidence level, e.g. `0.95`.
    ///
    /// # Panics
    ///
    /// Panics when `level ∉ (0, 1)`.
    pub fn mean_ci(&self, level: f64) -> (f64, f64) {
        let z = normal_quantile(0.5 + level / 2.0);
        let half = z * self.standard_error();
        (self.mean - half, self.mean + half)
    }
}

impl Extend<f64> for WelfordAccumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Batch summary of a sample: moments plus exact order statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty slice and
    /// [`StatsError::NotFinite`] if any value is NaN/infinite.
    pub fn from_slice(values: &[f64]) -> Result<Self, StatsError> {
        if values.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "summary sample",
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NotFinite { name: "values" });
        }
        let mut acc = WelfordAccumulator::new();
        acc.extend(values.iter().copied());
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values checked finite"));
        Ok(Summary {
            count: values.len(),
            mean: acc.mean(),
            std: acc.sample_std(),
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            sorted,
        })
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (unbiased).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Empirical quantile by linear interpolation, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile requires q in [0,1], got {q}"
        );
        if self.count == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.count - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Wilson score interval for a binomial proportion — the right interval for
/// success rates near 0 or 1 (where convergence experiments live).
///
/// Returns `(low, high)` at confidence `level`.
///
/// # Panics
///
/// Panics when `successes > trials`, `trials == 0`, or `level ∉ (0, 1)`.
///
/// # Example
///
/// ```
/// use fet_stats::summary::wilson_interval;
///
/// let (lo, hi) = wilson_interval(99, 100, 0.95);
/// assert!(lo > 0.93 && hi <= 1.0);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, level: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson_interval requires trials > 0");
    assert!(successes <= trials, "successes exceed trials");
    let z = normal_quantile(0.5 + level / 2.0);
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (phat + z2 / (2.0 * n)) / denom;
    let half = z * (phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_constant_sequence_zero_variance() {
        let mut acc = WelfordAccumulator::new();
        acc.extend(std::iter::repeat_n(3.5, 100));
        assert_eq!(acc.mean(), 3.5);
        assert!(acc.sample_variance().abs() < 1e-12);
        assert_eq!(acc.min(), 3.5);
        assert_eq!(acc.max(), 3.5);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = WelfordAccumulator::new();
        seq.extend(data.iter().copied());
        let mut a = WelfordAccumulator::new();
        let mut b = WelfordAccumulator::new();
        a.extend(data[..333].iter().copied());
        b.extend(data[333..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-8);
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut a = WelfordAccumulator::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&WelfordAccumulator::new());
        assert_eq!(a, before);
        let mut e = WelfordAccumulator::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_quantiles() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.quantile(0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_slice(&[]).is_err());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn summary_single_element() {
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.quantile(0.9), 7.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn mean_ci_shrinks_with_samples() {
        let mut small = WelfordAccumulator::new();
        let mut large = WelfordAccumulator::new();
        for i in 0..100 {
            small.push((i % 10) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 10) as f64);
        }
        let (lo_s, hi_s) = small.mean_ci(0.95);
        let (lo_l, hi_l) = large.mean_ci(0.95);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for (s, t) in [(0u64, 10u64), (5, 10), (10, 10), (999, 1000)] {
            let (lo, hi) = wilson_interval(s, t, 0.95);
            let phat = s as f64 / t as f64;
            assert!(lo <= phat + 1e-12 && phat <= hi + 1e-12, "({s},{t})");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_never_degenerate_at_extremes() {
        let (lo, hi) = wilson_interval(10, 10, 0.95);
        assert!(lo < 1.0, "upper extreme must keep uncertainty");
        assert_eq!(hi, 1.0);
        let (lo0, hi0) = wilson_interval(0, 10, 0.95);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0);
    }
}
