//! Streaming aggregates and the final sweep report.
//!
//! Two tiers with different determinism obligations:
//!
//! * **Incremental** ([`SweepAggregates`]) — updated as episodes complete,
//!   in completion order, to drive the progress line. Only order-invariant
//!   accumulators live here (integer counts and histogram bins), so the
//!   numbers shown are exact regardless of scheduling — but nothing
//!   order-sensitive (running means, variances) is computed on this path.
//! * **Final** ([`render_report`]) — computed once from the full record
//!   set in episode-index order. Float reductions (means, quantiles) are
//!   deterministic because the reduction order is pinned by the spec's
//!   enumeration, never by which worker finished first.

use crate::spec::{EpisodeRecord, SweepSpec};
use fet_plot::heatmap::Heatmap;
use fet_plot::table::{fmt_float, Table};
use fet_sim::simulation::default_max_rounds;
use fet_stats::histogram::Histogram;
use fet_stats::summary::{wilson_interval, Summary};
use std::fmt::Write as _;

/// Order-invariant live aggregates for the progress line.
pub struct SweepAggregates {
    total: u64,
    done: u64,
    converged: u64,
    /// Convergence-time histogram across every converged episode.
    times: Histogram,
}

impl SweepAggregates {
    /// Fresh aggregates for a spec; the histogram spans `[0, max_rounds)`
    /// of the largest cell.
    pub fn new(spec: &SweepSpec) -> SweepAggregates {
        let horizon = spec.max_rounds.unwrap_or_else(|| {
            spec.n
                .iter()
                .map(|&n| default_max_rounds(n))
                .max()
                .unwrap_or(1)
        });
        let times = Histogram::new(0.0, horizon.max(1) as f64, 32)
            .expect("positive finite histogram bounds");
        SweepAggregates {
            total: spec.episode_count(),
            done: 0,
            converged: 0,
            times,
        }
    }

    /// Folds one completed episode in (any order).
    pub fn record(&mut self, record: &EpisodeRecord) {
        self.done += 1;
        if let Some(t) = record.report.converged_at {
            self.converged += 1;
            self.times.record(t as f64);
        }
    }

    /// Episodes folded so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Total episodes in the sweep.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Converged episodes so far.
    pub fn converged(&self) -> u64 {
        self.converged
    }

    /// The live convergence-time histogram.
    pub fn times(&self) -> &Histogram {
        &self.times
    }

    /// One-line progress summary: `episodes 37/60 | converged 35 | 12.3 ep/s`.
    pub fn progress_line(&self, elapsed_secs: f64) -> String {
        let rate = if elapsed_secs > 0.0 {
            self.done as f64 / elapsed_secs
        } else {
            0.0
        };
        format!(
            "episodes {}/{} | converged {} | {} ep/s",
            self.done,
            self.total,
            self.converged,
            fmt_float(rate)
        )
    }
}

/// The rendered artifacts of a finished sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-cell convergence table.
    pub table: String,
    /// `noise × n` mean-convergence-time heatmap, when the grid is 2-D.
    pub heatmap: Option<String>,
    /// Text histogram of convergence times across all episodes.
    pub histogram: String,
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)?;
        if let Some(h) = &self.heatmap {
            write!(f, "\n{h}")?;
        }
        write!(f, "\n{}", self.histogram)
    }
}

/// Renders the final report from records in episode-index order.
///
/// `records` must be sorted by episode index and contain each episode at
/// most once (the manifest guarantees both); determinism of every float
/// in the output follows from that ordering.
pub fn render_report(spec: &SweepSpec, records: &[EpisodeRecord]) -> SweepReport {
    let cells = spec.cell_count();
    // Partition records by cell, preserving episode order within a cell.
    let mut by_cell: Vec<Vec<&EpisodeRecord>> = vec![Vec::new(); cells as usize];
    for r in records {
        let cell = r.episode / spec.seeds.count;
        if cell < cells {
            by_cell[cell as usize].push(r);
        }
    }

    let mut table = Table::new(
        [
            "n",
            "noise",
            "ell",
            "episodes",
            "converged",
            "rate 95% CI",
            "mean T",
            "median T",
            "p95 T",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut mean_by_cell: Vec<f64> = Vec::with_capacity(cells as usize);
    for (cell_index, cell_records) in by_cell.iter().enumerate() {
        let cell = spec.cell(cell_index as u64);
        let ell = spec.cell_ell(&cell);
        let episodes = cell_records.len() as u64;
        let times: Vec<f64> = cell_records
            .iter()
            .filter_map(|r| r.report.converged_at.map(|t| t as f64))
            .collect();
        let converged = times.len() as u64;
        let (lo, hi) = wilson_interval(converged, episodes.max(1), 0.95);
        let (mean, median, p95) = match Summary::from_slice(&times) {
            Ok(s) => (s.mean(), s.median(), s.quantile(0.95)),
            Err(_) => (f64::NAN, f64::NAN, f64::NAN),
        };
        mean_by_cell.push(mean);
        table.add_row(vec![
            cell.n.to_string(),
            fmt_float(cell.noise),
            ell.to_string(),
            episodes.to_string(),
            format!("{converged}/{episodes}"),
            format!("[{}, {}]", fmt_float(lo), fmt_float(hi)),
            fmt_cell(mean),
            fmt_cell(median),
            fmt_cell(p95),
        ]);
    }

    // A 2-D heatmap needs exactly the n × noise plane (a third ℓ axis
    // would alias cells into the same pixel).
    let heatmap = if spec.n.len() > 1 && spec.noise.len() > 1 && spec.ell.len() <= 1 {
        let ells = spec.ell.len().max(1);
        let rows: Vec<Vec<f64>> = spec
            .noise
            .iter()
            .enumerate()
            .map(|(noise_i, _)| {
                spec.n
                    .iter()
                    .enumerate()
                    .map(|(n_i, _)| {
                        let cell = (n_i * spec.noise.len() + noise_i) * ells;
                        let v = mean_by_cell[cell];
                        if v.is_nan() {
                            0.0
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let mut hm = Heatmap::new(rows);
        hm.title("mean convergence rounds (rows: noise ↑, cols: n →)");
        Some(hm.render_flipped())
    } else {
        None
    };

    // Histogram over all episodes, rebuilt from the ordered records so
    // the artifact never depends on the live accumulator's history.
    let mut aggregates = SweepAggregates::new(spec);
    for r in records {
        aggregates.record(r);
    }
    let mut histogram = String::new();
    let _ = writeln!(
        histogram,
        "convergence times ({} of {} episodes converged):",
        aggregates.converged(),
        aggregates.done()
    );
    let peak = aggregates
        .times()
        .iter()
        .map(|(_, _, c)| c)
        .max()
        .unwrap_or(0)
        .max(1);
    for (lo, hi, count) in aggregates.times().iter() {
        if count == 0 {
            continue;
        }
        let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
        let _ = writeln!(
            histogram,
            "  [{:>8}, {:>8}) {:>6}  {bar}",
            fmt_float(lo),
            fmt_float(hi),
            count
        );
    }
    if aggregates.times().overflow() > 0 {
        let _ = writeln!(histogram, "  overflow {:>6}", aggregates.times().overflow());
    }

    SweepReport {
        table: table.render(),
        heatmap,
        histogram,
    }
}

fn fmt_cell(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        fmt_float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::WarmCache;

    fn run_all(spec: &SweepSpec) -> Vec<EpisodeRecord> {
        let cache = WarmCache::new();
        (0..spec.episode_count())
            .map(|i| spec.run_episode(i, &cache).unwrap())
            .collect()
    }

    #[test]
    fn progress_counts_are_order_invariant() {
        let spec = SweepSpec::single_cell(100, 3, 6);
        let records = run_all(&spec);
        let mut forward = SweepAggregates::new(&spec);
        let mut backward = SweepAggregates::new(&spec);
        for r in &records {
            forward.record(r);
        }
        for r in records.iter().rev() {
            backward.record(r);
        }
        assert_eq!(forward.done(), backward.done());
        assert_eq!(forward.converged(), backward.converged());
        let f: Vec<_> = forward.times().iter().collect();
        let b: Vec<_> = backward.times().iter().collect();
        assert_eq!(f, b, "histogram bins are order-invariant");
    }

    #[test]
    fn report_is_deterministic_text() {
        let spec = crate::spec::SweepSpec::parse(
            r#"{"n": [80, 120], "noise": [0, 0.1], "seeds": {"count": 2}, "max_rounds": 3000}"#,
        )
        .unwrap();
        let records = run_all(&spec);
        let a = render_report(&spec, &records).to_string();
        let b = render_report(&spec, &records).to_string();
        assert_eq!(a, b);
        assert!(a.contains("episodes"), "{a}");
        assert!(
            a.contains("mean convergence rounds"),
            "2-D grid renders a heatmap\n{a}"
        );
    }

    #[test]
    fn one_dimensional_grid_skips_the_heatmap() {
        let spec = SweepSpec::single_cell(100, 0, 2);
        let records = run_all(&spec);
        let report = render_report(&spec, &records);
        assert!(report.heatmap.is_none());
    }
}
