//! A minimal, deterministic JSON value: parser and serializer.
//!
//! The workspace's `serde` is an offline no-op stand-in (see
//! `vendor/serde`), so the sweep engine's three wire formats — spec files,
//! the JSON-lines checkpoint manifest, and the `fet serve` protocol —
//! are built on this hand-rolled value type instead. Two properties the
//! sweep engine leans on:
//!
//! * **Deterministic serialization.** Objects keep insertion order and
//!   numbers format via Rust's shortest-roundtrip `Display`, so the same
//!   value always serializes to the same bytes — the foundation of the
//!   byte-diffable manifest contract.
//! * **Fixed-point canonicalization.** `parse(s).to_string()` is a fixed
//!   point: re-parsing a serialized value and serializing again yields
//!   identical bytes (integral floats collapse to integer literals on the
//!   first round trip and stay there).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed as an integer literal.
    Int(i64),
    /// A number with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered (serialization is deterministic, and
    /// key order is part of the canonical byte format).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= 2f64.powi(53) => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64 if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Wraps an f64, collapsing integral values into the canonical integer
    /// form so serialization is a fixed point.
    pub fn from_f64(f: f64) -> Json {
        if f.is_finite() && f.fract() == 0.0 && f.abs() <= 2f64.powi(53) {
            Json::Int(f as i64)
        } else {
            Json::Float(f)
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            // JSON has no Inf/NaN; these never arise from parsing, and the
            // sweep engine never emits them, but Display must stay total.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, carrying the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by any sweep
                            // format; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid number `{text}`")))?;
            Ok(Json::from_f64(f))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("integer out of range `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Int(1000));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "nul"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = Json::parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn serialization_is_a_fixed_point() {
        let texts = [
            r#"{"n":[1000,2000],"noise":[0,0.02],"seeds":{"base":0,"count":4}}"#,
            r#"[1,2.5,"quote\"inside",null,true]"#,
        ];
        for t in texts {
            let once = Json::parse(t).unwrap().to_string();
            let twice = Json::parse(&once).unwrap().to_string();
            assert_eq!(once, twice, "canonicalization must be idempotent");
        }
    }

    #[test]
    fn integral_floats_collapse_to_ints() {
        assert_eq!(Json::parse("4.0").unwrap(), Json::Int(4));
        assert_eq!(Json::parse("4.0").unwrap().to_string(), "4");
        assert_eq!(Json::from_f64(1.0), Json::Int(1));
        assert_eq!(Json::from_f64(0.5), Json::Float(0.5));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn accessors_handle_numbers_uniformly() {
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(-7).as_u64(), None);
        assert_eq!(Json::Float(0.5).as_u64(), None);
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
    }
}
