//! `fet serve`: a long-running sweep daemon over hand-rolled HTTP/1.1.
//!
//! The daemon multiplexes any number of client-submitted sweeps onto one
//! shared worker pool and one shared [`WarmCache`]. Protocol:
//!
//! * `POST /sweep` with a spec document as the body — validates the spec
//!   (`400` with a JSON error on failure), then streams newline-delimited
//!   JSON: one [`EpisodeRecord`] line per completed episode in completion
//!   order, then a `{"done": true, …}` footer. The response uses
//!   `Connection: close`; the stream *is* the result.
//! * `GET /status` — one JSON object: queue depth, active submissions,
//!   completed-episode and throughput counters, worker count.
//!
//! **Fairness policy.** Workers claim one episode at a time, round-robin
//! across active submissions. A submission's episodes are claimed in
//! episode-index order, so two concurrent clients each see steady
//! progress — a big sweep cannot starve a small one behind it, and a
//! small sweep finishes in time proportional to its own size. Episode
//! results are pure functions of the submission's spec, so multiplexing
//! never changes what any client receives, only when.
//!
//! A disconnected client (failed write) cancels its submission's queued
//! episodes; in-flight ones finish and are discarded.

use crate::cache::WarmCache;
use crate::error::SweepError;
use crate::json::Json;
use crate::spec::{EpisodeRecord, SweepSpec};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted `POST /sweep` body. Specs are small JSON documents;
/// the cap exists so a bogus `Content-Length` cannot make the daemon
/// allocate unbounded memory.
const MAX_BODY_BYTES: usize = 1 << 20;

/// One client-submitted sweep.
struct Submission {
    id: u64,
    spec: Arc<SweepSpec>,
    /// Episodes not yet claimed, in index order.
    pending: VecDeque<u64>,
    /// Episodes claimed but not yet delivered.
    outstanding: usize,
    /// Channel to the connection handler streaming this submission.
    tx: mpsc::Sender<EpisodeRecord>,
}

#[derive(Default)]
struct Queue {
    submissions: Vec<Submission>,
    /// Round-robin cursor over `submissions`.
    cursor: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
    cache: WarmCache,
    completed: AtomicU64,
    submitted: AtomicU64,
    workers: usize,
}

/// A bound, running daemon. Dropping it shuts the pool and listener down.
pub struct SweepServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl SweepServer {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an
    /// ephemeral port) and starts `workers` episode workers plus an
    /// accept loop.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, workers: usize) -> Result<SweepServer, SweepError> {
        let workers = workers.max(1);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            work_ready: Condvar::new(),
            cache: WarmCache::new(),
            completed: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            workers,
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
        }
        Ok(SweepServer {
            addr: local,
            shared,
            threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks the calling thread until the process is killed — the
    /// `fet serve` foreground mode.
    pub fn run_forever(&self) -> ! {
        loop {
            std::thread::park();
        }
    }
}

impl Drop for SweepServer {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
            // Dropping the submissions drops their senders, so any
            // connection handler blocked on its stream unblocks too.
            q.submissions.clear();
        }
        self.shared.work_ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.queue.lock().expect("queue poisoned").shutdown {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                // One thread per connection: connections are few (this is
                // a lab daemon, not an internet service) and each may
                // block on streaming for the lifetime of a sweep.
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

/// One worker: claim one episode round-robin, run it, deliver it.
fn worker_loop(shared: &Shared) {
    loop {
        let claimed = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(claim) = claim_next(&mut q) {
                    break claim;
                }
                q = shared.work_ready.wait(q).expect("queue poisoned");
            }
        };
        let (id, spec, episode, tx) = claimed;
        let result = spec.run_episode(episode, &shared.cache);
        let mut q = shared.queue.lock().expect("queue poisoned");
        let Some(pos) = q.submissions.iter().position(|s| s.id == id) else {
            continue; // cancelled while we ran
        };
        q.submissions[pos].outstanding -= 1;
        let delivered = match result {
            Ok(record) => tx.send(record).is_ok(),
            // A validated spec cannot fail per-episode; if it somehow
            // does, dropping the channel signals the client via a short
            // stream (footer count < expected).
            Err(_) => false,
        };
        if delivered {
            shared.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            q.submissions[pos].pending.clear();
        }
        if q.submissions[pos].pending.is_empty() && q.submissions[pos].outstanding == 0 {
            q.submissions.remove(pos); // drops the primary sender → EOF for the handler
        }
    }
}

type Claim = (u64, Arc<SweepSpec>, u64, mpsc::Sender<EpisodeRecord>);

/// Round-robin over submissions with queued episodes; one episode per
/// claim is the fairness granularity.
fn claim_next(q: &mut Queue) -> Option<Claim> {
    let len = q.submissions.len();
    for step in 0..len {
        let i = (q.cursor + step) % len;
        if let Some(episode) = q.submissions[i].pending.pop_front() {
            q.submissions[i].outstanding += 1;
            q.cursor = (i + 1) % len;
            let s = &q.submissions[i];
            return Some((s.id, Arc::clone(&s.spec), episode, s.tx.clone()));
        }
    }
    None
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut stream = stream;
    match (method.as_str(), path.as_str()) {
        ("GET", "/status") => {
            let body = status_json(shared).to_string();
            respond(&mut stream, 200, "application/json", &body)
        }
        ("POST", "/sweep") => {
            if content_length > MAX_BODY_BYTES {
                let err = Json::object([(
                    "error",
                    Json::Str(format!(
                        "request body of {content_length} bytes exceeds the \
                         {MAX_BODY_BYTES}-byte limit"
                    )),
                )])
                .to_string();
                return respond(&mut stream, 413, "application/json", &err);
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let text = String::from_utf8_lossy(&body);
            match SweepSpec::parse(&text) {
                Err(e) => {
                    let err = Json::object([("error", Json::Str(e.to_string()))]).to_string();
                    respond(&mut stream, 400, "application/json", &err)
                }
                Ok(spec) => stream_sweep(&mut stream, shared, spec),
            }
        }
        ("GET", _) | ("POST", _) => respond(
            &mut stream,
            404,
            "application/json",
            &Json::object([("error", Json::Str("unknown path".into()))]).to_string(),
        ),
        _ => respond(
            &mut stream,
            405,
            "application/json",
            &Json::object([("error", Json::Str("method not allowed".into()))]).to_string(),
        ),
    }
}

/// Enqueues a submission and streams its results as NDJSON.
fn stream_sweep(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    spec: SweepSpec,
) -> std::io::Result<()> {
    let expected = spec.episode_count();
    let (tx, rx) = mpsc::channel();
    let id = shared.submitted.fetch_add(1, Ordering::Relaxed);
    {
        let mut q = shared.queue.lock().expect("queue poisoned");
        q.submissions.push(Submission {
            id,
            spec: Arc::new(spec),
            pending: (0..expected).collect(),
            outstanding: 0,
            tx,
        });
    }
    shared.work_ready.notify_all();

    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut delivered = 0u64;
    let mut converged = 0u64;
    // The loop ends when the worker pool removes the submission (all
    // episodes delivered) and the last sender drops.
    while let Ok(record) = rx.recv() {
        delivered += 1;
        if record.report.converged_at.is_some() {
            converged += 1;
        }
        let line = record.to_json().to_string();
        if writeln!(stream, "{line}")
            .and_then(|()| stream.flush())
            .is_err()
        {
            // Client went away: stop reading; pending episodes are
            // cancelled by the next failed worker send.
            drop(rx);
            return Ok(());
        }
    }
    let footer = Json::object([
        ("done", Json::Bool(delivered == expected)),
        ("episodes", Json::Int(delivered as i64)),
        ("expected", Json::Int(expected as i64)),
        ("converged", Json::Int(converged as i64)),
    ])
    .to_string();
    writeln!(stream, "{footer}")?;
    stream.flush()
}

fn status_json(shared: &Shared) -> Json {
    let q = shared.queue.lock().expect("queue poisoned");
    let queued: usize = q.submissions.iter().map(|s| s.pending.len()).sum();
    let in_flight: usize = q.submissions.iter().map(|s| s.outstanding).sum();
    Json::object([
        ("queue_depth", Json::Int(queued as i64)),
        ("in_flight", Json::Int(in_flight as i64)),
        ("active_submissions", Json::Int(q.submissions.len() as i64)),
        (
            "submitted",
            Json::Int(shared.submitted.load(Ordering::Relaxed) as i64),
        ),
        (
            "completed_episodes",
            Json::Int(shared.completed.load(Ordering::Relaxed) as i64),
        ),
        ("workers", Json::Int(shared.workers as i64)),
        (
            "protocols_cached",
            Json::Int(shared.cache.protocols_cached() as i64),
        ),
        (
            "graphs_cached",
            Json::Int(shared.cache.graphs_cached() as i64),
        ),
    ])
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        _ => "Method Not Allowed",
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_answers_before_any_submission() {
        let server = SweepServer::bind("127.0.0.1:0", 1).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        write!(conn, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("\"queue_depth\":0"), "{response}");
    }

    #[test]
    fn oversized_body_is_rejected_before_allocation() {
        let server = SweepServer::bind("127.0.0.1:0", 1).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        write!(
            conn,
            "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 100000000000\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    }

    #[test]
    fn unknown_path_is_404() {
        let server = SweepServer::bind("127.0.0.1:0", 1).unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        write!(conn, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }
}
