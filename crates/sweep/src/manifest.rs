//! The on-disk checkpoint a sweep can be killed and resumed from.
//!
//! A manifest is a JSON-lines file. The first line is a header naming
//! the format version and the spec (by hash and by canonical body); each
//! following line is one completed [`EpisodeRecord`].
//!
//! Two phases with different write disciplines:
//!
//! * **Journal** — while the sweep runs, records append in *completion*
//!   order, flushed per line. A kill can truncate at most the final
//!   line, which the loader tolerates and drops. Completion order is
//!   scheduling-dependent, so a journal is not canonical — it is a crash
//!   log, not an artifact.
//! * **Canonical** — when every episode is present, [`Manifest::finalize`]
//!   rewrites the file with records sorted by episode index and marks the
//!   header complete. Because each record is a pure function of its
//!   episode index, the canonical bytes are identical whatever the worker
//!   count and however many kill/resume cycles preceded them.

use crate::error::SweepError;
use crate::json::Json;
use crate::spec::{EpisodeRecord, SweepSpec};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Format version stamped into headers; bumped on incompatible change.
pub const MANIFEST_VERSION: i64 = 1;

/// An open manifest: the journal file plus the set of episodes already
/// recorded in it.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    journal: File,
    /// Completed records keyed by episode index (deduplicated: the first
    /// record for an index wins, matching replay semantics).
    records: BTreeMap<u64, EpisodeRecord>,
    complete: bool,
}

impl Manifest {
    /// Opens `path` for the given spec, creating it with a fresh header
    /// when absent, or loading completed episodes when resuming.
    ///
    /// # Errors
    ///
    /// [`SweepError::ManifestMismatch`] when the file belongs to a
    /// different spec, [`SweepError::Spec`] when the header is
    /// malformed, [`SweepError::Io`] on filesystem failure.
    pub fn open(path: &Path, spec: &SweepSpec) -> Result<Manifest, SweepError> {
        let expected = spec.hash();
        let mut records = BTreeMap::new();
        let mut complete = false;
        // Byte length of the trusted prefix: header plus every intact
        // record line. Anything past it is a kill-mid-write remnant and
        // is truncated away before appends resume, so a resumed journal
        // never writes onto a damaged partial line.
        let mut valid_len = 0u64;
        if path.exists() {
            let data = std::fs::read(path)?;
            // (content, end offset past the newline, newline-terminated).
            let mut lines: Vec<(&[u8], u64, bool)> = Vec::new();
            let mut start = 0usize;
            while start < data.len() {
                let end = data[start..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(data.len(), |i| start + i + 1);
                let intact = data[end - 1] == b'\n';
                let content = &data[start..end - usize::from(intact)];
                lines.push((content, end as u64, intact));
                start = end;
            }
            let parse_header = |(content, _, intact): (&[u8], u64, bool)| {
                if !intact {
                    return Err(SweepError::spec("manifest header: unterminated line"));
                }
                let text = std::str::from_utf8(content)
                    .map_err(|_| SweepError::spec("manifest header: not UTF-8"))?;
                Json::parse(text).map_err(|e| SweepError::spec(format!("manifest header: {e}")))
            };
            match lines.first().copied().map(parse_header) {
                None => {}
                // A kill can land mid-write of the header itself. With no
                // record lines after it, nothing was lost: treat the file
                // as empty and rewrite the header fresh.
                Some(Err(_)) if lines.len() == 1 => {}
                Some(Err(e)) => return Err(e),
                Some(Ok(header)) => {
                    let found = header
                        .get("spec_hash")
                        .and_then(Json::as_str)
                        .ok_or_else(|| SweepError::spec("manifest header missing `spec_hash`"))?
                        .to_string();
                    if found != expected {
                        return Err(SweepError::ManifestMismatch { found, expected });
                    }
                    complete = header
                        .get("complete")
                        .and_then(Json::as_bool)
                        .unwrap_or(false);
                    valid_len = lines[0].1;
                    let last = lines.len() - 1;
                    for (i, &(content, end, intact)) in lines.iter().enumerate().skip(1) {
                        if content.iter().all(u8::is_ascii_whitespace) {
                            if intact {
                                valid_len = end;
                            }
                            continue;
                        }
                        match std::str::from_utf8(content)
                            .map_err(|_| SweepError::spec("record line is not UTF-8"))
                            .and_then(|text| Json::parse(text).map_err(SweepError::from))
                            .and_then(|v| EpisodeRecord::from_json(&v))
                        {
                            Ok(record) if intact => {
                                records.entry(record.episode).or_insert(record);
                                valid_len = end;
                            }
                            // An unterminated final record parsed only by
                            // luck of where the kill landed; drop it too —
                            // the episode reruns deterministically.
                            Ok(_) => {}
                            // Only the final line may be damaged — that is
                            // the kill-mid-write signature. Damage anywhere
                            // else means the file is not ours to trust.
                            Err(_) if i == last => {}
                            Err(e) => {
                                return Err(SweepError::spec(format!(
                                    "manifest line {} is corrupt: {e}",
                                    i + 1
                                )));
                            }
                        }
                    }
                }
            }
            if data.len() as u64 > valid_len {
                let damaged = OpenOptions::new().write(true).open(path)?;
                damaged.set_len(valid_len)?;
                damaged.sync_all()?;
            }
        }
        let mut journal = OpenOptions::new().create(true).append(true).open(path)?;
        if valid_len == 0 {
            let header = header_json(spec, false);
            writeln!(journal, "{header}")?;
            journal.flush()?;
        }
        Ok(Manifest {
            path: path.to_path_buf(),
            journal,
            records,
            complete,
        })
    }

    /// Episode indices already completed (sorted ascending).
    pub fn completed(&self) -> impl Iterator<Item = u64> + '_ {
        self.records.keys().copied()
    }

    /// `true` when `episode` is already recorded.
    pub fn contains(&self, episode: u64) -> bool {
        self.records.contains_key(&episode)
    }

    /// Number of completed episodes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no episodes are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when a previous run finalized this manifest.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The records, in episode-index order.
    pub fn records(&self) -> impl Iterator<Item = &EpisodeRecord> {
        self.records.values()
    }

    /// Appends one completed episode to the journal, flushed before
    /// return so a later kill cannot lose it.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on write failure.
    pub fn append(&mut self, record: EpisodeRecord) -> Result<(), SweepError> {
        if self.records.contains_key(&record.episode) {
            return Ok(());
        }
        writeln!(self.journal, "{}", record.to_json())?;
        self.journal.flush()?;
        self.records.insert(record.episode, record);
        Ok(())
    }

    /// Rewrites the manifest in canonical form: complete header, then
    /// records sorted by episode index. Written via a temporary sibling
    /// file and rename, so a kill during finalize leaves either the old
    /// journal or the finished artifact, never a half-written file.
    ///
    /// # Errors
    ///
    /// [`SweepError::Spec`] when called before every episode completed,
    /// [`SweepError::Io`] on filesystem failure.
    pub fn finalize(&mut self, spec: &SweepSpec) -> Result<(), SweepError> {
        let expected = spec.episode_count();
        if self.records.len() as u64 != expected {
            return Err(SweepError::spec(format!(
                "cannot finalize: {} of {expected} episodes recorded",
                self.records.len()
            )));
        }
        let tmp_path = self.path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            writeln!(tmp, "{}", header_json(spec, true))?;
            for record in self.records.values() {
                writeln!(tmp, "{}", record.to_json())?;
            }
            tmp.flush()?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen the journal handle onto the canonical file so further
        // appends (there should be none) do not resurrect the old inode.
        self.journal = OpenOptions::new().append(true).open(&self.path)?;
        self.complete = true;
        Ok(())
    }

    /// The canonical bytes of the manifest as currently on disk.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on read failure.
    pub fn bytes(&self) -> Result<Vec<u8>, SweepError> {
        let mut f = File::open(&self.path)?;
        f.seek(std::io::SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

fn header_json(spec: &SweepSpec, complete: bool) -> Json {
    let mut members = vec![
        (
            "fet_sweep_manifest".to_string(),
            Json::Int(MANIFEST_VERSION),
        ),
        ("spec_hash".to_string(), Json::Str(spec.hash())),
        (
            "episodes".to_string(),
            Json::Int(spec.episode_count() as i64),
        ),
        ("spec".to_string(), spec.to_json()),
    ];
    if complete {
        members.push(("complete".to_string(), Json::Bool(true)));
    }
    Json::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::WarmCache;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fet-sweep-manifest-{name}-{}", std::process::id()));
        p
    }

    fn run_records(spec: &SweepSpec, upto: u64) -> Vec<EpisodeRecord> {
        let cache = WarmCache::new();
        (0..upto)
            .map(|i| spec.run_episode(i, &cache).unwrap())
            .collect()
    }

    #[test]
    fn journal_resumes_and_finalizes_canonically() {
        let spec = SweepSpec::single_cell(100, 1, 4);
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 4);

        // Uninterrupted reference run.
        let mut reference = Manifest::open(&path, &spec).unwrap();
        for r in &records {
            reference.append(r.clone()).unwrap();
        }
        reference.finalize(&spec).unwrap();
        let want = reference.bytes().unwrap();
        std::fs::remove_file(&path).unwrap();

        // Interrupted run: two episodes (completion order scrambled),
        // then "kill", then resume and finish.
        let mut first = Manifest::open(&path, &spec).unwrap();
        first.append(records[2].clone()).unwrap();
        first.append(records[0].clone()).unwrap();
        drop(first);
        let mut resumed = Manifest::open(&path, &spec).unwrap();
        assert_eq!(resumed.completed().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!resumed.is_complete());
        resumed.append(records[3].clone()).unwrap();
        resumed.append(records[1].clone()).unwrap();
        resumed.finalize(&spec).unwrap();
        assert_eq!(
            resumed.bytes().unwrap(),
            want,
            "byte-identical after resume"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 2);
        let mut m = Manifest::open(&path, &spec).unwrap();
        m.append(records[0].clone()).unwrap();
        m.append(records[1].clone()).unwrap();
        drop(m);
        // Emulate a kill mid-write: chop the file mid final line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();
        let reopened = Manifest::open(&path, &spec).unwrap();
        assert_eq!(reopened.completed().collect::<Vec<_>>(), vec![0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_truncated_line_keeps_journal_clean() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("retruncate");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 3);
        let mut m = Manifest::open(&path, &spec).unwrap();
        m.append(records[0].clone()).unwrap();
        m.append(records[1].clone()).unwrap();
        drop(m);
        // Kill mid-write of record 1, resume, keep appending, then
        // resume again: the post-resume appends must land on a clean
        // line, not merged onto the damaged remnant.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();
        let mut resumed = Manifest::open(&path, &spec).unwrap();
        assert_eq!(resumed.completed().collect::<Vec<_>>(), vec![0]);
        resumed.append(records[1].clone()).unwrap();
        resumed.append(records[2].clone()).unwrap();
        drop(resumed);
        let again = Manifest::open(&path, &spec).unwrap();
        assert_eq!(again.completed().collect::<Vec<_>>(), vec![0, 1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unterminated_final_record_is_rerun() {
        let spec = SweepSpec::single_cell(100, 1, 2);
        let path = temp_path("no-newline");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 2);
        let mut m = Manifest::open(&path, &spec).unwrap();
        m.append(records[0].clone()).unwrap();
        m.append(records[1].clone()).unwrap();
        drop(m);
        // Kill after the record's bytes but before its newline: the
        // record parses, but appending after it would merge lines, so
        // the loader drops it for a deterministic rerun.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();
        let mut resumed = Manifest::open(&path, &spec).unwrap();
        assert_eq!(resumed.completed().collect::<Vec<_>>(), vec![0]);
        resumed.append(records[1].clone()).unwrap();
        resumed.finalize(&spec).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_header_only_file_starts_fresh() {
        let spec = SweepSpec::single_cell(100, 1, 2);
        let path = temp_path("torn-header");
        let _ = std::fs::remove_file(&path);
        drop(Manifest::open(&path, &spec).unwrap());
        // Kill mid-write of the header itself: no records existed, so
        // the file is treated as empty and the header rewritten.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let m = Manifest::open(&path, &spec).unwrap();
        assert!(m.is_empty());
        drop(m);
        let reopened = Manifest::open(&path, &spec).unwrap();
        assert!(reopened.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_spec_is_refused() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(Manifest::open(&path, &spec).unwrap());
        let other = SweepSpec::single_cell(100, 1, 5);
        let err = Manifest::open(&path, &other).unwrap_err();
        assert!(matches!(err, SweepError::ManifestMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_appends_are_ignored() {
        let spec = SweepSpec::single_cell(100, 1, 2);
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 1);
        let mut m = Manifest::open(&path, &spec).unwrap();
        m.append(records[0].clone()).unwrap();
        m.append(records[0].clone()).unwrap();
        assert_eq!(m.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn finalize_before_completion_is_an_error() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("early");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::open(&path, &spec).unwrap();
        assert!(m.finalize(&spec).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
