//! The on-disk checkpoint a sweep can be killed and resumed from.
//!
//! A manifest is a JSON-lines file. The first line is a header naming
//! the format version and the spec (by hash and by canonical body); each
//! following line is one completed [`EpisodeRecord`].
//!
//! Two phases with different write disciplines:
//!
//! * **Journal** — while the sweep runs, records append in *completion*
//!   order, flushed per line. A kill can truncate at most the final
//!   line, which the loader tolerates and drops. Completion order is
//!   scheduling-dependent, so a journal is not canonical — it is a crash
//!   log, not an artifact.
//! * **Canonical** — when every episode is present, [`Manifest::finalize`]
//!   rewrites the file with records sorted by episode index and marks the
//!   header complete. Because each record is a pure function of its
//!   episode index, the canonical bytes are identical whatever the worker
//!   count and however many kill/resume cycles preceded them.

use crate::error::SweepError;
use crate::json::Json;
use crate::spec::{EpisodeRecord, SweepSpec};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Format version stamped into headers; bumped on incompatible change.
pub const MANIFEST_VERSION: i64 = 1;

/// An open manifest: the journal file plus the set of episodes already
/// recorded in it.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    journal: File,
    /// Completed records keyed by episode index (deduplicated: the first
    /// record for an index wins, matching replay semantics).
    records: BTreeMap<u64, EpisodeRecord>,
    complete: bool,
}

impl Manifest {
    /// Opens `path` for the given spec, creating it with a fresh header
    /// when absent, or loading completed episodes when resuming.
    ///
    /// # Errors
    ///
    /// [`SweepError::ManifestMismatch`] when the file belongs to a
    /// different spec, [`SweepError::Spec`] when the header is
    /// malformed, [`SweepError::Io`] on filesystem failure.
    pub fn open(path: &Path, spec: &SweepSpec) -> Result<Manifest, SweepError> {
        let expected = spec.hash();
        let mut records = BTreeMap::new();
        let mut complete = false;
        let exists = path.exists();
        if exists {
            let reader = BufReader::new(File::open(path)?);
            let mut lines = reader.lines();
            let header_line = match lines.next() {
                Some(line) => line?,
                None => String::new(),
            };
            if !header_line.is_empty() {
                let header = Json::parse(&header_line)
                    .map_err(|e| SweepError::spec(format!("manifest header: {e}")))?;
                let found = header
                    .get("spec_hash")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SweepError::spec("manifest header missing `spec_hash`"))?
                    .to_string();
                if found != expected {
                    return Err(SweepError::ManifestMismatch { found, expected });
                }
                complete = header
                    .get("complete")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                let mut buffered: Vec<String> = Vec::new();
                for line in lines {
                    buffered.push(line?);
                }
                let last = buffered.len().saturating_sub(1);
                for (i, line) in buffered.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match Json::parse(line)
                        .map_err(SweepError::from)
                        .and_then(|v| EpisodeRecord::from_json(&v))
                    {
                        Ok(record) => {
                            records.entry(record.episode).or_insert(record);
                        }
                        // Only the final line may be damaged — that is
                        // the kill-mid-write signature. Damage anywhere
                        // else means the file is not ours to trust.
                        Err(e) if i == last => {
                            let _ = e;
                        }
                        Err(e) => {
                            return Err(SweepError::spec(format!(
                                "manifest line {} is corrupt: {e}",
                                i + 2
                            )));
                        }
                    }
                }
            }
        }
        let mut journal = OpenOptions::new().create(true).append(true).open(path)?;
        if !exists || journal.metadata()?.len() == 0 {
            let header = header_json(spec, false);
            writeln!(journal, "{header}")?;
            journal.flush()?;
        }
        Ok(Manifest {
            path: path.to_path_buf(),
            journal,
            records,
            complete,
        })
    }

    /// Episode indices already completed (sorted ascending).
    pub fn completed(&self) -> impl Iterator<Item = u64> + '_ {
        self.records.keys().copied()
    }

    /// `true` when `episode` is already recorded.
    pub fn contains(&self, episode: u64) -> bool {
        self.records.contains_key(&episode)
    }

    /// Number of completed episodes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no episodes are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `true` when a previous run finalized this manifest.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The records, in episode-index order.
    pub fn records(&self) -> impl Iterator<Item = &EpisodeRecord> {
        self.records.values()
    }

    /// Appends one completed episode to the journal, flushed before
    /// return so a later kill cannot lose it.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on write failure.
    pub fn append(&mut self, record: EpisodeRecord) -> Result<(), SweepError> {
        if self.records.contains_key(&record.episode) {
            return Ok(());
        }
        writeln!(self.journal, "{}", record.to_json())?;
        self.journal.flush()?;
        self.records.insert(record.episode, record);
        Ok(())
    }

    /// Rewrites the manifest in canonical form: complete header, then
    /// records sorted by episode index. Written via a temporary sibling
    /// file and rename, so a kill during finalize leaves either the old
    /// journal or the finished artifact, never a half-written file.
    ///
    /// # Errors
    ///
    /// [`SweepError::Spec`] when called before every episode completed,
    /// [`SweepError::Io`] on filesystem failure.
    pub fn finalize(&mut self, spec: &SweepSpec) -> Result<(), SweepError> {
        let expected = spec.episode_count();
        if self.records.len() as u64 != expected {
            return Err(SweepError::spec(format!(
                "cannot finalize: {} of {expected} episodes recorded",
                self.records.len()
            )));
        }
        let tmp_path = self.path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            writeln!(tmp, "{}", header_json(spec, true))?;
            for record in self.records.values() {
                writeln!(tmp, "{}", record.to_json())?;
            }
            tmp.flush()?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen the journal handle onto the canonical file so further
        // appends (there should be none) do not resurrect the old inode.
        self.journal = OpenOptions::new().append(true).open(&self.path)?;
        self.complete = true;
        Ok(())
    }

    /// The canonical bytes of the manifest as currently on disk.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] on read failure.
    pub fn bytes(&self) -> Result<Vec<u8>, SweepError> {
        let mut f = File::open(&self.path)?;
        f.seek(std::io::SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

fn header_json(spec: &SweepSpec, complete: bool) -> Json {
    let mut members = vec![
        (
            "fet_sweep_manifest".to_string(),
            Json::Int(MANIFEST_VERSION),
        ),
        ("spec_hash".to_string(), Json::Str(spec.hash())),
        (
            "episodes".to_string(),
            Json::Int(spec.episode_count() as i64),
        ),
        ("spec".to_string(), spec.to_json()),
    ];
    if complete {
        members.push(("complete".to_string(), Json::Bool(true)));
    }
    Json::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::WarmCache;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fet-sweep-manifest-{name}-{}", std::process::id()));
        p
    }

    fn run_records(spec: &SweepSpec, upto: u64) -> Vec<EpisodeRecord> {
        let cache = WarmCache::new();
        (0..upto)
            .map(|i| spec.run_episode(i, &cache).unwrap())
            .collect()
    }

    #[test]
    fn journal_resumes_and_finalizes_canonically() {
        let spec = SweepSpec::single_cell(100, 1, 4);
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 4);

        // Uninterrupted reference run.
        let mut reference = Manifest::open(&path, &spec).unwrap();
        for r in &records {
            reference.append(r.clone()).unwrap();
        }
        reference.finalize(&spec).unwrap();
        let want = reference.bytes().unwrap();
        std::fs::remove_file(&path).unwrap();

        // Interrupted run: two episodes (completion order scrambled),
        // then "kill", then resume and finish.
        let mut first = Manifest::open(&path, &spec).unwrap();
        first.append(records[2].clone()).unwrap();
        first.append(records[0].clone()).unwrap();
        drop(first);
        let mut resumed = Manifest::open(&path, &spec).unwrap();
        assert_eq!(resumed.completed().collect::<Vec<_>>(), vec![0, 2]);
        assert!(!resumed.is_complete());
        resumed.append(records[3].clone()).unwrap();
        resumed.append(records[1].clone()).unwrap();
        resumed.finalize(&spec).unwrap();
        assert_eq!(
            resumed.bytes().unwrap(),
            want,
            "byte-identical after resume"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 2);
        let mut m = Manifest::open(&path, &spec).unwrap();
        m.append(records[0].clone()).unwrap();
        m.append(records[1].clone()).unwrap();
        drop(m);
        // Emulate a kill mid-write: chop the file mid final line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 17]).unwrap();
        let reopened = Manifest::open(&path, &spec).unwrap();
        assert_eq!(reopened.completed().collect::<Vec<_>>(), vec![0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_spec_is_refused() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        drop(Manifest::open(&path, &spec).unwrap());
        let other = SweepSpec::single_cell(100, 1, 5);
        let err = Manifest::open(&path, &other).unwrap_err();
        assert!(matches!(err, SweepError::ManifestMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_appends_are_ignored() {
        let spec = SweepSpec::single_cell(100, 1, 2);
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let records = run_records(&spec, 1);
        let mut m = Manifest::open(&path, &spec).unwrap();
        m.append(records[0].clone()).unwrap();
        m.append(records[0].clone()).unwrap();
        assert_eq!(m.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn finalize_before_completion_is_an_error() {
        let spec = SweepSpec::single_cell(100, 1, 3);
        let path = temp_path("early");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::open(&path, &spec).unwrap();
        assert!(m.finalize(&spec).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
