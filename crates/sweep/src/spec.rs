//! [`SweepSpec`]: a parameter grid × seed range, and how one episode of it
//! becomes a [`Simulation`].
//!
//! A sweep is the paper's actual scientific workload: convergence-time
//! distributions and phase diagrams over `(seed × n × noise × ℓ)` grids.
//! The spec enumerates the grid deterministically — cells in row-major
//! `n × noise × ℓ` order, seeds consecutive within each cell — so an
//! episode is fully identified by its flat index, and every episode's
//! trajectory is a pure function of the deterministic key
//! `(seed, shard count, cell parameters)` the workspace's determinism
//! contract already pins.
//!
//! Specs are written as JSON documents (see the crate docs for the
//! format); [`SweepSpec::parse`] validates eagerly so a malformed spec
//! fails before any episode runs.

use crate::error::SweepError;
use crate::json::Json;
use fet_core::config::ell_for_population;
use fet_core::opinion::Opinion;
use fet_sim::convergence::{ConvergenceReport, RecoveryRecord};
use fet_sim::engine::{ExecutionMode, Fidelity};
use fet_sim::fault::{FaultEvent, FaultEventKind, FaultPlan, FaultSchedule};
use fet_sim::init::InitialCondition;
use fet_sim::simulation::{default_max_rounds, Simulation, SimulationBuilder};
use fet_stats::rng::SeedTree;

/// Consecutive root seeds: `base, base+1, …, base+count-1` per grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRange {
    /// First seed.
    pub base: u64,
    /// Number of episodes per grid cell.
    pub count: u64,
}

/// A non-complete communication graph, rebuilt per population size and
/// shared across every episode that uses it (see
/// [`WarmCache`](crate::cache::WarmCache)).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Builder name: `er`, `regular`, `ring`, `star`, `barbell`,
    /// `smallworld`.
    pub graph: String,
    /// Degree parameter (builder-specific).
    pub degree: u32,
    /// Rewiring probability (smallworld only).
    pub beta: f64,
    /// Seed of the graph construction RNG (independent of episode seeds).
    pub seed: u64,
}

/// One grid cell: the parameters every episode of the cell shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Population size.
    pub n: u64,
    /// Observation bit-flip probability ([`FaultPlan::with_noise`]).
    pub noise: f64,
    /// Explicit `ℓ` override; `None` derives `ℓ = ⌈c·ln n⌉` from the
    /// spec's sample constant.
    pub ell: Option<u32>,
    /// Trend-switch period `P`: the episode's fault schedule retargets
    /// the correct opinion every `P` rounds, `switches` times. `None`
    /// means the cell runs fault-schedule-free (the pre-gauntlet shape).
    pub switch_period: Option<u64>,
    /// State-corruption fraction: each switch window additionally rewrites
    /// this Bernoulli fraction of agent states at its midpoint.
    pub corruption: Option<f64>,
}

impl CellParams {
    /// The canonical JSON form of the cell (manifest key material). The
    /// gauntlet members are emitted only when present, so specs without
    /// the robustness axes keep their pre-gauntlet manifests byte-stable.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("n".to_string(), Json::Int(self.n as i64)),
            ("noise".to_string(), Json::from_f64(self.noise)),
        ];
        if let Some(ell) = self.ell {
            members.push(("ell".to_string(), Json::Int(i64::from(ell))));
        }
        if let Some(p) = self.switch_period {
            members.push(("switch_period".to_string(), Json::Int(p as i64)));
        }
        if let Some(f) = self.corruption {
            members.push(("corruption".to_string(), Json::from_f64(f)));
        }
        Json::Object(members)
    }
}

/// The sweep: a grid of [`CellParams`] × a [`SeedRange`], plus everything
/// the episodes share.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Registry name of the protocol (`"fet"`, `"voter"`, …).
    pub protocol: String,
    /// Population-size axis (non-empty).
    pub n: Vec<u64>,
    /// Observation-noise axis (defaults to the single point `0`).
    pub noise: Vec<f64>,
    /// Explicit `ℓ` axis; empty means one derived-ℓ point per cell.
    pub ell: Vec<u32>,
    /// Trend-switch-period axis (rounds between switches); empty means no
    /// fault schedules — the pre-gauntlet sweep shape.
    pub switch_period: Vec<u64>,
    /// State-corruption-fraction axis; empty means no corruption events.
    /// Requires a non-empty `switch_period` (corruption events fire at
    /// switch-window midpoints).
    pub corruption: Vec<f64>,
    /// Trend switches per episode when `switch_period` is set (default 3).
    pub switches: u64,
    /// Sample constant `c` for derived `ℓ` (default 4).
    pub sample_constant: f64,
    /// Seeds per cell.
    pub seeds: SeedRange,
    /// Observation fidelity for complete-graph runs (default binomial).
    pub fidelity: Fidelity,
    /// Round implementation. Defaults to [`ExecutionMode::Fused`] — unlike
    /// `Auto`, its trajectories don't depend on the host's core count, so
    /// sweep manifests replay bit-identically across machines.
    pub mode: ExecutionMode,
    /// Initial condition (default all-wrong).
    pub init: InitialCondition,
    /// Round budget per episode (default [`default_max_rounds`] of the
    /// cell's `n`).
    pub max_rounds: Option<u64>,
    /// Convergence stability window (default 3).
    pub stability_window: u64,
    /// Optional non-complete communication graph.
    pub topology: Option<TopologySpec>,
    /// Record full `x_t` trajectories into episode records (default off —
    /// manifests stay compact).
    pub record_trajectory: bool,
}

impl SweepSpec {
    /// A single-cell spec: one `(n, noise, ℓ)` point swept over `seeds`
    /// consecutive seeds from `seed_base` — the shape
    /// `fet_sim::batch::run_replicated` covers, expressed as a degenerate
    /// grid.
    pub fn single_cell(n: u64, seed_base: u64, seeds: u64) -> SweepSpec {
        SweepSpec {
            protocol: "fet".to_string(),
            n: vec![n],
            noise: vec![0.0],
            ell: Vec::new(),
            switch_period: Vec::new(),
            corruption: Vec::new(),
            switches: 3,
            sample_constant: 4.0,
            seeds: SeedRange {
                base: seed_base,
                count: seeds,
            },
            fidelity: Fidelity::Binomial,
            mode: ExecutionMode::Fused,
            init: InitialCondition::AllWrong,
            max_rounds: None,
            stability_window: 3,
            topology: None,
            record_trajectory: false,
        }
    }

    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// [`SweepError::Json`] on malformed JSON, [`SweepError::Spec`] when a
    /// field is missing, mistyped, out of range, or names an unknown
    /// protocol/graph/fidelity/mode.
    pub fn parse(text: &str) -> Result<SweepSpec, SweepError> {
        let doc = Json::parse(text)?;
        if !matches!(doc, Json::Object(_)) {
            return Err(SweepError::spec("the spec must be a JSON object"));
        }
        let known = [
            "protocol",
            "n",
            "noise",
            "ell",
            "switch_period",
            "corruption",
            "switches",
            "sample_constant",
            "seeds",
            "fidelity",
            "mode",
            "threads",
            "init",
            "max_rounds",
            "stability_window",
            "topology",
            "record_trajectory",
        ];
        if let Json::Object(members) = &doc {
            for (key, _) in members {
                if !known.contains(&key.as_str()) {
                    return Err(SweepError::spec(format!(
                        "unknown field `{key}` (known: {})",
                        known.join(", ")
                    )));
                }
            }
        }
        let protocol = match doc.get("protocol") {
            None => "fet".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| SweepError::spec("`protocol` must be a string"))?
                .to_string(),
        };
        let n = u64_axis(&doc, "n")?
            .ok_or_else(|| SweepError::spec("`n` is required: an array of population sizes"))?;
        let noise = match f64_axis(&doc, "noise")? {
            None => vec![0.0],
            Some(v) => v,
        };
        let ell = match u64_axis(&doc, "ell")? {
            None => Vec::new(),
            Some(v) => v
                .into_iter()
                .map(|e| {
                    u32::try_from(e).map_err(|_| SweepError::spec("`ell` entries must fit in u32"))
                })
                .collect::<Result<Vec<u32>, _>>()?,
        };
        let switch_period = u64_axis(&doc, "switch_period")?.unwrap_or_default();
        let corruption = f64_axis(&doc, "corruption")?.unwrap_or_default();
        let switches = match doc.get("switches") {
            None => 3,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| SweepError::spec("`switches` must be a number"))?,
        };
        let sample_constant = match doc.get("sample_constant") {
            None => 4.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| SweepError::spec("`sample_constant` must be a number"))?,
        };
        let seeds = match doc.get("seeds") {
            None => SeedRange { base: 0, count: 1 },
            Some(v) => SeedRange {
                base: match v.get("base") {
                    None => 0,
                    Some(b) => b.as_u64().ok_or_else(|| {
                        SweepError::spec("`seeds.base` must be a non-negative integer")
                    })?,
                },
                count: v
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SweepError::spec("`seeds` needs a numeric `count`"))?,
            },
        };
        let fidelity = match doc.get("fidelity").map(|v| v.as_str()) {
            None => Fidelity::Binomial,
            Some(Some("binomial")) => Fidelity::Binomial,
            Some(Some("without-replacement")) => Fidelity::WithoutReplacement,
            Some(Some("agent")) => Fidelity::Agent,
            Some(Some(other)) => {
                return Err(SweepError::spec(format!(
                    "unknown `fidelity` `{other}` (binomial, without-replacement, agent; \
                     the aggregate chain is a single-run tool, not a sweep fidelity)"
                )));
            }
            Some(None) => return Err(SweepError::spec("`fidelity` must be a string")),
        };
        let threads = match doc.get("threads") {
            None => None,
            Some(v) => Some(
                u32::try_from(
                    v.as_u64()
                        .ok_or_else(|| SweepError::spec("`threads` must be a number"))?,
                )
                .map_err(|_| SweepError::spec("`threads` must fit in u32"))?,
            ),
        };
        let mode = match doc.get("mode").map(|v| v.as_str()) {
            None | Some(Some("fused")) => ExecutionMode::Fused,
            Some(Some("auto")) => ExecutionMode::Auto,
            Some(Some("batched")) => ExecutionMode::Batched,
            Some(Some("fused-parallel")) => ExecutionMode::FusedParallel {
                threads: threads.unwrap_or(1),
            },
            Some(Some(other)) => {
                return Err(SweepError::spec(format!(
                    "unknown `mode` `{other}` (auto, batched, fused, fused-parallel)"
                )));
            }
            Some(None) => return Err(SweepError::spec("`mode` must be a string")),
        };
        if threads.is_some() && !matches!(mode, ExecutionMode::FusedParallel { .. }) {
            return Err(SweepError::spec(
                "`threads` applies to `\"mode\": \"fused-parallel\"` only",
            ));
        }
        let init = match doc.get("init").map(|v| v.as_str()) {
            None | Some(Some("all-wrong")) => InitialCondition::AllWrong,
            Some(Some("all-correct")) => InitialCondition::AllCorrect,
            Some(Some("random")) => InitialCondition::Random,
            Some(Some(other)) => {
                return Err(SweepError::spec(format!(
                    "unknown `init` `{other}` (all-wrong, all-correct, random)"
                )));
            }
            Some(None) => return Err(SweepError::spec("`init` must be a string")),
        };
        let max_rounds = match doc.get("max_rounds") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| SweepError::spec("`max_rounds` must be a number"))?,
            ),
        };
        let stability_window = match doc.get("stability_window") {
            None => 3,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| SweepError::spec("`stability_window` must be a number"))?,
        };
        let topology = match doc.get("topology") {
            None => None,
            Some(t) => Some(TopologySpec {
                graph: t
                    .get("graph")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SweepError::spec("`topology` needs a string `graph`"))?
                    .to_string(),
                degree: t.get("degree").and_then(Json::as_u64).unwrap_or(16) as u32,
                beta: t.get("beta").and_then(Json::as_f64).unwrap_or(0.1),
                seed: t.get("seed").and_then(Json::as_u64).unwrap_or(0),
            }),
        };
        let record_trajectory = match doc.get("record_trajectory") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SweepError::spec("`record_trajectory` must be a bool"))?,
        };
        let spec = SweepSpec {
            protocol,
            n,
            noise,
            ell,
            switch_period,
            corruption,
            switches,
            sample_constant,
            seeds,
            fidelity,
            mode,
            init,
            max_rounds,
            stability_window,
            topology,
            record_trajectory,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the assembled spec, including a dry build of the first
    /// episode's simulation so protocol/fidelity/mode incompatibilities
    /// surface here, not mid-sweep.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.n.is_empty() {
            return Err(SweepError::spec(
                "`n` must list at least one population size",
            ));
        }
        if self.noise.is_empty() {
            return Err(SweepError::spec("`noise` must not be an empty array"));
        }
        if self.seeds.count == 0 {
            return Err(SweepError::spec("`seeds.count` must be at least 1"));
        }
        for &n in &self.n {
            if n < 2 {
                return Err(SweepError::spec(format!("population {n} is too small")));
            }
            if self.topology.is_some() && u32::try_from(n).is_err() {
                return Err(SweepError::spec("topology sweeps index agents as u32"));
            }
        }
        for &p in &self.noise {
            if !(0.0..=1.0).contains(&p) {
                return Err(SweepError::spec(format!("noise {p} is not a probability")));
            }
        }
        if !(self.sample_constant.is_finite() && self.sample_constant > 0.0) {
            return Err(SweepError::spec(
                "`sample_constant` must be positive and finite",
            ));
        }
        for &p in &self.switch_period {
            if p == 0 {
                return Err(SweepError::spec(
                    "`switch_period` entries must be at least 1 round",
                ));
            }
        }
        for &f in &self.corruption {
            if !(0.0..=1.0).contains(&f) {
                return Err(SweepError::spec(format!(
                    "corruption fraction {f} is not a probability"
                )));
            }
        }
        if !self.corruption.is_empty() && self.switch_period.is_empty() {
            return Err(SweepError::spec(
                "`corruption` events fire at switch-window midpoints; add a `switch_period` axis",
            ));
        }
        if !self.switch_period.is_empty() {
            if self.switches == 0 {
                return Err(SweepError::spec(
                    "`switches` must be at least 1 when `switch_period` is set",
                ));
            }
            // Every scheduled event must fit the episode budget, or the
            // recovery records would silently truncate.
            for &n in &self.n {
                let budget = self.max_rounds.unwrap_or_else(|| default_max_rounds(n));
                for &p in &self.switch_period {
                    let last = self
                        .switches
                        .saturating_mul(p)
                        .saturating_add(if self.corruption.is_empty() { 0 } else { p / 2 });
                    if last >= budget {
                        return Err(SweepError::spec(format!(
                            "the last scheduled event (round {last}) does not fit the \
                             {budget}-round budget for n = {n}; raise `max_rounds` or shrink \
                             `switches`/`switch_period`"
                        )));
                    }
                }
            }
        }
        let episodes = self.episode_count();
        const MAX_EPISODES: u64 = 10_000_000;
        if episodes > MAX_EPISODES {
            return Err(SweepError::spec(format!(
                "{episodes} episodes exceeds the {MAX_EPISODES} cap; shrink the grid"
            )));
        }
        if self.topology.is_some() && self.fidelity != Fidelity::Agent {
            return Err(SweepError::spec(
                "graph sweeps sample neighbors literally; omit `fidelity` or set `\"agent\"`",
            ));
        }
        if self.fidelity == Fidelity::Agent
            && self.topology.is_none()
            && self.mode != ExecutionMode::Batched
        {
            return Err(SweepError::spec(
                "the literal agent fidelity on the complete graph runs batched only; \
                 set `\"mode\": \"batched\"`",
            ));
        }
        // Dry-build episode 0: protocol-name resolution, ℓ bounds,
        // without-replacement oversampling, graph construction, mode
        // compatibility — all the facade's build checks.
        let cache = crate::cache::WarmCache::new();
        self.build_simulation(0, &cache).map(|_| ())
    }

    /// Canonical JSON form (defaults included), the manifest header's
    /// spec material.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("protocol".into(), Json::Str(self.protocol.clone())),
            (
                "n".into(),
                Json::Array(self.n.iter().map(|&v| Json::Int(v as i64)).collect()),
            ),
            (
                "noise".into(),
                Json::Array(self.noise.iter().map(|&v| Json::from_f64(v)).collect()),
            ),
        ];
        if !self.ell.is_empty() {
            members.push((
                "ell".into(),
                Json::Array(self.ell.iter().map(|&e| Json::Int(i64::from(e))).collect()),
            ));
        }
        if !self.switch_period.is_empty() {
            members.push((
                "switch_period".into(),
                Json::Array(
                    self.switch_period
                        .iter()
                        .map(|&p| Json::Int(p as i64))
                        .collect(),
                ),
            ));
            members.push(("switches".into(), Json::Int(self.switches as i64)));
        }
        if !self.corruption.is_empty() {
            members.push((
                "corruption".into(),
                Json::Array(self.corruption.iter().map(|&f| Json::from_f64(f)).collect()),
            ));
        }
        members.push((
            "sample_constant".into(),
            Json::from_f64(self.sample_constant),
        ));
        members.push((
            "seeds".into(),
            Json::object([
                ("base", Json::Int(self.seeds.base as i64)),
                ("count", Json::Int(self.seeds.count as i64)),
            ]),
        ));
        members.push((
            "fidelity".into(),
            Json::Str(
                match self.fidelity {
                    Fidelity::Binomial => "binomial",
                    Fidelity::WithoutReplacement => "without-replacement",
                    Fidelity::Agent => "agent",
                    Fidelity::Aggregate => "aggregate",
                }
                .into(),
            ),
        ));
        let mode_name = match self.mode {
            ExecutionMode::Auto => "auto",
            ExecutionMode::Batched => "batched",
            ExecutionMode::Fused => "fused",
            ExecutionMode::FusedParallel { .. } => "fused-parallel",
        };
        members.push(("mode".into(), Json::Str(mode_name.into())));
        if let ExecutionMode::FusedParallel { threads } = self.mode {
            members.push(("threads".into(), Json::Int(i64::from(threads))));
        }
        members.push(("init".into(), Json::Str(self.init.label())));
        if let Some(r) = self.max_rounds {
            members.push(("max_rounds".into(), Json::Int(r as i64)));
        }
        members.push((
            "stability_window".into(),
            Json::Int(self.stability_window as i64),
        ));
        if let Some(t) = &self.topology {
            members.push((
                "topology".into(),
                Json::object([
                    ("graph", Json::Str(t.graph.clone())),
                    ("degree", Json::Int(i64::from(t.degree))),
                    ("beta", Json::from_f64(t.beta)),
                    ("seed", Json::Int(t.seed as i64)),
                ]),
            ));
        }
        members.push((
            "record_trajectory".into(),
            Json::Bool(self.record_trajectory),
        ));
        Json::Object(members)
    }

    /// FNV-1a hash of the canonical spec bytes, hex-encoded — the identity
    /// a manifest is keyed by.
    pub fn hash(&self) -> String {
        let text = self.to_json().to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in text.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Number of grid cells
    /// (`n × noise × ℓ × switch_period × corruption` points).
    pub fn cell_count(&self) -> u64 {
        self.n.len() as u64
            * self.noise.len() as u64
            * self.ell_axis_len()
            * self.switch_axis_len()
            * self.corruption_axis_len()
    }

    /// Total episodes (cells × seeds).
    pub fn episode_count(&self) -> u64 {
        self.cell_count() * self.seeds.count
    }

    fn ell_axis_len(&self) -> u64 {
        self.ell.len().max(1) as u64
    }

    fn switch_axis_len(&self) -> u64 {
        self.switch_period.len().max(1) as u64
    }

    fn corruption_axis_len(&self) -> u64 {
        self.corruption.len().max(1) as u64
    }

    /// The parameters of cell `cell_index` (row-major
    /// `n × noise × ℓ × switch_period × corruption`; absent axes
    /// contribute a single implicit point, so pre-gauntlet specs keep
    /// their cell numbering).
    ///
    /// # Panics
    ///
    /// Panics when `cell_index ≥ cell_count()`.
    pub fn cell(&self, cell_index: u64) -> CellParams {
        assert!(cell_index < self.cell_count(), "cell index out of range");
        let corrs = self.corruption_axis_len();
        let switches = self.switch_axis_len();
        let ells = self.ell_axis_len();
        let per_ell = switches * corrs;
        let per_noise = ells * per_ell;
        let per_n = self.noise.len() as u64 * per_noise;
        let n = self.n[(cell_index / per_n) as usize];
        let noise = self.noise[((cell_index / per_noise) % self.noise.len() as u64) as usize];
        let ell = if self.ell.is_empty() {
            None
        } else {
            Some(self.ell[((cell_index / per_ell) % ells) as usize])
        };
        let switch_period = if self.switch_period.is_empty() {
            None
        } else {
            Some(self.switch_period[((cell_index / corrs) % switches) as usize])
        };
        let corruption = if self.corruption.is_empty() {
            None
        } else {
            Some(self.corruption[(cell_index % corrs) as usize])
        };
        CellParams {
            n,
            noise,
            ell,
            switch_period,
            corruption,
        }
    }

    /// Decomposes a flat episode index into `(cell, seed)`.
    ///
    /// # Panics
    ///
    /// Panics when `episode ≥ episode_count()`.
    pub fn episode(&self, episode: u64) -> (CellParams, u64) {
        assert!(episode < self.episode_count(), "episode index out of range");
        let cell = self.cell(episode / self.seeds.count);
        let seed = self.seeds.base + episode % self.seeds.count;
        (cell, seed)
    }

    /// The shard count of the determinism key `(seed, shard count)`: the
    /// sweep's trajectories are reproducible because this is pinned by the
    /// spec, never by the host.
    pub fn shards(&self) -> u32 {
        match self.mode {
            ExecutionMode::FusedParallel { threads } => threads,
            _ => 1,
        }
    }

    /// The `ℓ` a cell resolves to.
    pub fn cell_ell(&self, cell: &CellParams) -> u32 {
        match cell.ell {
            Some(e) => e,
            None => ell_for_population(cell.n, self.sample_constant),
        }
    }

    /// Assembles the ready-to-run simulation for one episode, drawing
    /// protocol instances and graphs from `cache`.
    ///
    /// # Errors
    ///
    /// [`SweepError::Sim`] when the facade rejects the configuration,
    /// [`SweepError::Spec`] for unknown graph names.
    pub fn build_simulation(
        &self,
        episode: u64,
        cache: &crate::cache::WarmCache,
    ) -> Result<Simulation, SweepError> {
        let (cell, seed) = self.episode(episode);
        let ell = self.cell_ell(&cell);
        let mut b: SimulationBuilder = Simulation::builder()
            .population(cell.n)
            .seed(seed)
            .init(self.init)
            .stability_window(self.stability_window)
            .execution_mode(self.mode)
            .max_rounds(
                self.max_rounds
                    .unwrap_or_else(|| default_max_rounds(cell.n)),
            )
            .record_trajectory(self.record_trajectory)
            .protocol_erased(cache.protocol(&self.protocol, cell.n, ell)?);
        b = match &self.topology {
            Some(t) => b.topology(cache.shared_graph(t, cell.n as u32)?),
            None => b.fidelity(self.fidelity),
        };
        if cell.switch_period.is_some() {
            b = b.fault_schedule(self.cell_schedule(&cell)?);
        } else if cell.noise > 0.0 {
            let plan =
                FaultPlan::with_noise(cell.noise).map_err(|e| SweepError::Sim(e.to_string()))?;
            b = b.fault(plan);
        }
        b.build().map_err(|e| SweepError::Sim(e.to_string()))
    }

    /// The fault schedule a gauntlet cell runs: `switches` trend switches
    /// at rounds `P, 2P, …` alternating the correct opinion away from the
    /// spec's initial target, plus — when the cell carries a corruption
    /// fraction — one state-corruption event at each switch window's
    /// midpoint. The cell's noise level rides as the schedule's base plan.
    ///
    /// # Errors
    ///
    /// [`SweepError::Sim`] when the knobs fail fault validation (cannot
    /// happen for a spec that passed [`SweepSpec::validate`]).
    pub fn cell_schedule(&self, cell: &CellParams) -> Result<FaultSchedule, SweepError> {
        let sim_err = |e: fet_sim::SimError| SweepError::Sim(e.to_string());
        let base = if cell.noise > 0.0 {
            FaultPlan::with_noise(cell.noise).map_err(sim_err)?
        } else {
            FaultPlan::none()
        };
        let Some(period) = cell.switch_period else {
            return FaultSchedule::new(base, Vec::new()).map_err(sim_err);
        };
        let mut events = Vec::new();
        for k in 1..=self.switches {
            let round = k * period;
            // The initial correct opinion is One (ProblemSpec default the
            // sweep builder uses), so odd switches target Zero.
            let correct = if k % 2 == 1 {
                Opinion::Zero
            } else {
                Opinion::One
            };
            events.push(FaultEvent::TrendSwitch { round, correct });
            if let Some(fraction) = cell.corruption {
                events.push(FaultEvent::StateCorruption {
                    round: round + period / 2,
                    fraction,
                });
            }
        }
        FaultSchedule::new(base, events).map_err(sim_err)
    }

    /// Runs one episode to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`SweepSpec::build_simulation`] failures.
    pub fn run_episode(
        &self,
        episode: u64,
        cache: &crate::cache::WarmCache,
    ) -> Result<EpisodeRecord, SweepError> {
        let (cell, seed) = self.episode(episode);
        let mut sim = self.build_simulation(episode, cache)?;
        let report = sim.run();
        Ok(EpisodeRecord {
            episode,
            seed,
            shards: self.shards(),
            cell,
            report: report.report,
            trajectory: report.trajectory,
            recovery: report.recovery,
        })
    }
}

/// Seed material shared by sweep components that need auxiliary draws
/// (e.g. graph construction) without touching episode streams.
pub fn graph_seed_tree(topology_seed: u64) -> SeedTree {
    SeedTree::new(topology_seed).child("sweep-graph")
}

/// One completed episode: the manifest's unit record, keyed by the
/// deterministic `(seed, shard count, cell)` tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRecord {
    /// Flat episode index in the spec's enumeration.
    pub episode: u64,
    /// Root seed the episode ran with.
    pub seed: u64,
    /// Shard count of the determinism key.
    pub shards: u32,
    /// Grid-cell parameters.
    pub cell: CellParams,
    /// Convergence outcome.
    pub report: ConvergenceReport,
    /// Full `x_t` trajectory when the spec requested recording.
    pub trajectory: Option<Vec<f64>>,
    /// Per-event recovery records (empty unless the cell ran a fault
    /// schedule with events).
    pub recovery: Vec<RecoveryRecord>,
}

impl EpisodeRecord {
    /// Canonical JSON-line form.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("episode".into(), Json::Int(self.episode as i64)),
            ("seed".into(), Json::Int(self.seed as i64)),
            ("shards".into(), Json::Int(i64::from(self.shards))),
            ("cell".into(), self.cell.to_json()),
            (
                "report".into(),
                Json::object([
                    (
                        "converged_at",
                        match self.report.converged_at {
                            Some(t) => Json::Int(t as i64),
                            None => Json::Null,
                        },
                    ),
                    ("rounds_run", Json::Int(self.report.rounds_run as i64)),
                    (
                        "final_fraction_correct",
                        Json::from_f64(self.report.final_fraction_correct),
                    ),
                ]),
            ),
        ];
        if let Some(traj) = &self.trajectory {
            members.push((
                "trajectory".into(),
                Json::Array(traj.iter().map(|&x| Json::from_f64(x)).collect()),
            ));
        }
        if !self.recovery.is_empty() {
            members.push((
                "recovery".into(),
                Json::Array(self.recovery.iter().map(recovery_to_json).collect()),
            ));
        }
        Json::Object(members)
    }

    /// Parses a manifest line back into a record.
    ///
    /// # Errors
    ///
    /// [`SweepError::Spec`] when required members are missing or mistyped.
    pub fn from_json(v: &Json) -> Result<EpisodeRecord, SweepError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| SweepError::spec(format!("episode record missing `{name}`")))
        };
        let num = |name: &str| {
            field(name)?.as_u64().ok_or_else(|| {
                SweepError::spec(format!("episode record `{name}` must be a number"))
            })
        };
        let cell_json = field("cell")?;
        let report_json = field("report")?;
        Ok(EpisodeRecord {
            episode: num("episode")?,
            seed: num("seed")?,
            shards: num("shards")? as u32,
            cell: CellParams {
                n: cell_json
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SweepError::spec("cell missing numeric `n`"))?,
                noise: cell_json.get("noise").and_then(Json::as_f64).unwrap_or(0.0),
                ell: cell_json
                    .get("ell")
                    .and_then(Json::as_u64)
                    .map(|e| e as u32),
                switch_period: cell_json.get("switch_period").and_then(Json::as_u64),
                corruption: cell_json.get("corruption").and_then(Json::as_f64),
            },
            report: ConvergenceReport {
                converged_at: report_json.get("converged_at").and_then(Json::as_u64),
                rounds_run: report_json
                    .get("rounds_run")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SweepError::spec("report missing `rounds_run`"))?,
                final_fraction_correct: report_json
                    .get("final_fraction_correct")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| SweepError::spec("report missing `final_fraction_correct`"))?,
            },
            trajectory: v
                .get("trajectory")
                .and_then(Json::as_array)
                .map(|items| items.iter().filter_map(Json::as_f64).collect()),
            recovery: match v.get("recovery").and_then(Json::as_array) {
                None => Vec::new(),
                Some(items) => items
                    .iter()
                    .map(recovery_from_json)
                    .collect::<Result<Vec<RecoveryRecord>, _>>()?,
            },
        })
    }
}

/// The canonical JSON form of one recovery record (manifest material —
/// byte-stable under round-tripping).
pub fn recovery_to_json(record: &RecoveryRecord) -> Json {
    let opt = |r: Option<u64>| match r {
        Some(t) => Json::Int(t as i64),
        None => Json::Null,
    };
    Json::object([
        ("event_round", Json::Int(record.event_round as i64)),
        ("kind", Json::Str(record.kind.to_string())),
        ("adapted_at", opt(record.adapted_at)),
        ("restabilized_at", opt(record.restabilized_at)),
    ])
}

/// Parses one recovery record from its canonical JSON form.
///
/// # Errors
///
/// [`SweepError::Spec`] when members are missing, mistyped, or name an
/// unknown event kind.
pub fn recovery_from_json(v: &Json) -> Result<RecoveryRecord, SweepError> {
    let kind_label = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| SweepError::spec("recovery record missing string `kind`"))?;
    let kind = FaultEventKind::parse(kind_label)
        .ok_or_else(|| SweepError::spec(format!("unknown recovery event kind `{kind_label}`")))?;
    Ok(RecoveryRecord {
        event_round: v
            .get("event_round")
            .and_then(Json::as_u64)
            .ok_or_else(|| SweepError::spec("recovery record missing numeric `event_round`"))?,
        kind,
        adapted_at: v.get("adapted_at").and_then(Json::as_u64),
        restabilized_at: v.get("restabilized_at").and_then(Json::as_u64),
    })
}

fn u64_axis(doc: &Json, name: &str) -> Result<Option<Vec<u64>>, SweepError> {
    match doc.get(name) {
        None => Ok(None),
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| SweepError::spec(format!("`{name}` entries must be numbers")))
            })
            .collect::<Result<Vec<u64>, _>>()
            .map(Some),
        // A bare scalar is accepted as a one-point axis.
        Some(v) => match v.as_u64() {
            Some(x) => Ok(Some(vec![x])),
            None => Err(SweepError::spec(format!(
                "`{name}` must be an array of numbers (or one number)"
            ))),
        },
    }
}

fn f64_axis(doc: &Json, name: &str) -> Result<Option<Vec<f64>>, SweepError> {
    match doc.get(name) {
        None => Ok(None),
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| SweepError::spec(format!("`{name}` entries must be numbers")))
            })
            .collect::<Result<Vec<f64>, _>>()
            .map(Some),
        Some(v) => match v.as_f64() {
            Some(x) => Ok(Some(vec![x])),
            None => Err(SweepError::spec(format!(
                "`{name}` must be an array of numbers (or one number)"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec::parse(
            r#"{"n": [100, 200], "noise": [0, 0.05], "seeds": {"base": 7, "count": 3},
                "max_rounds": 2000}"#,
        )
        .unwrap()
    }

    #[test]
    fn grid_enumeration_is_row_major() {
        let spec = small_spec();
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.episode_count(), 12);
        assert_eq!(
            spec.cell(0),
            CellParams {
                n: 100,
                noise: 0.0,
                ell: None,
                switch_period: None,
                corruption: None,
            }
        );
        assert_eq!(
            spec.cell(1),
            CellParams {
                n: 100,
                noise: 0.05,
                ell: None,
                switch_period: None,
                corruption: None,
            }
        );
        assert_eq!(
            spec.cell(2),
            CellParams {
                n: 200,
                noise: 0.0,
                ell: None,
                switch_period: None,
                corruption: None,
            }
        );
        let (cell, seed) = spec.episode(7);
        assert_eq!(cell, spec.cell(2));
        assert_eq!(seed, 8, "episode 7 = cell 2, seed offset 1, base 7");
    }

    #[test]
    fn ell_axis_multiplies_cells() {
        let spec = SweepSpec::parse(r#"{"n": [100], "ell": [10, 20, 30], "seeds": {"count": 2}}"#)
            .unwrap();
        assert_eq!(spec.cell_count(), 3);
        assert_eq!(spec.cell(1).ell, Some(20));
    }

    #[test]
    fn defaults_are_deterministic_and_canonical() {
        let spec = small_spec();
        assert_eq!(spec.mode, ExecutionMode::Fused, "host-independent default");
        let canon = spec.to_json().to_string();
        let reparsed = SweepSpec::parse(&canon).unwrap();
        assert_eq!(reparsed, spec, "canonical form round-trips");
        assert_eq!(reparsed.hash(), spec.hash());
    }

    #[test]
    fn unknown_fields_and_bad_values_are_rejected() {
        for bad in [
            r#"{"n": [100], "frobnicate": 1}"#,
            r#"{"noise": [0.1]}"#,
            r#"{"n": []}"#,
            r#"{"n": [100], "seeds": {"count": 0}}"#,
            r#"{"n": [100], "seeds": {"base": "7", "count": 2}}"#,
            r#"{"n": [100], "seeds": {"base": -1, "count": 2}}"#,
            r#"{"n": [100], "seeds": {"base": 0.5, "count": 2}}"#,
            r#"{"n": [100], "noise": [1.5]}"#,
            r#"{"n": [100], "mode": "warp"}"#,
            r#"{"n": [100], "threads": 4}"#,
            r#"{"n": [100], "protocol": "nonsense"}"#,
            r#"{"n": [100], "fidelity": "aggregate"}"#,
            r#"{"n": [100], "fidelity": "agent"}"#,
            r#"{"n": [20], "ell": [32], "fidelity": "without-replacement"}"#,
        ] {
            assert!(SweepSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn agent_fidelity_requires_batched_mode() {
        let spec = SweepSpec::parse(r#"{"n": [100], "fidelity": "agent", "mode": "batched"}"#);
        assert!(spec.is_ok(), "{spec:?}");
    }

    #[test]
    fn episode_record_round_trips() {
        let record = EpisodeRecord {
            episode: 11,
            seed: 18,
            shards: 2,
            cell: CellParams {
                n: 100,
                noise: 0.05,
                ell: Some(20),
                switch_period: Some(64),
                corruption: Some(0.25),
            },
            report: ConvergenceReport {
                converged_at: Some(37),
                rounds_run: 40,
                final_fraction_correct: 1.0,
            },
            trajectory: Some(vec![0.0, 0.25, 1.0]),
            recovery: vec![RecoveryRecord {
                event_round: 64,
                kind: FaultEventKind::TrendSwitch,
                adapted_at: Some(70),
                restabilized_at: None,
            }],
        };
        let line = record.to_json().to_string();
        let back = EpisodeRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.to_json().to_string(), line, "byte-stable round trip");
    }

    #[test]
    fn run_episode_matches_the_facade_directly() {
        let spec = SweepSpec::single_cell(150, 5, 2);
        let cache = crate::cache::WarmCache::new();
        let record = spec.run_episode(1, &cache).unwrap();
        assert_eq!(record.seed, 6);
        let mut direct = Simulation::builder()
            .population(150)
            .seed(6)
            .execution_mode(ExecutionMode::Fused)
            .build()
            .unwrap();
        let direct_report = direct.run();
        assert_eq!(
            record.report, direct_report.report,
            "same deterministic stream"
        );
    }

    #[test]
    fn hash_distinguishes_specs() {
        let a = SweepSpec::single_cell(100, 0, 4);
        let mut b = a.clone();
        b.seeds.count = 5;
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn robustness_axes_multiply_cells_row_major() {
        let spec = SweepSpec::parse(
            r#"{"n": [100], "noise": [0, 0.02], "switch_period": [50, 100],
                "corruption": [0.1, 0.3], "switches": 2, "seeds": {"count": 2},
                "max_rounds": 1000}"#,
        )
        .unwrap();
        assert_eq!(spec.cell_count(), 8, "1 n × 2 noise × 2 periods × 2 corr");
        assert_eq!(spec.episode_count(), 16);
        // Corruption is the fastest-varying axis, then switch period.
        assert_eq!(spec.cell(0).switch_period, Some(50));
        assert_eq!(spec.cell(0).corruption, Some(0.1));
        assert_eq!(spec.cell(1).corruption, Some(0.3));
        assert_eq!(spec.cell(2).switch_period, Some(100));
        assert_eq!(spec.cell(4).noise, 0.02);
        assert_eq!(spec.cell(4).switch_period, Some(50));
    }

    #[test]
    fn robustness_axis_rejections_name_the_problem() {
        for (bad, needle) in [
            // Corruption without a switch axis has no rounds to fire on.
            (r#"{"n": [100], "corruption": [0.2]}"#, "switch_period"),
            (r#"{"n": [100], "switch_period": [0]}"#, "at least 1 round"),
            (
                r#"{"n": [100], "switch_period": [50], "corruption": [1.5]}"#,
                "not a probability",
            ),
            (
                r#"{"n": [100], "switch_period": [50], "switches": 0}"#,
                "switches",
            ),
            // Last event (2 switches × 500 + midpoint 250) overruns the budget.
            (
                r#"{"n": [100], "switch_period": [500], "corruption": [0.1],
                    "switches": 2, "max_rounds": 1000}"#,
                "budget",
            ),
        ] {
            let err = SweepSpec::parse(bad).unwrap_err().to_string();
            assert!(err.contains(needle), "`{bad}` → `{err}`");
        }
    }

    #[test]
    fn cell_schedule_alternates_targets_and_places_midpoint_corruption() {
        let spec = SweepSpec::parse(
            r#"{"n": [100], "switch_period": [100], "corruption": [0.2],
                "switches": 3, "seeds": {"count": 1}, "max_rounds": 1000}"#,
        )
        .unwrap();
        let schedule = spec.cell_schedule(&spec.cell(0)).unwrap();
        let events = schedule.events();
        assert_eq!(events.len(), 6, "3 switches + 3 corruption midpoints");
        let mut switch_rounds = Vec::new();
        let mut corruption_rounds = Vec::new();
        for event in events {
            match event {
                FaultEvent::TrendSwitch { round, correct } => {
                    // Odd switches retarget to Zero, even back to One.
                    let expected = if (round / 100) % 2 == 1 {
                        Opinion::Zero
                    } else {
                        Opinion::One
                    };
                    assert_eq!(*correct, expected);
                    switch_rounds.push(*round);
                }
                FaultEvent::StateCorruption { round, fraction } => {
                    assert_eq!(*fraction, 0.2);
                    corruption_rounds.push(*round);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(switch_rounds, [100, 200, 300]);
        assert_eq!(corruption_rounds, [150, 250, 350]);
    }

    #[test]
    fn pre_gauntlet_specs_keep_their_canonical_bytes() {
        // A spec without robustness axes must not mention them in its
        // canonical form — existing manifest hashes stay valid.
        let spec = small_spec();
        let canon = spec.to_json().to_string();
        for key in ["switch_period", "corruption", "switches"] {
            assert!(!canon.contains(key), "`{key}` leaked into `{canon}`");
        }
    }

    #[test]
    fn gauntlet_episode_records_carry_recovery_and_round_trip() {
        let spec = SweepSpec::parse(
            r#"{"n": [120], "switch_period": [300], "switches": 2,
                "seeds": {"count": 1}, "max_rounds": 4000, "stability_window": 3}"#,
        )
        .unwrap();
        let cache = crate::cache::WarmCache::new();
        let record = spec.run_episode(0, &cache).unwrap();
        let switches: Vec<_> = record
            .recovery
            .iter()
            .filter(|r| r.kind == FaultEventKind::TrendSwitch)
            .collect();
        assert_eq!(switches.len(), 2);
        assert!(
            switches.iter().all(|r| r.adapted_at.is_some()),
            "noise-free switches re-adapt: {switches:?}"
        );
        let line = record.to_json().to_string();
        let back = EpisodeRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, record, "recovery records survive the manifest format");
    }
}
