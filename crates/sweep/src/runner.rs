//! The batch sweep runner: episode jobs over work-stealing workers,
//! streamed through a merge loop into the manifest and live aggregates.
//!
//! Scheduling shape (shared with `fet_sim::batch` via
//! [`fet_core::pool`]): a shared injector seeded with every pending
//! episode index, one deque per worker, owners popping LIFO and thieves
//! taking half FIFO. The pool decides *when* an episode runs, never
//! *what* it computes — each record is a pure function of its episode
//! index — so any worker count, any interleaving, and any kill/resume
//! history produce the same final manifest bytes.
//!
//! The merge loop runs on the calling thread: workers send completed
//! records over a channel; the merger journals each one as it lands
//! (completion order — crash-safe, not canonical), folds it into the
//! order-invariant live aggregates, and emits a progress line. When the
//! last episode lands the manifest is rewritten canonically and the
//! report rendered from episode-index order.

use crate::aggregate::{render_report, SweepAggregates, SweepReport};
use crate::cache::WarmCache;
use crate::error::SweepError;
use crate::manifest::Manifest;
use crate::spec::{EpisodeRecord, SweepSpec};
use fet_core::pool::{refill_batch, Injector, WorkerDeque};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How a sweep invocation should run.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 or 1 runs on the calling thread.
    pub workers: usize,
    /// Checkpoint path; `None` keeps records in memory only.
    pub manifest: Option<PathBuf>,
    /// Stop after this many episodes complete in *this* invocation,
    /// leaving the manifest resumable — the programmatic kill switch the
    /// resume tests drive.
    pub episode_limit: Option<usize>,
    /// Emit a live progress line to stderr.
    pub progress: bool,
}

/// What a sweep invocation produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every known record (resumed + new), in episode-index order.
    pub records: Vec<EpisodeRecord>,
    /// Rendered artifacts, present only when the sweep is complete.
    pub report: Option<SweepReport>,
    /// Episodes executed by this invocation.
    pub completed_now: usize,
    /// Episodes recovered from the manifest instead of re-run.
    pub resumed: usize,
    /// `true` when every episode of the spec is recorded.
    pub complete: bool,
    /// Wall-clock time of this invocation.
    pub elapsed: Duration,
    /// Distinct protocol instances the warm cache ended up holding.
    pub protocols_cached: usize,
    /// Distinct graphs the warm cache ended up holding.
    pub graphs_cached: usize,
}

impl SweepOutcome {
    /// Episodes per second over this invocation.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed_now as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs (or resumes) a sweep.
///
/// # Errors
///
/// Spec-validation, manifest, and episode-construction failures; an
/// episode failure aborts the sweep after in-flight episodes drain, and
/// everything already journaled stays resumable.
pub fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    spec.validate()?;
    let start = Instant::now();
    let cache = WarmCache::new();

    let mut manifest = match &options.manifest {
        Some(path) => Some(Manifest::open(path, spec)?),
        None => None,
    };
    let mut memory: BTreeMap<u64, EpisodeRecord> = BTreeMap::new();
    if let Some(m) = &manifest {
        for r in m.records() {
            memory.insert(r.episode, r.clone());
        }
    }
    let resumed = memory.len();

    let mut pending: Vec<u64> = (0..spec.episode_count())
        .filter(|e| !memory.contains_key(e))
        .collect();
    if let Some(limit) = options.episode_limit {
        pending.truncate(limit);
    }

    let mut aggregates = SweepAggregates::new(spec);
    for r in memory.values() {
        aggregates.record(r);
    }

    let completed_now = pending.len();
    if !pending.is_empty() {
        let workers = options.workers.max(1).min(pending.len());
        let mut last_progress = Instant::now();
        let mut failure: Option<SweepError> = None;
        // The merge step: journal (crash-safe, completion order), fold
        // into the live aggregates, emit progress.
        let mut merge = |result: Result<EpisodeRecord, SweepError>,
                         manifest: &mut Option<Manifest>|
         -> Result<(), SweepError> {
            let record = match result {
                Ok(r) => r,
                Err(e) => {
                    failure.get_or_insert(e);
                    return Ok(());
                }
            };
            aggregates.record(&record);
            if let Some(m) = manifest {
                m.append(record.clone())?;
            }
            memory.insert(record.episode, record);
            if options.progress
                && (last_progress.elapsed() > Duration::from_millis(200)
                    || aggregates.done() == aggregates.total())
            {
                eprint!(
                    "\r{}",
                    aggregates.progress_line(start.elapsed().as_secs_f64())
                );
                last_progress = Instant::now();
            }
            Ok(())
        };
        if workers <= 1 {
            // Serial path: run and merge inline, same discipline.
            for &episode in &pending {
                merge(spec.run_episode(episode, &cache), &mut manifest)?;
            }
        } else {
            let injector = Injector::new();
            injector.push_all(pending.iter().copied());
            let deques: Vec<WorkerDeque<u64>> = (0..workers).map(|_| WorkerDeque::new()).collect();
            let (tx, rx) = mpsc::channel::<Result<EpisodeRecord, SweepError>>();
            let mut merge_error: Option<SweepError> = None;
            std::thread::scope(|scope| {
                let cache = &cache;
                for me in 0..workers {
                    let tx = tx.clone();
                    let injector = &injector;
                    let deques = &deques;
                    scope.spawn(move || {
                        while let Some(episode) = next_job(me, injector, deques) {
                            if tx.send(spec.run_episode(episode, cache)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                // Merge concurrently on the calling thread; the loop
                // ends when the last worker drops its sender.
                for result in rx {
                    if let Err(e) = merge(result, &mut manifest) {
                        merge_error.get_or_insert(e);
                        break;
                    }
                }
            });
            if let Some(e) = merge_error {
                return Err(e);
            }
        }
        if options.progress {
            eprintln!();
        }
        if let Some(e) = failure {
            return Err(e);
        }
    }

    let complete = memory.len() as u64 == spec.episode_count();
    if complete {
        if let Some(m) = &mut manifest {
            if !m.is_complete() || completed_now > 0 {
                m.finalize(spec)?;
            } else if m.is_complete() && completed_now == 0 {
                // Fully resumed from a finalized manifest: nothing to do.
            }
        }
    }
    let records: Vec<EpisodeRecord> = memory.into_values().collect();
    let report = if complete {
        Some(render_report(spec, &records))
    } else {
        None
    };
    Ok(SweepOutcome {
        records,
        report,
        completed_now,
        resumed,
        complete,
        elapsed: start.elapsed(),
        protocols_cached: cache.protocols_cached(),
        graphs_cached: cache.graphs_cached(),
    })
}

/// Claims the next episode for worker `me`: own deque first, then a
/// batch from the injector, then half of the fullest sibling's deque.
/// `None` means the closed job world is exhausted.
fn next_job(me: usize, injector: &Injector<u64>, deques: &[WorkerDeque<u64>]) -> Option<u64> {
    loop {
        if let Some(job) = deques[me].pop() {
            return Some(job);
        }
        let batch = injector.claim(refill_batch(injector.len(), deques.len()));
        if !batch.is_empty() {
            deques[me].extend(batch);
            continue;
        }
        let victim = (0..deques.len())
            .filter(|&w| w != me)
            .max_by_key(|&w| deques[w].len())?;
        let loot = deques[victim].steal_half();
        if loot.is_empty() {
            return None;
        }
        deques[me].extend(loot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(workers: usize) -> SweepOptions {
        SweepOptions {
            workers,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn worker_count_does_not_change_records() {
        let spec = SweepSpec::parse(
            r#"{"n": [100], "noise": [0, 0.05], "seeds": {"count": 4}, "max_rounds": 3000}"#,
        )
        .unwrap();
        let one = run_sweep(&spec, &opts(1)).unwrap();
        let four = run_sweep(&spec, &opts(4)).unwrap();
        assert!(one.complete && four.complete);
        assert_eq!(one.records, four.records);
        assert_eq!(
            one.report.unwrap().to_string(),
            four.report.unwrap().to_string(),
            "rendered artifacts are worker-count invariant"
        );
    }

    #[test]
    fn episode_limit_leaves_a_resumable_partial() {
        let spec = SweepSpec::single_cell(100, 9, 6);
        let mut partial_opts = opts(2);
        partial_opts.episode_limit = Some(2);
        let partial = run_sweep(&spec, &partial_opts).unwrap();
        assert!(!partial.complete);
        assert!(partial.report.is_none());
        assert_eq!(partial.completed_now, 2);
    }

    #[test]
    fn warm_cache_holds_one_protocol_per_cell_ell() {
        let spec = SweepSpec::parse(r#"{"n": [100, 200], "seeds": {"count": 2}}"#).unwrap();
        let outcome = run_sweep(&spec, &opts(2)).unwrap();
        // Two populations with derived ℓ → at most two protocol builds
        // for eight episodes.
        assert!(
            outcome.protocols_cached <= 2,
            "{}",
            outcome.protocols_cached
        );
    }
}
