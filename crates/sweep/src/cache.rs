//! Warm shared state reused across episodes.
//!
//! Two pieces of episode setup are expensive and identical across every
//! episode of a grid cell: the protocol instance (a [`FetProtocol`] owns
//! an `Arc<SplitTable>` whose construction is `O(ℓ²)` table fills) and
//! the communication graph (`O(n·d)` edges plus RNG-driven wiring). Both
//! are immutable once built and internally `Arc`-backed, so the cache
//! hands out cheap clones and every worker thread shares one copy.
//!
//! Determinism note: caching never changes results. Protocol instances
//! are pure functions of `(name, n, ℓ)` and graphs are pure functions of
//! the topology spec and population — rebuilding from scratch yields the
//! exact same object.
//!
//! [`FetProtocol`]: fet_core::fet::FetProtocol

use crate::error::SweepError;
use crate::spec::{graph_seed_tree, TopologySpec};
use fet_core::erased::ErasedProtocol;
use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
use fet_topology::builders;
use fet_topology::graph::{Graph, SharedGraph};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Key of a cached graph: the topology spec fields plus the population
/// it was instantiated for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GraphKey {
    graph: String,
    degree: u32,
    /// `beta` bit pattern — `f64` is not `Hash`, and bitwise identity is
    /// the right equivalence for a cache key.
    beta_bits: u64,
    seed: u64,
    n: u32,
}

/// Thread-safe caches of protocol instances and graphs, shared by every
/// worker of a sweep (and across submissions in the daemon).
pub struct WarmCache {
    registry: ProtocolRegistry,
    protocols: Mutex<HashMap<(String, u64, u32), ErasedProtocol>>,
    graphs: Mutex<HashMap<GraphKey, Arc<Graph>>>,
}

impl WarmCache {
    /// An empty cache over the built-in protocol registry.
    pub fn new() -> WarmCache {
        WarmCache {
            registry: ProtocolRegistry::with_builtins(),
            protocols: Mutex::new(HashMap::new()),
            graphs: Mutex::new(HashMap::new()),
        }
    }

    /// The registry the cache builds protocols from (for name listings
    /// in error messages).
    pub fn registry(&self) -> &ProtocolRegistry {
        &self.registry
    }

    /// The protocol instance for `(name, n, ℓ)` — built once, cloned
    /// (refcount bump) thereafter.
    ///
    /// # Errors
    ///
    /// [`SweepError::Spec`] for unknown names or rejected parameters.
    pub fn protocol(&self, name: &str, n: u64, ell: u32) -> Result<ErasedProtocol, SweepError> {
        let key = (name.to_string(), n, ell);
        let mut cache = self.protocols.lock().expect("protocol cache poisoned");
        if let Some(hit) = cache.get(&key) {
            return Ok(hit.clone());
        }
        let built = self
            .registry
            .build(name, &ProtocolParams::with_ell(n, ell))
            .map_err(|e| {
                let names: Vec<&str> = self.registry.names().collect();
                SweepError::spec(format!(
                    "protocol `{name}`: {e} (known: {})",
                    names.join(", ")
                ))
            })?;
        cache.insert(key, built.clone());
        Ok(built)
    }

    /// The communication graph for `spec` at population `n`, wrapped for
    /// use as a [`Neighborhood`](fet_sim::neighborhood::Neighborhood).
    ///
    /// # Errors
    ///
    /// [`SweepError::Spec`] for unknown graph names or invalid builder
    /// parameters.
    pub fn shared_graph(&self, spec: &TopologySpec, n: u32) -> Result<SharedGraph, SweepError> {
        let key = GraphKey {
            graph: spec.graph.clone(),
            degree: spec.degree,
            beta_bits: spec.beta.to_bits(),
            seed: spec.seed,
            n,
        };
        let mut cache = self.graphs.lock().expect("graph cache poisoned");
        if let Some(hit) = cache.get(&key) {
            return Ok(SharedGraph::new(Arc::clone(hit)));
        }
        let graph = Arc::new(build_graph(spec, n)?);
        cache.insert(key, Arc::clone(&graph));
        Ok(SharedGraph::new(graph))
    }

    /// Number of distinct protocol instances currently cached.
    pub fn protocols_cached(&self) -> usize {
        self.protocols
            .lock()
            .expect("protocol cache poisoned")
            .len()
    }

    /// Number of distinct graphs currently cached.
    pub fn graphs_cached(&self) -> usize {
        self.graphs.lock().expect("graph cache poisoned").len()
    }
}

impl Default for WarmCache {
    fn default() -> Self {
        WarmCache::new()
    }
}

/// Instantiates the graph a [`TopologySpec`] describes, mirroring the
/// CLI's `topology` command (same names, same degree conventions, same
/// RNG labeling) so sweeps and one-off runs agree.
fn build_graph(spec: &TopologySpec, n: u32) -> Result<Graph, SweepError> {
    let degree = spec.degree;
    let mut rng = graph_seed_tree(spec.seed).child(&spec.graph).rng();
    let graph = match spec.graph.as_str() {
        "complete" => builders::complete(n),
        "er" => builders::erdos_renyi(n, f64::from(degree) / f64::from(n.max(1)), &mut rng),
        "regular" => builders::random_regular(n, degree + (n * degree) % 2, &mut rng),
        "ring" => builders::ring_lattice(n, degree.max(1)),
        "star" => builders::star(n),
        "barbell" => builders::barbell(n / 2, degree.clamp(1, n / 2)),
        "smallworld" => builders::watts_strogatz(n, degree.max(1), spec.beta, &mut rng),
        other => {
            return Err(SweepError::spec(format!(
                "unknown topology graph `{other}` \
                 (complete, er, regular, ring, star, barbell, smallworld)"
            )));
        }
    };
    graph.map_err(|e| SweepError::spec(format!("graph `{}`: {e}", spec.graph)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_instances_are_cached_and_shared() {
        let cache = WarmCache::new();
        let a = cache.protocol("fet", 100, 12).unwrap();
        let b = cache.protocol("fet", 100, 12).unwrap();
        let _ = (a, b);
        assert_eq!(cache.protocols_cached(), 1, "one instance for one key");
        cache.protocol("fet", 100, 16).unwrap();
        assert_eq!(cache.protocols_cached(), 2, "distinct ℓ is a distinct key");
    }

    #[test]
    fn unknown_protocol_lists_known_names() {
        let cache = WarmCache::new();
        let err = cache.protocol("nonsense", 100, 12).unwrap_err().to_string();
        assert!(err.contains("nonsense") && err.contains("fet"), "{err}");
    }

    #[test]
    fn graphs_are_cached_per_key() {
        let cache = WarmCache::new();
        let spec = TopologySpec {
            graph: "ring".to_string(),
            degree: 4,
            beta: 0.1,
            seed: 3,
        };
        cache.shared_graph(&spec, 64).unwrap();
        cache.shared_graph(&spec, 64).unwrap();
        assert_eq!(cache.graphs_cached(), 1);
        cache.shared_graph(&spec, 128).unwrap();
        assert_eq!(cache.graphs_cached(), 2, "population is part of the key");
    }

    #[test]
    fn unknown_graph_is_a_spec_error() {
        let cache = WarmCache::new();
        let spec = TopologySpec {
            graph: "torus".to_string(),
            degree: 4,
            beta: 0.1,
            seed: 0,
        };
        let err = cache.shared_graph(&spec, 64).unwrap_err().to_string();
        assert!(err.contains("torus"), "{err}");
    }
}
