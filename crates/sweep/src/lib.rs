//! # fet-sweep — the throughput tier
//!
//! Episode-parallel sweep engine for the Korman–Vacus experiments: a
//! [`SweepSpec`] (parameter grid × seed range) decomposes into
//! independent episode jobs that saturate cores through the shared
//! work-stealing pool in [`fet_core::pool`], stream through a merge
//! loop into live aggregates and an on-disk checkpoint, and render into
//! convergence tables, histograms, and phase-diagram heatmaps.
//!
//! The paper's workload is *many short runs*, not one long one: phase
//! diagrams over `(n, noise, ℓ)` grids and convergence-time
//! distributions over hundreds of seeds. This crate owns everything
//! between "a grid description" and "the rendered artifacts":
//!
//! * [`spec`] — the grid, its deterministic episode enumeration, and
//!   how one episode becomes a `fet_sim` simulation.
//! * [`cache`] — warm shared state (protocol instances with their split
//!   tables, communication graphs) reused across every episode.
//! * [`manifest`] — the kill/resume checkpoint: an append-only JSONL
//!   journal rewritten canonically on completion, byte-identical
//!   whatever the worker count or interruption history.
//! * [`aggregate`] — order-invariant live aggregates plus the final
//!   deterministic report.
//! * [`runner`] — the batch runner behind `fet sweep`.
//! * [`serve`] — the `fet serve` daemon: sweeps over HTTP/1.1 with
//!   NDJSON streaming and round-robin fairness across clients.
//! * [`json`] — the vendored `serde` is a no-op shim, so manifests and
//!   the wire protocol use this small canonical JSON implementation.
//!
//! ## Determinism contract
//!
//! Every episode result is a pure function of `(seed, shard count,
//! cell parameters)`. Scheduling — worker count, stealing order, client
//! multiplexing, kill/resume cycles — decides only *when* an episode
//! runs. Finalized manifests and rendered reports are therefore
//! byte-identical across all of those axes, which CI checks by
//! diffing `--workers 1` against `--workers 4` manifests.
//!
//! ## Quick start
//!
//! ```
//! use fet_sweep::runner::{run_sweep, SweepOptions};
//! use fet_sweep::spec::SweepSpec;
//!
//! let spec = SweepSpec::parse(
//!     r#"{"n": [100], "seeds": {"count": 4}, "max_rounds": 2000}"#,
//! )?;
//! let outcome = run_sweep(&spec, &SweepOptions { workers: 2, ..Default::default() })?;
//! assert!(outcome.complete);
//! println!("{}", outcome.report.unwrap());
//! # Ok::<(), fet_sweep::error::SweepError>(())
//! ```

pub mod aggregate;
pub mod cache;
pub mod error;
pub mod json;
pub mod manifest;
pub mod runner;
pub mod serve;
pub mod spec;

pub use aggregate::{render_report, SweepAggregates, SweepReport};
pub use cache::WarmCache;
pub use error::SweepError;
pub use json::Json;
pub use manifest::Manifest;
pub use runner::{run_sweep, SweepOptions, SweepOutcome};
pub use serve::SweepServer;
pub use spec::{EpisodeRecord, SweepSpec};
