//! Error type for the sweep engine.

use crate::json::JsonError;
use std::fmt;
use std::io;

/// Anything that can go wrong assembling or running a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// The spec document is not valid JSON.
    Json(JsonError),
    /// The spec parsed but describes an invalid sweep.
    Spec {
        /// What is wrong, naming the offending field.
        detail: String,
    },
    /// A filesystem operation on the manifest failed.
    Io(io::Error),
    /// A manifest exists but belongs to a different spec.
    ManifestMismatch {
        /// Hash recorded in the manifest header.
        found: String,
        /// Hash of the spec being run.
        expected: String,
    },
    /// The underlying simulation rejected an episode configuration.
    Sim(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Json(e) => write!(f, "spec is not valid JSON: {e}"),
            SweepError::Spec { detail } => write!(f, "invalid sweep spec: {detail}"),
            SweepError::Io(e) => write!(f, "manifest I/O failed: {e}"),
            SweepError::ManifestMismatch { found, expected } => write!(
                f,
                "manifest belongs to a different spec (manifest hash {found}, \
                 spec hash {expected}); delete the manifest or fix the spec path"
            ),
            SweepError::Sim(detail) => write!(f, "episode configuration rejected: {detail}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<JsonError> for SweepError {
    fn from(e: JsonError) -> Self {
        SweepError::Json(e)
    }
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl SweepError {
    /// Convenience constructor for spec-validation failures.
    pub fn spec(detail: impl Into<String>) -> Self {
        SweepError::Spec {
            detail: detail.into(),
        }
    }
}
