//! Daemon-level tests: concurrent clients over real TCP sockets.

use fet_sweep::json::Json;
use fet_sweep::runner::{run_sweep, SweepOptions};
use fet_sweep::serve::SweepServer;
use fet_sweep::spec::SweepSpec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// POSTs `body` to `/sweep` and returns the NDJSON lines of the response
/// body (headers stripped).
fn post_sweep(addr: SocketAddr, body: &str) -> (String, Vec<String>) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "POST /sweep HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("response read");
    let (head, rest) = response.split_once("\r\n\r\n").expect("header terminator");
    let status = head.lines().next().unwrap_or("").to_string();
    let lines = rest
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    (status, lines)
}

fn get_status(addr: SocketAddr) -> Json {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET /status HTTP/1.1\r\nHost: test\r\n\r\n").expect("request written");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("response read");
    let (_, body) = response.split_once("\r\n\r\n").expect("header terminator");
    Json::parse(body.trim()).expect("status is JSON")
}

/// The reference record lines for a spec: what an in-process sweep
/// produces, serialized exactly as the daemon streams them.
fn reference_lines(spec_text: &str) -> Vec<String> {
    let spec = SweepSpec::parse(spec_text).unwrap();
    let outcome = run_sweep(
        &spec,
        &SweepOptions {
            workers: 1,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    outcome
        .records
        .iter()
        .map(|r| r.to_json().to_string())
        .collect()
}

const SPEC_A: &str = r#"{"n": [90], "seeds": {"base": 0, "count": 4}, "max_rounds": 1500}"#;
const SPEC_B: &str = r#"{"n": [110], "seeds": {"base": 500, "count": 4}, "max_rounds": 1500}"#;

#[test]
fn two_concurrent_clients_get_disjoint_deterministic_streams() {
    let server = SweepServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();

    let a = std::thread::spawn(move || post_sweep(addr, SPEC_A));
    let b = std::thread::spawn(move || post_sweep(addr, SPEC_B));
    let (status_a, lines_a) = a.join().unwrap();
    let (status_b, lines_b) = b.join().unwrap();
    assert!(status_a.contains("200"), "{status_a}");
    assert!(status_b.contains("200"), "{status_b}");

    for (tag, lines, spec_text) in [("A", &lines_a, SPEC_A), ("B", &lines_b, SPEC_B)] {
        let (footer, records) = lines.split_last().expect("footer line");
        assert_eq!(records.len(), 4, "client {tag} saw all episodes");
        let footer = Json::parse(footer).unwrap();
        assert_eq!(
            footer.get("done").and_then(Json::as_bool),
            Some(true),
            "{tag}"
        );
        assert_eq!(
            footer.get("episodes").and_then(Json::as_u64),
            Some(4),
            "{tag}"
        );

        // Deterministic: completion order may vary, content may not.
        let mut got: Vec<String> = records.to_vec();
        let mut want = reference_lines(spec_text);
        got.sort();
        want.sort();
        assert_eq!(
            got, want,
            "client {tag}'s records match an in-process sweep"
        );
    }

    // Disjoint: no (n, seed) pair appears in both streams.
    let keys = |lines: &[String]| -> Vec<(u64, u64)> {
        lines[..lines.len() - 1]
            .iter()
            .map(|l| {
                let v = Json::parse(l).unwrap();
                (
                    v.get("cell")
                        .and_then(|c| c.get("n"))
                        .and_then(Json::as_u64)
                        .unwrap(),
                    v.get("seed").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect()
    };
    for key in keys(&lines_a) {
        assert!(!keys(&lines_b).contains(&key), "streams overlap at {key:?}");
    }

    let status = get_status(addr);
    assert_eq!(
        status.get("completed_episodes").and_then(Json::as_u64),
        Some(8),
        "{status}"
    );
    assert_eq!(
        status.get("queue_depth").and_then(Json::as_u64),
        Some(0),
        "{status}"
    );
    assert_eq!(
        status.get("active_submissions").and_then(Json::as_u64),
        Some(0),
        "{status}"
    );
}

#[test]
fn malformed_spec_gets_a_400_with_detail() {
    let server = SweepServer::bind("127.0.0.1:0", 1).unwrap();
    let (status, lines) = post_sweep(server.local_addr(), r#"{"n": [100,}"#);
    assert!(status.contains("400"), "{status}");
    let body = Json::parse(&lines.join("")).unwrap();
    assert!(
        body.get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("JSON"),
        "{body}"
    );

    let (status, lines) = post_sweep(server.local_addr(), r#"{"noise": [0.5]}"#);
    assert!(status.contains("400"), "{status}");
    assert!(lines.join("").contains("`n` is required"), "{lines:?}");
}

#[test]
fn sequential_submissions_reuse_the_warm_cache() {
    let server = SweepServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr();
    post_sweep(addr, SPEC_A);
    post_sweep(addr, SPEC_A);
    let status = get_status(addr);
    assert_eq!(
        status.get("protocols_cached").and_then(Json::as_u64),
        Some(1),
        "same cell → one warm protocol instance across submissions: {status}"
    );
    assert_eq!(
        status.get("submitted").and_then(Json::as_u64),
        Some(2),
        "{status}"
    );
}
