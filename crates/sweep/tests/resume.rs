//! Checkpoint/resume properties: a sweep killed after `k` of `N`
//! episodes and resumed must reproduce the uninterrupted run exactly —
//! manifest bytes and rendered aggregates — whatever the worker counts
//! on either side of the kill.

use fet_sweep::runner::{run_sweep, SweepOptions};
use fet_sweep::spec::SweepSpec;
use proptest::{prop_assert, prop_assert_eq, proptest};
use std::path::PathBuf;

fn temp_manifest(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fet-sweep-resume-{tag}-{}", std::process::id()));
    p
}

fn opts(workers: usize, manifest: Option<PathBuf>, limit: Option<usize>) -> SweepOptions {
    SweepOptions {
        workers,
        manifest,
        episode_limit: limit,
        progress: false,
    }
}

/// A cheap two-cell grid: 6 episodes of n = 60. `max_rounds` is tight —
/// non-convergence is a valid, deterministic outcome, and the byte-diff
/// property is about reproducibility, not convergence.
fn small_spec(seed_base: u64) -> SweepSpec {
    SweepSpec::parse(&format!(
        r#"{{"n": [60], "noise": [0, 0.02], "seeds": {{"base": {seed_base}, "count": 3}},
            "max_rounds": 400}}"#
    ))
    .unwrap()
}

proptest! {
    #[test]
    fn kill_then_resume_reproduces_the_uninterrupted_manifest(
        kill_after in 1usize..6,
        workers_before in 1usize..5,
        workers_after in 1usize..5,
        seed_base in 0u64..1_000,
        torn in proptest::any::<bool>(),
    ) {
        let spec = small_spec(seed_base);
        let reference_path = temp_manifest(&format!("ref-{seed_base}"));
        let interrupted_path = temp_manifest(&format!("int-{seed_base}-{kill_after}"));
        let _ = std::fs::remove_file(&reference_path);
        let _ = std::fs::remove_file(&interrupted_path);

        // Uninterrupted reference.
        let reference = run_sweep(&spec, &opts(workers_after, Some(reference_path.clone()), None))
            .unwrap();
        prop_assert!(reference.complete);

        // Kill after `kill_after` episodes, then resume (possibly with a
        // different worker count).
        let partial = run_sweep(
            &spec,
            &opts(workers_before, Some(interrupted_path.clone()), Some(kill_after)),
        )
        .unwrap();
        prop_assert!(!partial.complete);
        prop_assert_eq!(partial.completed_now, kill_after);
        // Optionally tear the final journal line, emulating a kill that
        // lands mid-write rather than between episodes: the damaged
        // record is dropped and its episode rerun.
        let mut lost = 0usize;
        if torn {
            let bytes = std::fs::read(&interrupted_path).unwrap();
            std::fs::write(&interrupted_path, &bytes[..bytes.len() - 7]).unwrap();
            lost = 1;
        }
        let resumed = run_sweep(&spec, &opts(workers_after, Some(interrupted_path.clone()), None))
            .unwrap();
        prop_assert!(resumed.complete);
        prop_assert_eq!(resumed.resumed, kill_after - lost);
        prop_assert_eq!(resumed.completed_now, 6 - kill_after + lost);

        let reference_bytes = std::fs::read(&reference_path).unwrap();
        let resumed_bytes = std::fs::read(&interrupted_path).unwrap();
        prop_assert_eq!(resumed_bytes, reference_bytes);
        prop_assert_eq!(
            resumed.report.unwrap().to_string(),
            reference.report.unwrap().to_string()
        );

        let _ = std::fs::remove_file(&reference_path);
        let _ = std::fs::remove_file(&interrupted_path);
    }
}

/// Stream identity with the replicate tier: a single-cell sweep runs the
/// exact per-seed simulations `fet_sim::batch::run_replicated` dispatches
/// when both sit on the shared pool — same seeds, same reports, for any
/// thread count.
#[test]
fn single_cell_sweep_matches_run_replicated_streams() {
    use fet_sim::engine::ExecutionMode;
    use fet_sim::simulation::Simulation;

    let base = 40u64;
    let replicates = 6u64;
    let spec = SweepSpec::single_cell(90, base, replicates);
    let outcome = run_sweep(&spec, &opts(3, None, None)).unwrap();
    assert!(outcome.complete);

    let simulate = |i: u64| {
        Simulation::builder()
            .population(90)
            .seed(base + i)
            .execution_mode(ExecutionMode::Fused)
            .build()
            .unwrap()
            .run()
            .report
    };
    for threads in [1usize, 4] {
        let (reports, _) = fet_sim::batch::run_replicated(replicates, threads, simulate);
        assert_eq!(reports.len(), outcome.records.len());
        for (record, report) in outcome.records.iter().zip(&reports) {
            assert_eq!(
                &record.report, report,
                "episode {} (seed {}) diverged at {threads} threads",
                record.episode, record.seed
            );
        }
    }
}

/// Resuming a finalized manifest is a no-op that still yields the report.
#[test]
fn resuming_a_complete_manifest_runs_nothing() {
    let spec = small_spec(77);
    let path = temp_manifest("complete");
    let _ = std::fs::remove_file(&path);
    let first = run_sweep(&spec, &opts(2, Some(path.clone()), None)).unwrap();
    let before = std::fs::read(&path).unwrap();
    let second = run_sweep(&spec, &opts(4, Some(path.clone()), None)).unwrap();
    assert_eq!(second.completed_now, 0);
    assert_eq!(second.resumed, 6);
    assert!(second.complete);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "no rewrite on pure resume"
    );
    assert_eq!(
        second.report.unwrap().to_string(),
        first.report.unwrap().to_string()
    );
    let _ = std::fs::remove_file(&path);
}

/// A manifest refuses to resume under a different spec.
#[test]
fn resume_under_a_different_spec_is_refused() {
    let path = temp_manifest("mismatch");
    let _ = std::fs::remove_file(&path);
    run_sweep(&small_spec(1), &opts(1, Some(path.clone()), Some(2))).unwrap();
    let err = run_sweep(&small_spec(2), &opts(1, Some(path.clone()), None)).unwrap_err();
    assert!(err.to_string().contains("different spec"), "{err}");
    let _ = std::fs::remove_file(&path);
}
