//! # fet-gauntlet — the robustness tier
//!
//! A *gauntlet* is a sweep over fault schedules: every episode runs a
//! round-indexed [`fet_sim::fault::FaultSchedule`] that repeatedly
//! retargets the correct opinion (and optionally corrupts agent state at
//! the switch-window midpoints), and the artifact of interest is not the
//! one-shot convergence time but the **per-switch recovery profile** —
//! how fast the population re-adapts after each perturbation.
//!
//! The crate is a thin orchestration layer over [`fet_sweep`]:
//!
//! * a [`GauntletSpec`] is a sweep spec with a `protocols` *axis* —
//!   the same `(n × noise × switch_period × corruption × seeds)` grid is
//!   expanded into one [`SweepSpec`] per protocol name;
//! * [`run_gauntlet`] drives [`run_sweep`] once per protocol, giving each
//!   its own checkpoint manifest (`<stem>.<protocol>.jsonl`) so the
//!   kill/resume and byte-identity guarantees of the sweep tier carry
//!   over unchanged;
//! * when every sweep is complete, a [`GauntletReport`] condenses the
//!   episode records into per-cell adaptation-latency distributions
//!   (mean / median / p95 over trend-switch events) and renders one
//!   noise × switch-period heatmap per protocol.
//!
//! ## Determinism contract
//!
//! A gauntlet inherits the sweep tier's contract verbatim: every episode
//! is a pure function of `(seed, shard count, cell parameters)`, so the
//! finalized per-protocol manifests and the rendered report are
//! byte-identical across worker counts, episode interleavings, and
//! kill/resume cycles. CI checks this by diffing gauntlet manifests
//! produced under `--workers 1`, `--workers 4`, and an interrupted run.
//!
//! ## Quick start
//!
//! ```
//! use fet_gauntlet::{run_gauntlet, GauntletOptions, GauntletSpec};
//!
//! let spec = GauntletSpec::parse(
//!     r#"{"n": [200], "noise": [0, 0.02], "switch_period": [400],
//!         "switches": 2, "seeds": {"count": 2}, "max_rounds": 4000}"#,
//! )?;
//! let outcome = run_gauntlet(&spec, &GauntletOptions::default())?;
//! assert!(outcome.complete);
//! println!("{}", outcome.report.unwrap());
//! # Ok::<(), fet_sweep::SweepError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use fet_plot::heatmap::Heatmap;
use fet_plot::table::{fmt_float, Table};
use fet_sim::convergence::RecoveryRecord;
use fet_sim::fault::FaultEventKind;
use fet_stats::summary::Summary;
use fet_sweep::{
    run_sweep, EpisodeRecord, Json, SweepError, SweepOptions, SweepOutcome, SweepSpec,
};
use std::fmt;
use std::path::{Path, PathBuf};

/// A gauntlet: one fault-schedule sweep grid, expanded per protocol.
///
/// Parsed from the sweep-spec JSON dialect plus one extra member,
/// `"protocols"` — an array of protocol registry names that replaces the
/// scalar `"protocol"` field (the two are mutually exclusive). Every
/// other member is handed to [`SweepSpec::parse`] unchanged, so the
/// robustness axes (`switch_period`, `corruption`, `switches`) follow
/// the sweep tier's rules; a gauntlet additionally *requires* a
/// non-empty `switch_period` axis — a schedule-free grid is a plain
/// sweep and should run as one.
#[derive(Debug, Clone, PartialEq)]
pub struct GauntletSpec {
    /// `(protocol name, expanded sweep)` in spec order.
    sweeps: Vec<(String, SweepSpec)>,
}

impl GauntletSpec {
    /// Parses a gauntlet spec document.
    ///
    /// # Errors
    ///
    /// Invalid JSON, an invalid `protocols` member, both `protocol` and
    /// `protocols` present, a missing `switch_period` axis, or any error
    /// [`SweepSpec::parse`] reports for the expanded per-protocol spec.
    pub fn parse(text: &str) -> Result<GauntletSpec, SweepError> {
        let doc = Json::parse(text)?;
        let Json::Object(members) = &doc else {
            return Err(SweepError::spec("the spec must be a JSON object"));
        };
        if doc.get("protocol").is_some() && doc.get("protocols").is_some() {
            return Err(SweepError::spec(
                "use either `protocol` or `protocols`, not both",
            ));
        }
        let protocols: Vec<String> = match doc.get("protocols") {
            None => match doc.get("protocol") {
                None => vec!["fet".to_string()],
                Some(v) => vec![v
                    .as_str()
                    .ok_or_else(|| SweepError::spec("`protocol` must be a string"))?
                    .to_string()],
            },
            Some(Json::Array(items)) if !items.is_empty() => {
                let mut names = Vec::with_capacity(items.len());
                for item in items {
                    let name = item
                        .as_str()
                        .ok_or_else(|| SweepError::spec("`protocols` entries must be strings"))?;
                    if names.iter().any(|n| n == name) {
                        return Err(SweepError::spec(format!(
                            "protocol `{name}` is listed twice in `protocols`"
                        )));
                    }
                    names.push(name.to_string());
                }
                names
            }
            Some(_) => {
                return Err(SweepError::spec(
                    "`protocols` must be a non-empty array of protocol names",
                ));
            }
        };
        let mut sweeps = Vec::with_capacity(protocols.len());
        for name in protocols {
            let mut sweep_members: Vec<(String, Json)> =
                vec![("protocol".to_string(), Json::Str(name.clone()))];
            for (key, value) in members {
                if key != "protocol" && key != "protocols" {
                    sweep_members.push((key.clone(), value.clone()));
                }
            }
            let sweep = SweepSpec::parse(&Json::Object(sweep_members).to_string())?;
            if sweep.switch_period.is_empty() {
                return Err(SweepError::spec(
                    "a gauntlet needs a non-empty `switch_period` axis; \
                     schedule-free grids are plain sweeps — run `fet sweep`",
                ));
            }
            sweeps.push((name, sweep));
        }
        Ok(GauntletSpec { sweeps })
    }

    /// The per-protocol sweeps, in spec order.
    pub fn sweeps(&self) -> &[(String, SweepSpec)] {
        &self.sweeps
    }

    /// The protocol names, in spec order.
    pub fn protocols(&self) -> impl Iterator<Item = &str> {
        self.sweeps.iter().map(|(name, _)| name.as_str())
    }

    /// Total episodes across all protocols.
    pub fn episode_count(&self) -> u64 {
        self.sweeps.iter().map(|(_, s)| s.episode_count()).sum()
    }
}

/// How a gauntlet invocation should run (the per-protocol analogue of
/// [`SweepOptions`]).
#[derive(Debug, Clone, Default)]
pub struct GauntletOptions {
    /// Worker threads per sweep; 0 or 1 runs on the calling thread.
    pub workers: usize,
    /// Checkpoint path *stem*; each protocol journals into
    /// `<stem>.<protocol>.jsonl` (see [`manifest_path`]). `None` keeps
    /// records in memory only.
    pub manifest_stem: Option<PathBuf>,
    /// Stop after this many episodes complete in *this* invocation,
    /// counted across protocols — the programmatic kill switch the
    /// resume tests drive. Sweeps whose budget is exhausted still replay
    /// their manifests, so resumed records are never lost.
    pub episode_limit: Option<usize>,
    /// Emit live progress lines to stderr.
    pub progress: bool,
}

/// The manifest path for one protocol under a gauntlet stem:
/// `<stem>.<protocol>.jsonl`.
pub fn manifest_path(stem: &Path, protocol: &str) -> PathBuf {
    let mut name = stem
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(format!(".{protocol}.jsonl"));
    stem.with_file_name(name)
}

/// One protocol's slice of a gauntlet invocation.
#[derive(Debug)]
pub struct ProtocolOutcome {
    /// Protocol registry name.
    pub protocol: String,
    /// The underlying sweep outcome.
    pub outcome: SweepOutcome,
}

/// What a gauntlet invocation produced.
#[derive(Debug)]
pub struct GauntletOutcome {
    /// Per-protocol outcomes, in spec order.
    pub outcomes: Vec<ProtocolOutcome>,
    /// `true` when every protocol's sweep is complete.
    pub complete: bool,
    /// The rendered robustness report, present only when complete.
    pub report: Option<GauntletReport>,
}

impl GauntletOutcome {
    /// Episodes executed by this invocation, across protocols.
    pub fn completed_now(&self) -> usize {
        self.outcomes.iter().map(|p| p.outcome.completed_now).sum()
    }

    /// Episodes recovered from manifests instead of re-run.
    pub fn resumed(&self) -> usize {
        self.outcomes.iter().map(|p| p.outcome.resumed).sum()
    }
}

/// Runs (or resumes) a gauntlet: one checkpointed sweep per protocol.
///
/// # Errors
///
/// Whatever [`run_sweep`] reports for any protocol's sweep; manifests
/// already journaled stay resumable.
pub fn run_gauntlet(
    spec: &GauntletSpec,
    options: &GauntletOptions,
) -> Result<GauntletOutcome, SweepError> {
    let mut outcomes = Vec::with_capacity(spec.sweeps.len());
    let mut remaining = options.episode_limit;
    for (protocol, sweep) in spec.sweeps() {
        if options.progress {
            eprintln!(
                "gauntlet: protocol `{protocol}` ({} episodes)",
                sweep.episode_count()
            );
        }
        let sweep_options = SweepOptions {
            workers: options.workers,
            manifest: options
                .manifest_stem
                .as_deref()
                .map(|stem| manifest_path(stem, protocol)),
            episode_limit: remaining,
            progress: options.progress,
        };
        let outcome = run_sweep(sweep, &sweep_options)?;
        if let Some(budget) = remaining.as_mut() {
            *budget = budget.saturating_sub(outcome.completed_now);
        }
        outcomes.push(ProtocolOutcome {
            protocol: protocol.clone(),
            outcome,
        });
    }
    let complete = outcomes.iter().all(|p| p.outcome.complete);
    let report = if complete {
        Some(render_gauntlet(spec, &outcomes))
    } else {
        None
    };
    Ok(GauntletOutcome {
        outcomes,
        complete,
        report,
    })
}

/// One grid cell's recovery profile, aggregated over its seeds.
///
/// Adaptation/re-stabilization statistics cover **trend-switch** events
/// only (the headline robustness metric); corruption and noise events
/// perturb the run but are not separately scored. Latency fields are
/// `None` when no switch in the cell ever re-adapted — the expected
/// outcome deep in the no-recovery phase, not an error.
#[derive(Debug, Clone, PartialEq)]
pub struct GauntletRow {
    /// Protocol registry name.
    pub protocol: String,
    /// Population size.
    pub n: u64,
    /// Observation-noise level.
    pub noise: f64,
    /// Rounds between trend switches.
    pub switch_period: u64,
    /// State-corruption fraction, when the cell has one.
    pub corruption: Option<f64>,
    /// Trend-switch events observed across the cell's seeds.
    pub switches: u64,
    /// Switches that re-adapted (first all-correct round reached).
    pub adapted: u64,
    /// Switches that re-stabilized (held the stability window).
    pub restabilized: u64,
    /// Mean adaptation latency over re-adapted switches.
    pub adapt_mean: Option<f64>,
    /// Median adaptation latency.
    pub adapt_median: Option<f64>,
    /// 95th-percentile adaptation latency.
    pub adapt_p95: Option<f64>,
    /// Median re-stabilization time over re-stabilized switches.
    pub restab_median: Option<f64>,
}

/// The rendered robustness report: per-cell recovery rows plus one
/// noise × switch-period adaptation-latency heatmap per protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct GauntletReport {
    /// Per-cell rows, in `protocol × n × noise × period × corruption`
    /// spec order.
    pub rows: Vec<GauntletRow>,
    rendered: String,
}

impl fmt::Display for GauntletReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Trend-switch recovery records of one episode record.
fn switch_recoveries(record: &EpisodeRecord) -> impl Iterator<Item = &RecoveryRecord> {
    record
        .recovery
        .iter()
        .filter(|r| r.kind == FaultEventKind::TrendSwitch)
}

fn summarize(values: &[f64]) -> (Option<f64>, Option<f64>, Option<f64>) {
    match Summary::from_slice(values) {
        Ok(s) => (Some(s.mean()), Some(s.median()), Some(s.quantile(0.95))),
        Err(_) => (None, None, None),
    }
}

fn opt_float(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), fmt_float)
}

/// Builds the robustness report from complete per-protocol outcomes.
///
/// Deterministic by construction: rows follow the spec's axis order and
/// every statistic is computed from the episode records in episode-index
/// order, so the rendered text is byte-identical however the episodes
/// were scheduled.
pub fn render_gauntlet(spec: &GauntletSpec, outcomes: &[ProtocolOutcome]) -> GauntletReport {
    let mut rows = Vec::new();
    let mut rendered = String::new();
    let mut table = Table::new(
        [
            "protocol",
            "n",
            "noise",
            "period",
            "corrupt",
            "switches",
            "adapted",
            "restab",
            "adapt mean",
            "adapt p50",
            "adapt p95",
            "restab p50",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut heatmaps = String::new();
    for (slot, (protocol, sweep)) in spec.sweeps().iter().enumerate() {
        let records = &outcomes[slot].outcome.records;
        let corruption_axis: Vec<Option<f64>> = if sweep.corruption.is_empty() {
            vec![None]
        } else {
            sweep.corruption.iter().copied().map(Some).collect()
        };
        for &n in &sweep.n {
            for &noise in &sweep.noise {
                for &period in &sweep.switch_period {
                    for &corruption in &corruption_axis {
                        let cell_records: Vec<&EpisodeRecord> = records
                            .iter()
                            .filter(|r| {
                                r.cell.n == n
                                    && r.cell.noise == noise
                                    && r.cell.switch_period == Some(period)
                                    && r.cell.corruption == corruption
                            })
                            .collect();
                        let mut switches = 0u64;
                        let mut adapted = 0u64;
                        let mut restabilized = 0u64;
                        let mut adapt_latencies = Vec::new();
                        let mut restab_times = Vec::new();
                        for record in &cell_records {
                            for recovery in switch_recoveries(record) {
                                switches += 1;
                                if let Some(lat) = recovery.adaptation_latency() {
                                    adapted += 1;
                                    adapt_latencies.push(lat as f64);
                                }
                                if let Some(t) = recovery.restabilization_time() {
                                    restabilized += 1;
                                    restab_times.push(t as f64);
                                }
                            }
                        }
                        let (adapt_mean, adapt_median, adapt_p95) = summarize(&adapt_latencies);
                        let (_, restab_median, _) = summarize(&restab_times);
                        let row = GauntletRow {
                            protocol: protocol.clone(),
                            n,
                            noise,
                            switch_period: period,
                            corruption,
                            switches,
                            adapted,
                            restabilized,
                            adapt_mean,
                            adapt_median,
                            adapt_p95,
                            restab_median,
                        };
                        table.add_row(vec![
                            row.protocol.clone(),
                            row.n.to_string(),
                            fmt_float(row.noise),
                            row.switch_period.to_string(),
                            opt_float(row.corruption),
                            row.switches.to_string(),
                            row.adapted.to_string(),
                            row.restabilized.to_string(),
                            opt_float(row.adapt_mean),
                            opt_float(row.adapt_median),
                            opt_float(row.adapt_p95),
                            opt_float(row.restab_median),
                        ]);
                        rows.push(row);
                    }
                }
            }
        }
        // Per-protocol heatmap: mean adaptation latency by
        // (noise row, switch-period column), pooled over n/ℓ/corruption.
        let values: Vec<Vec<f64>> = sweep
            .noise
            .iter()
            .map(|&noise| {
                sweep
                    .switch_period
                    .iter()
                    .map(|&period| {
                        let latencies: Vec<f64> = records
                            .iter()
                            .filter(|r| {
                                r.cell.noise == noise && r.cell.switch_period == Some(period)
                            })
                            .flat_map(switch_recoveries)
                            .filter_map(|rec| rec.adaptation_latency().map(|l| l as f64))
                            .collect();
                        match Summary::from_slice(&latencies) {
                            Ok(s) => s.mean(),
                            Err(_) => f64::NAN,
                        }
                    })
                    .collect()
            })
            .collect();
        let mut hm = Heatmap::new(values);
        hm.title(format!(
            "{protocol}: mean adaptation latency (rows: noise ↑, cols: switch period →; '?' = never re-adapted)"
        ));
        heatmaps.push_str(&hm.render_flipped());
    }
    rendered.push_str("per-switch recovery (trend-switch events)\n");
    rendered.push_str(&table.render());
    rendered.push('\n');
    rendered.push_str(&heatmaps);
    GauntletReport { rows, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"{
        "n": [120],
        "noise": [0, 0.02],
        "switch_period": [300],
        "switches": 2,
        "seeds": {"count": 2},
        "max_rounds": 4000,
        "stability_window": 3
    }"#;

    fn temp_stem(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fet-gauntlet-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn protocols_default_to_fet() {
        let spec = GauntletSpec::parse(SMALL).unwrap();
        assert_eq!(spec.protocols().collect::<Vec<_>>(), ["fet"]);
        assert_eq!(spec.episode_count(), 4);
    }

    #[test]
    fn protocols_axis_expands_per_protocol() {
        let spec = GauntletSpec::parse(
            r#"{"protocols": ["fet", "voter"], "n": [100], "switch_period": [200],
                "seeds": {"count": 3}}"#,
        )
        .unwrap();
        assert_eq!(spec.protocols().collect::<Vec<_>>(), ["fet", "voter"]);
        assert_eq!(spec.sweeps()[1].1.protocol, "voter");
        assert_eq!(spec.episode_count(), 6);
    }

    #[test]
    fn spec_rejections_name_the_problem() {
        for (text, needle) in [
            (r#"[1]"#, "JSON object"),
            (
                r#"{"protocol": "fet", "protocols": ["fet"], "n": [100], "switch_period": [9]}"#,
                "not both",
            ),
            (
                r#"{"protocols": [], "n": [100], "switch_period": [9]}"#,
                "non-empty array",
            ),
            (
                r#"{"protocols": [7], "n": [100], "switch_period": [9]}"#,
                "must be strings",
            ),
            (
                r#"{"protocols": ["fet", "fet"], "n": [100], "switch_period": [9]}"#,
                "listed twice",
            ),
            (r#"{"n": [100]}"#, "switch_period"),
            (
                r#"{"n": [100], "switch_period": [9], "bogus": 1}"#,
                "unknown field",
            ),
        ] {
            let err = GauntletSpec::parse(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` → `{err}`");
        }
    }

    #[test]
    fn manifest_path_appends_protocol_and_extension() {
        assert_eq!(
            manifest_path(Path::new("/tmp/run/g"), "fet"),
            Path::new("/tmp/run/g.fet.jsonl")
        );
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let spec = GauntletSpec::parse(SMALL).unwrap();
        let one = run_gauntlet(
            &spec,
            &GauntletOptions {
                workers: 1,
                ..GauntletOptions::default()
            },
        )
        .unwrap();
        let four = run_gauntlet(
            &spec,
            &GauntletOptions {
                workers: 4,
                ..GauntletOptions::default()
            },
        )
        .unwrap();
        assert!(one.complete && four.complete);
        assert_eq!(
            one.outcomes[0].outcome.records,
            four.outcomes[0].outcome.records
        );
        assert_eq!(
            one.report.unwrap().to_string(),
            four.report.unwrap().to_string(),
            "rendered gauntlet artifacts are worker-count invariant"
        );
    }

    #[test]
    fn report_scores_every_cell_and_switch() {
        let spec = GauntletSpec::parse(SMALL).unwrap();
        let outcome = run_gauntlet(&spec, &GauntletOptions::default()).unwrap();
        let report = outcome.report.unwrap();
        assert_eq!(report.rows.len(), 2, "one row per (noise) cell");
        for row in &report.rows {
            assert_eq!(row.switches, 4, "2 switches × 2 seeds per cell");
        }
        let quiet = &report.rows[0];
        assert_eq!(quiet.noise, 0.0);
        assert_eq!(quiet.adapted, 4, "noise-free switches all re-adapt");
        assert!(quiet.adapt_mean.is_some() && quiet.adapt_p95.is_some());
        let text = report.to_string();
        assert!(text.contains("adapt p95"));
        assert!(text.contains("mean adaptation latency"));
    }

    #[test]
    fn interrupted_gauntlet_resumes_to_identical_manifests() {
        let stem_a = temp_stem("resume-a");
        let stem_b = temp_stem("resume-b");
        let spec = GauntletSpec::parse(SMALL).unwrap();
        let cleanup = |stem: &Path| {
            let _ = std::fs::remove_file(manifest_path(stem, "fet"));
        };
        cleanup(&stem_a);
        cleanup(&stem_b);

        // One uninterrupted reference run.
        let reference = run_gauntlet(
            &spec,
            &GauntletOptions {
                manifest_stem: Some(stem_a.clone()),
                ..GauntletOptions::default()
            },
        )
        .unwrap();
        assert!(reference.complete);

        // Kill after 1 episode, then resume to completion.
        let partial = run_gauntlet(
            &spec,
            &GauntletOptions {
                manifest_stem: Some(stem_b.clone()),
                episode_limit: Some(1),
                ..GauntletOptions::default()
            },
        )
        .unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.completed_now(), 1);
        let resumed = run_gauntlet(
            &spec,
            &GauntletOptions {
                manifest_stem: Some(stem_b.clone()),
                ..GauntletOptions::default()
            },
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.resumed(), 1);

        let bytes_a = std::fs::read(manifest_path(&stem_a, "fet")).unwrap();
        let bytes_b = std::fs::read(manifest_path(&stem_b, "fet")).unwrap();
        assert_eq!(
            bytes_a, bytes_b,
            "kill/resume must not change manifest bytes"
        );
        assert_eq!(
            reference.report.unwrap().to_string(),
            resumed.report.unwrap().to_string()
        );
        cleanup(&stem_a);
        cleanup(&stem_b);
    }

    #[test]
    fn episode_budget_spans_protocols() {
        let spec = GauntletSpec::parse(
            r#"{"protocols": ["fet", "voter"], "n": [100], "switch_period": [200],
                "switches": 1, "seeds": {"count": 2}, "max_rounds": 2000}"#,
        )
        .unwrap();
        let outcome = run_gauntlet(
            &spec,
            &GauntletOptions {
                episode_limit: Some(3),
                ..GauntletOptions::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.completed_now(), 3);
        assert_eq!(outcome.outcomes[0].outcome.completed_now, 2);
        assert_eq!(outcome.outcomes[1].outcome.completed_now, 1);
        assert!(!outcome.complete);
        assert!(outcome.report.is_none());
    }
}
