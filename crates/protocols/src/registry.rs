//! The runtime protocol registry: names to boxed protocol factories.
//!
//! Runtime protocol selection — the CLI's `--protocol` flag, sweep
//! harnesses iterating "every registered protocol", downstream crates
//! plugging in their own variants — needs a level of indirection that the
//! typed [`Protocol`](fet_core::protocol::Protocol) trait cannot offer by
//! itself. The registry provides it: each entry maps a stable name (`"fet"`,
//! `"voter"`, `"3-majority"`, …) to a boxed factory producing an
//! [`ErasedProtocol`] from a [`ProtocolParams`], so a protocol chosen from a
//! string flows into any engine or the `Simulation` facade unchanged.
//!
//! Each handle a factory produces is also a **population builder**: it
//! still knows its concrete protocol type, so
//! [`ProtocolRegistry::build_population`] (or
//! [`ErasedProtocol::population`] on the handle) yields a contiguous
//! type-erased state container — a
//! [`DynPopulation`] — which is the
//! zero-copy execution path synchronous facade runs use. Prefer it over
//! driving the `ErasedProtocol` itself through an engine, which boxes
//! every agent's state (see `fet_core::erased` for the trade-off).
//!
//! [`ProtocolRegistry::with_builtins`] pre-registers the whole comparison
//! set of this workspace; [`ProtocolRegistry::register`] adds custom
//! entries (last registration wins, enabling overrides).

use crate::majority::MajorityProtocol;
use crate::oracle_clock::OracleClockProtocol;
use crate::rumor::RumorProtocol;
use crate::three_majority::ThreeMajorityProtocol;
use crate::undecided::UndecidedProtocol;
use crate::voter::VoterProtocol;
use fet_core::erased::ErasedProtocol;
use fet_core::error::CoreError;
use fet_core::fet::FetProtocol;
use fet_core::population::DynPopulation;
use fet_core::simple_trend::SimpleTrendProtocol;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The instance parameters a factory may consult.
///
/// `ell` is the resolved sample-size parameter (the paper's `ℓ = ⌈c·ln n⌉`
/// unless overridden); protocols with intrinsic sample sizes (voter,
/// 3-majority, …) ignore it, clock-assisted ones use `n` for their phase
/// lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProtocolParams {
    /// Population size of the instance.
    pub n: u64,
    /// Resolved sample-size parameter `ℓ`.
    pub ell: u32,
}

impl ProtocolParams {
    /// Parameters with the paper's rule `ℓ = ⌈c·ln n⌉` (at least 1).
    pub fn for_population(n: u64, c: f64) -> Self {
        ProtocolParams {
            n,
            ell: fet_core::config::ell_for_population(n, c),
        }
    }

    /// Parameters with an explicit `ℓ`.
    pub fn with_ell(n: u64, ell: u32) -> Self {
        ProtocolParams { n, ell }
    }
}

/// A boxed protocol constructor, stored per registry entry.
pub type ProtocolFactory =
    Box<dyn Fn(&ProtocolParams) -> Result<ErasedProtocol, CoreError> + Send + Sync>;

/// Errors from registry lookup or construction.
#[derive(Debug)]
pub enum RegistryError {
    /// No protocol registered under the requested name.
    UnknownProtocol {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
    /// The factory rejected the parameters.
    Construction {
        /// The protocol whose factory failed.
        name: String,
        /// The underlying validation error.
        source: CoreError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownProtocol { name, known } => {
                write!(
                    f,
                    "unknown protocol `{name}`; registered: {}",
                    known.join(", ")
                )
            }
            RegistryError::Construction { name, source } => {
                write!(f, "cannot construct protocol `{name}`: {source}")
            }
        }
    }
}

impl Error for RegistryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegistryError::Construction { source, .. } => Some(source),
            RegistryError::UnknownProtocol { .. } => None,
        }
    }
}

/// Maps protocol names to boxed factories.
///
/// # Example
///
/// ```
/// use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
/// use fet_core::protocol::Protocol;
///
/// let registry = ProtocolRegistry::with_builtins();
/// let params = ProtocolParams::for_population(10_000, 4.0);
/// let fet = registry.build("fet", &params)?;
/// assert_eq!(fet.name(), "fet");
/// assert!(registry.names().count() >= 5);
/// # Ok::<(), fet_protocols::registry::RegistryError>(())
/// ```
pub struct ProtocolRegistry {
    entries: BTreeMap<String, ProtocolFactory>,
}

impl fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        ProtocolRegistry::with_builtins()
    }
}

impl ProtocolRegistry {
    /// An empty registry (no builtins).
    pub fn empty() -> Self {
        ProtocolRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// The registry pre-loaded with every protocol this workspace ships:
    ///
    /// | name | protocol |
    /// |---|---|
    /// | `fet` | Protocol 1, *Follow the Emerging Trend* |
    /// | `simple-trend` | the unpartitioned §1.3 variant |
    /// | `voter` | classic voter dynamic |
    /// | `majority` | ℓ-sample majority with tie-keep |
    /// | `3-majority` | the 3-sample majority dynamic |
    /// | `undecided-state` | undecided-state dynamic |
    /// | `rumor` | PULL rumor spreading, clean start |
    /// | `rumor-corrupted` | rumor spreading, adversarial start |
    /// | `oracle-clock` | §1.4 clock-assisted broadcast (oracle baseline) |
    pub fn with_builtins() -> Self {
        let mut r = ProtocolRegistry::empty();
        r.register("fet", |p: &ProtocolParams| {
            Ok(ErasedProtocol::new(FetProtocol::new(p.ell)?))
        });
        r.register("simple-trend", |p: &ProtocolParams| {
            Ok(ErasedProtocol::new(SimpleTrendProtocol::new(p.ell)?))
        });
        r.register("voter", |_: &ProtocolParams| {
            Ok(ErasedProtocol::new(VoterProtocol::new()))
        });
        r.register("majority", |p: &ProtocolParams| {
            Ok(ErasedProtocol::new(MajorityProtocol::new(p.ell)?))
        });
        r.register("3-majority", |_: &ProtocolParams| {
            Ok(ErasedProtocol::new(ThreeMajorityProtocol::new()))
        });
        r.register("undecided-state", |_: &ProtocolParams| {
            Ok(ErasedProtocol::new(UndecidedProtocol::new()))
        });
        r.register("rumor", |_: &ProtocolParams| {
            Ok(ErasedProtocol::new(RumorProtocol::clean()))
        });
        r.register("rumor-corrupted", |_: &ProtocolParams| {
            Ok(ErasedProtocol::new(RumorProtocol::corrupted()))
        });
        r.register("oracle-clock", |p: &ProtocolParams| {
            Ok(ErasedProtocol::new(OracleClockProtocol::for_population(
                p.n,
            )?))
        });
        r
    }

    /// Registers (or overrides) a protocol factory under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(&ProtocolParams) -> Result<ErasedProtocol, CoreError> + Send + Sync + 'static,
    {
        self.entries.insert(name.into(), Box::new(factory));
    }

    /// `true` when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Constructs the protocol registered under `name`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownProtocol`] for unregistered names,
    /// [`RegistryError::Construction`] when the factory rejects `params`.
    pub fn build(
        &self,
        name: &str,
        params: &ProtocolParams,
    ) -> Result<ErasedProtocol, RegistryError> {
        let factory = self
            .entries
            .get(name)
            .ok_or_else(|| RegistryError::UnknownProtocol {
                name: name.to_string(),
                known: self.names().map(str::to_string).collect(),
            })?;
        factory(params).map_err(|source| RegistryError::Construction {
            name: name.to_string(),
            source,
        })
    }

    /// Constructs an empty contiguous population container for the
    /// protocol registered under `name` — the zero-copy erased execution
    /// path (engines fill it and then dispatch each round straight into
    /// the typed batch kernel).
    ///
    /// # Errors
    ///
    /// As [`ProtocolRegistry::build`].
    ///
    /// # Example
    ///
    /// ```
    /// use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
    ///
    /// let registry = ProtocolRegistry::with_builtins();
    /// let params = ProtocolParams::for_population(10_000, 4.0);
    /// let population = registry.build_population("3-majority", &params)?;
    /// assert_eq!(population.protocol_name(), "3-majority");
    /// assert!(population.is_empty());
    /// # Ok::<(), fet_protocols::registry::RegistryError>(())
    /// ```
    pub fn build_population(
        &self,
        name: &str,
        params: &ProtocolParams,
    ) -> Result<Box<dyn DynPopulation>, RegistryError> {
        Ok(self.build(name, params)?.population())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_core::protocol::Protocol;

    #[test]
    fn builtins_cover_the_comparison_set() {
        let r = ProtocolRegistry::with_builtins();
        for name in [
            "fet",
            "simple-trend",
            "voter",
            "majority",
            "3-majority",
            "undecided-state",
            "rumor",
            "rumor-corrupted",
            "oracle-clock",
        ] {
            assert!(r.contains(name), "missing builtin `{name}`");
            let p = r
                .build(name, &ProtocolParams::for_population(1_000, 4.0))
                .unwrap();
            assert_eq!(
                p.name(),
                name,
                "registered name must match the protocol's own"
            );
            assert!(p.samples_per_round() >= 1);
        }
        assert_eq!(r.names().count(), 9);
    }

    #[test]
    fn unknown_name_lists_known_ones() {
        let r = ProtocolRegistry::with_builtins();
        let err = r
            .build("frobnicate", &ProtocolParams::with_ell(100, 4))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown protocol `frobnicate`"));
        assert!(msg.contains("fet"));
        assert!(msg.contains("voter"));
    }

    #[test]
    fn construction_errors_surface() {
        let r = ProtocolRegistry::with_builtins();
        let err = r
            .build("fet", &ProtocolParams::with_ell(100, 0))
            .unwrap_err();
        assert!(matches!(err, RegistryError::Construction { .. }), "{err}");
    }

    #[test]
    fn custom_registration_overrides() {
        let mut r = ProtocolRegistry::with_builtins();
        r.register("voter", |p: &ProtocolParams| {
            Ok(ErasedProtocol::new(MajorityProtocol::new(p.ell)?))
        });
        let p = r.build("voter", &ProtocolParams::with_ell(100, 7)).unwrap();
        assert_eq!(p.name(), "majority", "override must win");
    }

    #[test]
    fn population_builders_cover_every_builtin() {
        use fet_core::opinion::Opinion;
        use fet_stats::rng::SeedTree;
        let r = ProtocolRegistry::with_builtins();
        let params = ProtocolParams::for_population(500, 4.0);
        let mut rng = SeedTree::new(3).child("registry-pop").rng();
        for name in r.names().map(str::to_string).collect::<Vec<_>>() {
            let mut pop = r.build_population(&name, &params).unwrap();
            assert_eq!(pop.protocol_name(), name);
            assert!(pop.is_empty(), "factories hand out empty containers");
            pop.push_agent(Opinion::Zero, &mut rng);
            assert_eq!(pop.len(), 1);
            assert_eq!(
                pop.samples_per_round(),
                r.build(&name, &params).unwrap().samples_per_round()
            );
        }
    }

    #[test]
    fn params_follow_the_paper_rule() {
        let p = ProtocolParams::for_population(1_000, 4.0);
        assert_eq!(p.ell, 28, "⌈4·ln 1000⌉ = 28");
        assert_eq!(
            ProtocolParams::for_population(2, 0.1).ell,
            1,
            "clamped to ≥ 1"
        );
    }

    #[test]
    fn only_fet_supports_the_aggregate_fidelity() {
        let r = ProtocolRegistry::with_builtins();
        let params = ProtocolParams::for_population(1_000, 4.0);
        for name in ["voter", "majority", "3-majority", "simple-trend"] {
            assert_eq!(
                r.build(name, &params).unwrap().aggregate_ell(),
                None,
                "{name}"
            );
        }
        assert_eq!(r.build("fet", &params).unwrap().aggregate_ell(), Some(28));
    }
}
