//! The clock-assisted broadcast sketch from §1.4 of the paper.
//!
//! > "if all agents share the same notion of global time, then convergence
//! > can be achieved in `O(log n)` time w.h.p. even under passive
//! > communication. The idea is that agents divide the time horizon into
//! > phases of length `T = 4·log n`, \[each\] subdivided into 2 subphases of
//! > length `2·log n` each. In the first subphase of each phase, if a
//! > non-source agent observes an opinion 0, then it copies it as its new
//! > opinion, but if it sees 1 it ignores it. In the second subphase, it
//! > does the opposite."
//!
//! If the source supports 0, the first subphase of the first phase drives
//! everyone to 0 w.h.p. and nothing ever changes again; if the source
//! supports 1, the second subphase finishes the job. Either way:
//! `O(log n)` rounds, passive communication — *given clocks*.
//!
//! The clock here is the engine's round counter, i.e. an **oracle**. The
//! entire contribution of the prior self-stabilizing work (and the reason
//! FET exists) is that real agents don't have this oracle; this baseline
//! quantifies what the oracle is worth.

use fet_core::error::CoreError;
use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Clock-assisted two-subphase broadcast (§1.4), sampling one agent per
/// round.
///
/// # Example
///
/// ```
/// use fet_protocols::oracle_clock::OracleClockProtocol;
///
/// let p = OracleClockProtocol::for_population(1_000)?;
/// assert_eq!(p.subphase_len(), 2 * 7); // 2·⌈ln 1000⌉
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OracleClockProtocol {
    subphase_len: u64,
}

impl OracleClockProtocol {
    /// Creates the protocol with an explicit subphase length (the paper's
    /// `2·log n`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroSampleSize`] when `subphase_len == 0`.
    pub fn new(subphase_len: u64) -> Result<Self, CoreError> {
        if subphase_len == 0 {
            return Err(CoreError::ZeroSampleSize);
        }
        Ok(OracleClockProtocol { subphase_len })
    }

    /// Creates the protocol with the paper's parameterization for `n`
    /// agents: subphases of `2⌈ln n⌉` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPopulation`] when `n < 2`.
    pub fn for_population(n: u64) -> Result<Self, CoreError> {
        if n < 2 {
            return Err(CoreError::InvalidPopulation {
                detail: format!("population must have at least 2 agents, got {n}"),
            });
        }
        let log = (n as f64).ln().ceil() as u64;
        OracleClockProtocol::new(2 * log.max(1))
    }

    /// Rounds per subphase.
    pub fn subphase_len(&self) -> u64 {
        self.subphase_len
    }

    /// Which opinion the current round is receptive to: subphase 0 adopts
    /// 0s, subphase 1 adopts 1s.
    pub fn receptive_to(&self, round: u64) -> Opinion {
        if (round / self.subphase_len).is_multiple_of(2) {
            Opinion::Zero
        } else {
            Opinion::One
        }
    }
}

impl Protocol for OracleClockProtocol {
    type State = Opinion;

    fn name(&self) -> &str {
        "oracle-clock"
    }

    fn samples_per_round(&self) -> u32 {
        1
    }

    fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> Opinion {
        opinion
    }

    fn step(
        &self,
        state: &mut Opinion,
        obs: &Observation,
        ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            1,
            "oracle-clock expects exactly one sample"
        );
        let seen = Opinion::from_bit_value(obs.ones() as u8);
        if seen == self.receptive_to(ctx.round()) {
            *state = seen;
        }
        *state
    }

    fn output(&self, state: &Opinion) -> Opinion {
        *state
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        // The oracle clock is *not* counted — that is the point of the
        // baseline; the honest cost of a self-stabilizing clock is what
        // Boczkowski/Bastide pay in their message bits.
        MemoryFootprint::new(1, 0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    #[test]
    fn subphase_schedule() {
        let p = OracleClockProtocol::new(3).unwrap();
        // Rounds 0..3 adopt zeros, 3..6 adopt ones, 6..9 zeros again.
        assert_eq!(p.receptive_to(0), Opinion::Zero);
        assert_eq!(p.receptive_to(2), Opinion::Zero);
        assert_eq!(p.receptive_to(3), Opinion::One);
        assert_eq!(p.receptive_to(5), Opinion::One);
        assert_eq!(p.receptive_to(6), Opinion::Zero);
    }

    #[test]
    fn adopts_only_receptive_opinion() {
        let p = OracleClockProtocol::new(4).unwrap();
        let mut rng = SeedTree::new(11).child("oc").rng();
        let mut s = Opinion::One;
        // Round 0 (receptive to 0): seeing 1 is ignored; seeing 0 adopts.
        let r0 = RoundContext::new(0);
        assert_eq!(
            p.step(&mut s, &Observation::new(1, 1).unwrap(), &r0, &mut rng),
            Opinion::One
        );
        assert_eq!(
            p.step(&mut s, &Observation::new(0, 1).unwrap(), &r0, &mut rng),
            Opinion::Zero
        );
        // Round 4 (receptive to 1): the mirror behaviour.
        let r4 = RoundContext::new(4);
        assert_eq!(
            p.step(&mut s, &Observation::new(0, 1).unwrap(), &r4, &mut rng),
            Opinion::Zero
        );
        assert_eq!(
            p.step(&mut s, &Observation::new(1, 1).unwrap(), &r4, &mut rng),
            Opinion::One
        );
    }

    #[test]
    fn for_population_uses_ceil_log() {
        let p = OracleClockProtocol::for_population(1_000).unwrap();
        assert_eq!(p.subphase_len(), 14); // 2·⌈6.9⌉
        assert!(OracleClockProtocol::for_population(1).is_err());
    }
}
