//! The voter model: copy one uniformly sampled opinion.
//!
//! The most classical opinion dynamic (Liggett 1985). Reaches consensus on
//! *some* opinion — whichever side the random walk of the 1-count absorbs
//! at. With a stubborn source present the population does eventually agree
//! with the source in expectation `O(n)`-ish time (the walk can only absorb
//! at the source's side), but nothing poly-logarithmic: it is the contrast
//! baseline for "passive and simple, yet far too slow".

use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{FusedCounters, ObservationSource, Protocol, RoundContext, StatePlanes};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The voter dynamic: each round, adopt the opinion of one random agent.
///
/// # Example
///
/// ```
/// use fet_protocols::voter::VoterProtocol;
/// use fet_core::protocol::Protocol;
///
/// let v = VoterProtocol::new();
/// assert_eq!(v.samples_per_round(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VoterProtocol;

impl VoterProtocol {
    /// Creates the voter protocol.
    pub fn new() -> Self {
        VoterProtocol
    }
}

impl Protocol for VoterProtocol {
    type State = Opinion;

    fn name(&self) -> &str {
        "voter"
    }

    fn samples_per_round(&self) -> u32 {
        1
    }

    fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> Opinion {
        opinion
    }

    fn step(
        &self,
        state: &mut Opinion,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(obs.sample_size(), 1, "voter expects exactly one sample");
        *state = Opinion::from_bit_value(obs.ones() as u8);
        *state
    }

    fn step_batch(
        &self,
        states: &mut [Opinion],
        observations: &[Observation],
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        assert!(
            observations.iter().all(|o| o.sample_size() == 1),
            "voter expects exactly one sample"
        );
        // Copy kernel: the new opinion IS the observed bit.
        for ((state, obs), out) in states.iter_mut().zip(observations).zip(outputs.iter_mut()) {
            *state = Opinion::from_bit_value(obs.ones() as u8);
            *out = *state;
        }
    }

    fn step_fused(
        &self,
        states: &mut [Opinion],
        source: &mut dyn ObservationSource,
        _ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        // Single-pass copy kernel: draw, adopt the observed bit, count.
        let mut counters = FusedCounters::default();
        for (state, out) in states.iter_mut().zip(outputs.iter_mut()) {
            let obs = source.next_observation(rng);
            assert_eq!(obs.sample_size(), 1, "voter expects exactly one sample");
            *state = Opinion::from_bit_value(obs.ones() as u8);
            *out = *state;
            counters.ones += u64::from(state.is_one());
            counters.correct += u64::from(*state == correct);
        }
        counters
    }

    fn has_fused_kernel(&self) -> bool {
        true
    }

    fn output(&self, state: &Opinion) -> Opinion {
        *state
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint::new(1, 0, 0)
    }

    fn state_planes(&self) -> StatePlanes {
        StatePlanes::OpinionOnly
    }

    fn opinion_threshold(&self) -> Option<u32> {
        // With m = 1 the copy rule IS a threshold: new opinion = 1 iff
        // the single observed bit is 1 — no state read, no step RNG.
        // Unlocks the bit-plane word-at-a-time kernel.
        Some(1)
    }

    fn pack_state(&self, state: &Opinion) -> (Opinion, u8) {
        (*state, 0)
    }

    fn unpack_state(&self, opinion: Opinion, _aux: u8) -> Opinion {
        opinion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    #[test]
    fn copies_the_sampled_opinion() {
        let v = VoterProtocol::new();
        let mut rng = SeedTree::new(1).child("voter").rng();
        let ctx = RoundContext::new(0);
        let mut s = Opinion::Zero;
        assert_eq!(
            v.step(&mut s, &Observation::new(1, 1).unwrap(), &ctx, &mut rng),
            Opinion::One
        );
        assert_eq!(
            v.step(&mut s, &Observation::new(0, 1).unwrap(), &ctx, &mut rng),
            Opinion::Zero
        );
    }

    #[test]
    fn zero_persistent_memory() {
        let m = VoterProtocol::new().memory_footprint();
        assert_eq!(m.persistent_bits(), 0);
        assert_eq!(m.between_rounds_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "exactly one sample")]
    fn rejects_large_samples() {
        let v = VoterProtocol::new();
        let mut rng = SeedTree::new(2).child("bad").rng();
        let mut s = Opinion::Zero;
        let _ = v.step(
            &mut s,
            &Observation::new(1, 2).unwrap(),
            &RoundContext::new(0),
            &mut rng,
        );
    }
}
