//! Sample-majority dynamics: adopt the majority opinion of `ℓ` samples.
//!
//! A natural "use the same budget as FET" baseline: with `ℓ = c·log n`
//! samples per round, majority converges to *whichever opinion holds the
//! population majority* in `O(log n)`-ish time — extremely fast, but it
//! steers toward the initial majority, not toward the source. From the
//! adversarial all-wrong start it therefore locks the *wrong* consensus
//! (the single source is powerless), which is exactly the failure mode
//! experiment E7 demonstrates.

use fet_core::error::CoreError;
use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Majority-of-`ℓ`-samples dynamics with keep-on-tie.
///
/// # Example
///
/// ```
/// use fet_protocols::majority::MajorityProtocol;
/// use fet_core::protocol::Protocol;
///
/// let m = MajorityProtocol::new(31)?;
/// assert_eq!(m.samples_per_round(), 31);
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MajorityProtocol {
    ell: u32,
}

impl MajorityProtocol {
    /// Creates majority dynamics over `ell` samples per round.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroSampleSize`] when `ell == 0`.
    pub fn new(ell: u32) -> Result<Self, CoreError> {
        if ell == 0 {
            return Err(CoreError::ZeroSampleSize);
        }
        Ok(MajorityProtocol { ell })
    }

    /// The per-round sample size.
    pub fn ell(&self) -> u32 {
        self.ell
    }
}

impl Protocol for MajorityProtocol {
    type State = Opinion;

    fn name(&self) -> &str {
        "majority"
    }

    fn samples_per_round(&self) -> u32 {
        self.ell
    }

    fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> Opinion {
        opinion
    }

    fn step(
        &self,
        state: &mut Opinion,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            self.ell,
            "majority(ℓ={}) expects {} samples, observation has {}",
            self.ell,
            self.ell,
            obs.sample_size()
        );
        let twice = 2 * obs.ones();
        *state = match twice.cmp(&self.ell) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => *state, // tie keeps
        };
        *state
    }

    fn step_batch(
        &self,
        states: &mut [Opinion],
        observations: &[Observation],
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        if let Some(bad) = observations.iter().find(|o| o.sample_size() != self.ell) {
            panic!(
                "majority(ℓ={}) expects {} samples, observation has {}",
                self.ell,
                self.ell,
                bad.sample_size()
            );
        }
        // Branch-only threshold kernel over the contiguous slice.
        for ((state, obs), out) in states.iter_mut().zip(observations).zip(outputs.iter_mut()) {
            let twice = 2 * obs.ones();
            *state = match twice.cmp(&self.ell) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => *state,
            };
            *out = *state;
        }
    }

    fn output(&self, state: &Opinion) -> Opinion {
        *state
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        use fet_core::memory::bits_for_count;
        // No persistent internals; within a round it tallies a count.
        MemoryFootprint::new(1, 0, bits_for_count(self.ell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    fn ctx() -> RoundContext {
        RoundContext::new(0)
    }

    #[test]
    fn strict_majorities_win() {
        let m = MajorityProtocol::new(5).unwrap();
        let mut rng = SeedTree::new(3).child("maj").rng();
        let mut s = Opinion::Zero;
        assert_eq!(
            m.step(&mut s, &Observation::new(3, 5).unwrap(), &ctx(), &mut rng),
            Opinion::One
        );
        assert_eq!(
            m.step(&mut s, &Observation::new(2, 5).unwrap(), &ctx(), &mut rng),
            Opinion::Zero
        );
    }

    #[test]
    fn even_split_keeps() {
        let m = MajorityProtocol::new(4).unwrap();
        let mut rng = SeedTree::new(4).child("tie").rng();
        for keep in [Opinion::Zero, Opinion::One] {
            let mut s = keep;
            assert_eq!(
                m.step(&mut s, &Observation::new(2, 4).unwrap(), &ctx(), &mut rng),
                keep
            );
        }
    }

    #[test]
    fn zero_sample_size_rejected() {
        assert!(MajorityProtocol::new(0).is_err());
    }

    #[test]
    fn no_persistent_memory() {
        let m = MajorityProtocol::new(33).unwrap().memory_footprint();
        assert_eq!(m.persistent_bits(), 0);
        assert!(m.working_bits() > 0);
    }
}
