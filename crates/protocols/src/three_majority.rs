//! The 3-majority dynamic (Doerr et al. 2011).
//!
//! Sample three agents, adopt their majority opinion. The canonical
//! "power of two choices"-style consensus dynamic: converges to a
//! near-initial-majority consensus in `O(log n)` rounds w.h.p., tolerates
//! some adversarial corruption — but, like all plain consensus dynamics,
//! has no mechanism to prefer the *source's* opinion over the crowd's.

use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{FusedCounters, ObservationSource, Protocol, RoundContext, StatePlanes};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// 3-majority: adopt the majority among three uniformly sampled opinions.
///
/// With three binary samples a majority always exists, so unlike
/// [`crate::majority::MajorityProtocol`] there is no keep-on-tie branch and
/// the update is memoryless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ThreeMajorityProtocol;

impl ThreeMajorityProtocol {
    /// Creates the 3-majority protocol.
    pub fn new() -> Self {
        ThreeMajorityProtocol
    }
}

impl Protocol for ThreeMajorityProtocol {
    type State = Opinion;

    fn name(&self) -> &str {
        "3-majority"
    }

    fn samples_per_round(&self) -> u32 {
        3
    }

    fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> Opinion {
        opinion
    }

    fn step(
        &self,
        state: &mut Opinion,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            3,
            "3-majority expects exactly three samples"
        );
        *state = if obs.ones() >= 2 {
            Opinion::One
        } else {
            Opinion::Zero
        };
        *state
    }

    fn step_batch(
        &self,
        states: &mut [Opinion],
        observations: &[Observation],
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        assert!(
            observations.iter().all(|o| o.sample_size() == 3),
            "3-majority expects exactly three samples"
        );
        // Stateless threshold kernel over the contiguous slice.
        for ((state, obs), out) in states.iter_mut().zip(observations).zip(outputs.iter_mut()) {
            *state = if obs.ones() >= 2 {
                Opinion::One
            } else {
                Opinion::Zero
            };
            *out = *state;
        }
    }

    fn step_fused(
        &self,
        states: &mut [Opinion],
        source: &mut dyn ObservationSource,
        _ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        // Single-pass threshold kernel: draw, take the majority, count.
        let mut counters = FusedCounters::default();
        for (state, out) in states.iter_mut().zip(outputs.iter_mut()) {
            let obs = source.next_observation(rng);
            assert_eq!(
                obs.sample_size(),
                3,
                "3-majority expects exactly three samples"
            );
            *state = if obs.ones() >= 2 {
                Opinion::One
            } else {
                Opinion::Zero
            };
            *out = *state;
            counters.ones += u64::from(state.is_one());
            counters.correct += u64::from(*state == correct);
        }
        counters
    }

    fn has_fused_kernel(&self) -> bool {
        true
    }

    fn output(&self, state: &Opinion) -> Opinion {
        *state
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint::new(1, 0, 2)
    }

    fn state_planes(&self) -> StatePlanes {
        StatePlanes::OpinionOnly
    }

    fn opinion_threshold(&self) -> Option<u32> {
        // Majority of 3 is the threshold "≥ 2 of the sampled bits are
        // 1" — no state read, no step RNG. Unlocks the bit-plane
        // word-at-a-time kernel.
        Some(2)
    }

    fn pack_state(&self, state: &Opinion) -> (Opinion, u8) {
        (*state, 0)
    }

    fn unpack_state(&self, opinion: Opinion, _aux: u8) -> Opinion {
        opinion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    #[test]
    fn majority_of_three() {
        let p = ThreeMajorityProtocol::new();
        let mut rng = SeedTree::new(5).child("3maj").rng();
        let ctx = RoundContext::new(0);
        let mut s = Opinion::Zero;
        for (ones, expect) in [
            (0u32, Opinion::Zero),
            (1, Opinion::Zero),
            (2, Opinion::One),
            (3, Opinion::One),
        ] {
            assert_eq!(
                p.step(&mut s, &Observation::new(ones, 3).unwrap(), &ctx, &mut rng),
                expect,
                "ones = {ones}"
            );
        }
    }

    #[test]
    fn update_is_memoryless() {
        // The outcome depends only on the observation, not on the state.
        let p = ThreeMajorityProtocol::new();
        let mut rng = SeedTree::new(6).child("mem").rng();
        let ctx = RoundContext::new(0);
        let obs = Observation::new(2, 3).unwrap();
        let mut a = Opinion::Zero;
        let mut b = Opinion::One;
        assert_eq!(
            p.step(&mut a, &obs, &ctx, &mut rng),
            p.step(&mut b, &obs, &ctx, &mut rng)
        );
    }
}
