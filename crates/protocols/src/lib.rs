//! # fet-protocols — baseline protocols and opinion dynamics
//!
//! The comparison set for the FET experiments, spanning three families the
//! paper positions itself against (§1.4, Related Works):
//!
//! 1. **Classic opinion dynamics** (passive by nature, but *not* designed to
//!    follow a source): [`voter::VoterProtocol`],
//!    [`majority::MajorityProtocol`], [`three_majority::ThreeMajorityProtocol`],
//!    [`undecided::UndecidedProtocol`]. These reach consensus but on an
//!    arbitrary/majority value — experiment E7 shows they do not reliably
//!    converge on the *source's* opinion from adversarial starts.
//! 2. **Clock-assisted broadcast** ([`oracle_clock::OracleClockProtocol`]):
//!    the §1.4 sketch. Given a shared global clock it solves the problem in
//!    `O(log n)` rounds with passive communication — the paper's point is
//!    that *self-stabilizing* clocks are exactly the hard part that prior
//!    work (Boczkowski et al. 2019; Bastide et al. 2021) spent its message
//!    bits on. Our implementation takes the clock from the engine's round
//!    counter, i.e. it is an *oracle* baseline, deliberately not
//!    self-contained.
//! 3. **Rumor spreading** ([`rumor::RumorProtocol`]): Karp et al.'s
//!    copy-on-first-sight PULL algorithm. Converges in `≈ 2·log n` rounds
//!    from a *clean* start but is famously not self-stabilizing: an agent
//!    initialized to believe it was already informed keeps a wrong opinion
//!    forever. Experiment E7 reproduces this failure.
//!
//! The decoupled-message protocols of Boczkowski et al. and Bastide et al.
//! (messages ≠ opinions) are **deliberately absent**: the workspace's
//! observation type carries opinion counts only, so a decoupled protocol is
//! inexpressible here by construction — which is precisely the paper's
//! passive-communication restriction. Their *capability* (O(log n) with
//! clocks) is represented by the oracle-clock baseline.
//!
//! # Example
//!
//! Protocols are usually reached by name through the [`registry`]:
//!
//! ```
//! use fet_core::protocol::Protocol;
//! use fet_protocols::registry::{ProtocolParams, ProtocolRegistry};
//!
//! let registry = ProtocolRegistry::with_builtins();
//! let params = ProtocolParams::for_population(10_000, 4.0);
//! let voter = registry.build("voter", &params)?;
//! assert_eq!(voter.samples_per_round(), 1);
//! // Every handle doubles as a zero-copy population builder — the
//! // representation facade runs execute on:
//! let population = registry.build_population("voter", &params)?;
//! assert!(population.is_empty(), "engines fill the container");
//! # Ok::<(), fet_protocols::registry::RegistryError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod majority;
pub mod oracle_clock;
pub mod registry;
pub mod rumor;
pub mod three_majority;
pub mod undecided;
pub mod voter;

/// Convenient re-exports of all baseline protocols and the registry.
pub mod prelude {
    pub use crate::majority::MajorityProtocol;
    pub use crate::oracle_clock::OracleClockProtocol;
    pub use crate::registry::{ProtocolParams, ProtocolRegistry, RegistryError};
    pub use crate::rumor::{RumorProtocol, RumorState};
    pub use crate::three_majority::ThreeMajorityProtocol;
    pub use crate::undecided::{UndecidedProtocol, UndecidedState};
    pub use crate::voter::VoterProtocol;
}

#[cfg(test)]
mod contract_tests {
    //! Uniform contract checks run against every baseline: properties the
    //! engine relies on regardless of which protocol it drives.

    use crate::prelude::*;
    use fet_core::opinion::Opinion;
    use fet_core::protocol::{Protocol, RoundContext};
    use fet_stats::rng::SeedTree;
    use rand::Rng;

    /// Exercises the `Protocol` contract on randomized observations:
    /// * `init_state(op)` publicly outputs `op` (the engine sets initial
    ///   opinions through it);
    /// * `samples_per_round() ≥ 1`;
    /// * `step` returns exactly what `output` then reports;
    /// * passive protocols decide what they display;
    /// * the memory footprint is non-trivial and consistent.
    fn check_contract<P: Protocol>(protocol: P) {
        let mut rng = SeedTree::new(0xC0).child(protocol.name()).rng();
        let m = protocol.samples_per_round();
        assert!(m >= 1, "{}: zero samples per round", protocol.name());
        assert!(
            protocol.memory_footprint().peak_bits() >= 1,
            "{}: empty memory footprint",
            protocol.name()
        );
        for round in 0..200u64 {
            let opinion = if rng.gen::<bool>() {
                Opinion::One
            } else {
                Opinion::Zero
            };
            let mut state = protocol.init_state(opinion, &mut rng);
            assert_eq!(
                protocol.output(&state),
                opinion,
                "{}: init_state must display the given opinion",
                protocol.name()
            );
            let ones = rng.gen_range(0..=m);
            let obs = fet_core::observation::Observation::new(ones, m).unwrap();
            let ctx = RoundContext::new(round);
            let returned = protocol.step(&mut state, &obs, &ctx, &mut rng);
            assert_eq!(
                returned,
                protocol.output(&state),
                "{}: step return disagrees with output",
                protocol.name()
            );
            if protocol.is_passive() {
                assert_eq!(
                    protocol.decision(&state),
                    protocol.output(&state),
                    "{}: passive protocol decides what it displays",
                    protocol.name()
                );
            }
        }
    }

    #[test]
    fn voter_contract() {
        check_contract(VoterProtocol::new());
    }

    #[test]
    fn majority_contract() {
        check_contract(MajorityProtocol::new(9).unwrap());
    }

    #[test]
    fn three_majority_contract() {
        check_contract(ThreeMajorityProtocol::new());
    }

    #[test]
    fn undecided_contract() {
        check_contract(UndecidedProtocol::new());
    }

    #[test]
    fn oracle_clock_contract() {
        check_contract(OracleClockProtocol::for_population(1000).unwrap());
    }

    #[test]
    fn rumor_contract() {
        check_contract(RumorProtocol::clean());
    }
}
