//! Karp et al.'s PULL rumor spreading — and why it is not self-stabilizing.
//!
//! The classical algorithm (§1.4 of the paper): an *uninformed* agent
//! copies the opinion of the first agent it sees and considers itself
//! informed from then on; informed agents never change. From a clean start
//! (everyone uninformed, source informed) this floods the source's opinion
//! in `≈ 2 log n` rounds.
//!
//! In the self-stabilizing setting the adversary controls the `informed`
//! flag: initialize every agent to `informed = true` with the wrong
//! opinion, and the population is frozen on the wrong value forever — the
//! motivating failure that the paper cites ("non-source agents may be
//! initialized to 'think' that they have already been informed"). This
//! module exists so experiment E7 can reproduce that failure quantitatively.
//!
//! Note the protocol *is* passive (the copied message is the opinion bit
//! itself); what breaks is stabilization, not passivity.

use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Per-agent rumor-spreading state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RumorState {
    /// Current opinion.
    pub opinion: Opinion,
    /// Whether this agent believes it has been informed.
    pub informed: bool,
}

/// Copy-on-first-sight PULL rumor spreading, one sample per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RumorProtocol {
    /// When `true`, [`Protocol::init_state`] marks agents informed (the
    /// adversarial corruption); when `false`, agents start uninformed (the
    /// clean textbook start).
    pub corrupt_init: bool,
}

impl RumorProtocol {
    /// The clean textbook protocol: agents start uninformed.
    pub fn clean() -> Self {
        RumorProtocol {
            corrupt_init: false,
        }
    }

    /// The adversarially corrupted variant: agents start believing they
    /// are already informed.
    pub fn corrupted() -> Self {
        RumorProtocol { corrupt_init: true }
    }
}

impl Protocol for RumorProtocol {
    type State = RumorState;

    fn name(&self) -> &str {
        if self.corrupt_init {
            "rumor-corrupted"
        } else {
            "rumor"
        }
    }

    fn samples_per_round(&self) -> u32 {
        1
    }

    fn init_state(&self, opinion: Opinion, _rng: &mut dyn RngCore) -> RumorState {
        RumorState {
            opinion,
            informed: self.corrupt_init,
        }
    }

    fn step(
        &self,
        state: &mut RumorState,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            1,
            "rumor spreading expects exactly one sample"
        );
        if !state.informed {
            state.opinion = Opinion::from_bit_value(obs.ones() as u8);
            state.informed = true;
        }
        state.opinion
    }

    fn output(&self, state: &RumorState) -> Opinion {
        state.opinion
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint::new(1, 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    fn ctx() -> RoundContext {
        RoundContext::new(0)
    }

    #[test]
    fn uninformed_copies_and_locks() {
        let p = RumorProtocol::clean();
        let mut rng = SeedTree::new(13).child("rumor").rng();
        let mut s = RumorState {
            opinion: Opinion::Zero,
            informed: false,
        };
        assert_eq!(
            p.step(&mut s, &Observation::new(1, 1).unwrap(), &ctx(), &mut rng),
            Opinion::One
        );
        assert!(s.informed);
        // Once informed, nothing changes.
        assert_eq!(
            p.step(&mut s, &Observation::new(0, 1).unwrap(), &ctx(), &mut rng),
            Opinion::One
        );
    }

    #[test]
    fn corrupted_agents_are_frozen() {
        let p = RumorProtocol::corrupted();
        let mut rng = SeedTree::new(14).child("frozen").rng();
        let mut s = p.init_state(Opinion::Zero, &mut rng);
        assert!(s.informed);
        for _ in 0..20 {
            assert_eq!(
                p.step(&mut s, &Observation::new(1, 1).unwrap(), &ctx(), &mut rng),
                Opinion::Zero,
                "a corrupted-informed agent must never update"
            );
        }
    }

    #[test]
    fn names_distinguish_variants() {
        assert_ne!(
            RumorProtocol::clean().name(),
            RumorProtocol::corrupted().name()
        );
    }
}
