//! Undecided-state dynamics (Angluin, Aspnes & Eisenstat 2008).
//!
//! The classic third-state consensus dynamic: a decided agent that meets
//! the opposite opinion becomes *undecided*; an undecided agent adopts the
//! first opinion it sees. Known to reach majority consensus fast in
//! population models.
//!
//! **Passive-communication adaptation.** The original protocol communicates
//! three states; a binary public opinion cannot express "undecided". We keep
//! the protocol's internal logic intact and let an undecided agent keep
//! *displaying its previous opinion* (it must display something — passive
//! agents cannot opt out of being observed, §1.1). The decision reported to
//! the convergence detector is that same displayed bit. This is the natural
//! passive embedding, and its failure to beat FET is part of the point of
//! experiment E7.

use fet_core::memory::MemoryFootprint;
use fet_core::observation::Observation;
use fet_core::opinion::Opinion;
use fet_core::protocol::{Protocol, RoundContext};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Per-agent state: the displayed opinion plus the undecided flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UndecidedState {
    /// The displayed (and decided-upon) opinion.
    pub opinion: Opinion,
    /// Whether the agent is currently undecided.
    pub undecided: bool,
}

/// Undecided-state dynamics over one sample per round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UndecidedProtocol;

impl UndecidedProtocol {
    /// Creates the protocol.
    pub fn new() -> Self {
        UndecidedProtocol
    }
}

impl Protocol for UndecidedProtocol {
    type State = UndecidedState;

    fn name(&self) -> &str {
        "undecided-state"
    }

    fn samples_per_round(&self) -> u32 {
        1
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> UndecidedState {
        // Self-stabilization: the undecided flag is arbitrary at time 0.
        UndecidedState {
            opinion,
            undecided: rng.next_u64() & 1 == 1,
        }
    }

    fn step(
        &self,
        state: &mut UndecidedState,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            1,
            "undecided-state expects exactly one sample"
        );
        let seen = Opinion::from_bit_value(obs.ones() as u8);
        if state.undecided {
            state.opinion = seen;
            state.undecided = false;
        } else if seen != state.opinion {
            state.undecided = true;
        }
        state.opinion
    }

    fn output(&self, state: &UndecidedState) -> Opinion {
        state.opinion
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        // One persistent flag beyond the opinion.
        MemoryFootprint::new(1, 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    fn ctx() -> RoundContext {
        RoundContext::new(0)
    }

    fn obs(bit: u32) -> Observation {
        Observation::new(bit, 1).unwrap()
    }

    #[test]
    fn undecided_adopts_first_seen() {
        let p = UndecidedProtocol::new();
        let mut rng = SeedTree::new(7).child("usd").rng();
        let mut s = UndecidedState {
            opinion: Opinion::Zero,
            undecided: true,
        };
        assert_eq!(p.step(&mut s, &obs(1), &ctx(), &mut rng), Opinion::One);
        assert!(!s.undecided);
    }

    #[test]
    fn conflict_makes_undecided_but_display_unchanged() {
        let p = UndecidedProtocol::new();
        let mut rng = SeedTree::new(8).child("usd2").rng();
        let mut s = UndecidedState {
            opinion: Opinion::Zero,
            undecided: false,
        };
        let out = p.step(&mut s, &obs(1), &ctx(), &mut rng);
        assert_eq!(out, Opinion::Zero, "display persists through undecidedness");
        assert!(s.undecided);
    }

    #[test]
    fn agreement_is_stable() {
        let p = UndecidedProtocol::new();
        let mut rng = SeedTree::new(9).child("usd3").rng();
        let mut s = UndecidedState {
            opinion: Opinion::One,
            undecided: false,
        };
        for _ in 0..5 {
            assert_eq!(p.step(&mut s, &obs(1), &ctx(), &mut rng), Opinion::One);
            assert!(!s.undecided);
        }
    }

    #[test]
    fn full_cycle_zero_to_one() {
        // decided-0 → (sees 1) undecided → (sees 1) decided-1.
        let p = UndecidedProtocol::new();
        let mut rng = SeedTree::new(10).child("usd4").rng();
        let mut s = UndecidedState {
            opinion: Opinion::Zero,
            undecided: false,
        };
        p.step(&mut s, &obs(1), &ctx(), &mut rng);
        let out = p.step(&mut s, &obs(1), &ctx(), &mut rng);
        assert_eq!(out, Opinion::One);
        assert!(!s.undecided);
    }
}
