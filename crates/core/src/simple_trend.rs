//! The unpartitioned trend-following protocol from §1.3.
//!
//! The paper first presents a simpler algorithm before FET:
//!
//! ```text
//! Input: S_t(J_t)                 // opinions of ℓ sampled agents
//! count_t ← COUNT(S_t(J_t))
//! if      count_t > count_{t−1} then Y_{t+1} ← 1
//! else if count_t < count_{t−1} then Y_{t+1} ← 0
//! else                               Y_{t+1} ← Y_t
//! ```
//!
//! Its flaw (for the *analysis*, not necessarily the behavior): `count_t`
//! is used to compute both `Y_{t+1}` and `Y_{t+2}`, making consecutive
//! opinions dependent even conditionally on `(x_t, x_{t+1})` — e.g. a
//! 1-heavy sample at round `t` pushes `Y_{t+1}` toward 1 *and* `Y_{t+2}`
//! toward 0. FET's sample-splitting removes exactly this dependence. We keep
//! the simple variant so experiments can compare the two empirically
//! (the paper conjectures but does not prove that the simple variant works).

use crate::error::CoreError;
use crate::memory::{bits_for_count, MemoryFootprint};
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::protocol::{Protocol, RoundContext};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The unpartitioned trend protocol with sample size `ℓ`.
///
/// # Example
///
/// ```
/// use fet_core::simple_trend::SimpleTrendProtocol;
/// use fet_core::protocol::Protocol;
///
/// let p = SimpleTrendProtocol::new(16)?;
/// assert_eq!(p.samples_per_round(), 16); // ℓ, not 2ℓ
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimpleTrendProtocol {
    ell: u32,
}

/// Per-agent state of the unpartitioned protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimpleTrendState {
    /// Current public opinion `Y_t`.
    pub opinion: Opinion,
    /// `count_{t−1}`: ones observed in the previous round, in `[0, ℓ]`.
    pub prev_count: u32,
}

impl SimpleTrendProtocol {
    /// Creates the protocol with sample size `ell`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroSampleSize`] when `ell == 0`.
    pub fn new(ell: u32) -> Result<Self, CoreError> {
        if ell == 0 {
            return Err(CoreError::ZeroSampleSize);
        }
        Ok(SimpleTrendProtocol { ell })
    }

    /// Creates the protocol with `ℓ = ⌈c·ln n⌉`, mirroring
    /// [`crate::fet::FetProtocol::for_population`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPopulation`] when `n < 2` or `c ≤ 0`.
    pub fn for_population(n: u64, c: f64) -> Result<Self, CoreError> {
        if n < 2 {
            return Err(CoreError::InvalidPopulation {
                detail: format!("population must have at least 2 agents, got {n}"),
            });
        }
        if c.is_nan() || c <= 0.0 {
            return Err(CoreError::InvalidPopulation {
                detail: format!("sample constant c must be positive, got {c}"),
            });
        }
        SimpleTrendProtocol::new(crate::config::ell_for_population(n, c))
    }

    /// The sample size `ℓ`.
    pub fn ell(&self) -> u32 {
        self.ell
    }
}

impl Protocol for SimpleTrendProtocol {
    type State = SimpleTrendState;

    fn name(&self) -> &str {
        "simple-trend"
    }

    fn samples_per_round(&self) -> u32 {
        self.ell
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> SimpleTrendState {
        let prev = (rng.next_u64() % u64::from(self.ell + 1)) as u32;
        SimpleTrendState {
            opinion,
            prev_count: prev,
        }
    }

    fn step(
        &self,
        state: &mut SimpleTrendState,
        obs: &Observation,
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            self.ell,
            "simple-trend(ℓ={}) expects {} samples, observation has {}",
            self.ell,
            self.ell,
            obs.sample_size()
        );
        let count = obs.ones();
        let new_opinion = match count.cmp(&state.prev_count) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => state.opinion,
        };
        state.opinion = new_opinion;
        state.prev_count = count;
        new_opinion
    }

    fn step_batch(
        &self,
        states: &mut [SimpleTrendState],
        observations: &[Observation],
        _ctx: &RoundContext,
        _rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        // Branch-only, RNG-free kernel over the contiguous slice; the
        // sample-size check rides the loop (a separate validation pass
        // costs as much as the decision rule itself here).
        for ((state, obs), out) in states.iter_mut().zip(observations).zip(outputs.iter_mut()) {
            assert_eq!(
                obs.sample_size(),
                self.ell,
                "simple-trend(ℓ={}) expects {} samples, observation has {}",
                self.ell,
                self.ell,
                obs.sample_size()
            );
            let count = obs.ones();
            let new_opinion = match count.cmp(&state.prev_count) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => state.opinion,
            };
            state.opinion = new_opinion;
            state.prev_count = count;
            *out = new_opinion;
        }
    }

    fn output(&self, state: &SimpleTrendState) -> Opinion {
        state.opinion
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        // One persisted count in [0, ℓ]; the fresh count is transient.
        let count_bits = bits_for_count(self.ell);
        MemoryFootprint::new(1, count_bits, count_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    fn rng(label: &str) -> rand::rngs::SmallRng {
        SeedTree::new(0x517).child(label).rng()
    }

    fn ctx() -> RoundContext {
        RoundContext::new(0)
    }

    #[test]
    fn step_is_deterministic_given_observation() {
        // Unlike FET there is no internal randomness: same state + same
        // observation ⇒ same outcome.
        let p = SimpleTrendProtocol::new(8).unwrap();
        let mut rng = rng("det");
        let obs = Observation::new(5, 8).unwrap();
        let mut s1 = SimpleTrendState {
            opinion: Opinion::Zero,
            prev_count: 3,
        };
        let mut s2 = s1;
        let o1 = p.step(&mut s1, &obs, &ctx(), &mut rng);
        let o2 = p.step(&mut s2, &obs, &ctx(), &mut rng);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn truth_table() {
        let p = SimpleTrendProtocol::new(8).unwrap();
        let mut rng = rng("table");
        // Rising.
        let mut s = SimpleTrendState {
            opinion: Opinion::Zero,
            prev_count: 2,
        };
        assert_eq!(
            p.step(&mut s, &Observation::new(5, 8).unwrap(), &ctx(), &mut rng),
            Opinion::One
        );
        assert_eq!(s.prev_count, 5);
        // Falling.
        let mut s = SimpleTrendState {
            opinion: Opinion::One,
            prev_count: 6,
        };
        assert_eq!(
            p.step(&mut s, &Observation::new(1, 8).unwrap(), &ctx(), &mut rng),
            Opinion::Zero
        );
        // Tie keeps.
        for keep in [Opinion::Zero, Opinion::One] {
            let mut s = SimpleTrendState {
                opinion: keep,
                prev_count: 4,
            };
            assert_eq!(
                p.step(&mut s, &Observation::new(4, 8).unwrap(), &ctx(), &mut rng),
                keep
            );
        }
    }

    #[test]
    fn consecutive_dependence_artifact() {
        // The documented flaw: a high count at round t (count=8) followed by
        // a moderate one (count=4) forces Y back down even though the
        // moderate count is not low in absolute terms.
        let p = SimpleTrendProtocol::new(8).unwrap();
        let mut rng = rng("dep");
        let mut s = SimpleTrendState {
            opinion: Opinion::Zero,
            prev_count: 0,
        };
        assert_eq!(
            p.step(&mut s, &Observation::new(8, 8).unwrap(), &ctx(), &mut rng),
            Opinion::One
        );
        assert_eq!(
            p.step(&mut s, &Observation::new(4, 8).unwrap(), &ctx(), &mut rng),
            Opinion::Zero,
            "reusing count_t for both comparisons flips the opinion back"
        );
    }

    #[test]
    fn for_population_matches_fet_rule() {
        let p = SimpleTrendProtocol::for_population(1 << 16, 4.0).unwrap();
        assert_eq!(p.ell(), 45);
        assert!(SimpleTrendProtocol::for_population(1, 4.0).is_err());
    }

    #[test]
    #[should_panic(expected = "expects 8 samples")]
    fn wrong_sample_size_panics() {
        let p = SimpleTrendProtocol::new(8).unwrap();
        let mut rng = rng("bad");
        let mut s = p.init_state(Opinion::Zero, &mut rng);
        let _ = p.step(&mut s, &Observation::new(0, 16).unwrap(), &ctx(), &mut rng);
    }

    #[test]
    fn memory_is_half_of_fet_working_set() {
        let simple = SimpleTrendProtocol::new(32).unwrap();
        let m = simple.memory_footprint();
        assert_eq!(m.between_rounds_bits(), 7); // 1 + 6, same persisted size as FET
    }
}
