//! The passive-communication observation type.
//!
//! Under the paper's model (§1.2), "sampling ℓ agents is equivalent to
//! receiving an integer between 0 and ℓ corresponding to the number of
//! agents with opinion 1 among the sampled agents". [`Observation`] is
//! exactly that integer, paired with the sample size — and nothing else.
//! Because every protocol in this workspace consumes observations through
//! this type, passive communication is a structural guarantee, not a
//! convention.

use crate::error::CoreError;
use crate::opinion::Opinion;
use serde::{Deserialize, Serialize};

/// What one agent learns in one round: the number of 1-opinions among the
/// agents it sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Observation {
    ones: u32,
    sample_size: u32,
}

impl Observation {
    /// Creates an observation of `ones` 1-opinions among `sample_size`
    /// sampled agents.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ObservationOverflow`] when `ones > sample_size`.
    ///
    /// # Example
    ///
    /// ```
    /// use fet_core::observation::Observation;
    ///
    /// let obs = Observation::new(3, 8)?;
    /// assert_eq!(obs.ones(), 3);
    /// assert_eq!(obs.zeros(), 5);
    /// # Ok::<(), fet_core::CoreError>(())
    /// ```
    pub fn new(ones: u32, sample_size: u32) -> Result<Self, CoreError> {
        if ones > sample_size {
            return Err(CoreError::ObservationOverflow { ones, sample_size });
        }
        Ok(Observation { ones, sample_size })
    }

    /// Builds the observation implied by a slice of sampled opinion bits.
    ///
    /// This is the bridge used by the literal agent-level fidelity: it
    /// *discards* everything about the sampled agents except their opinion
    /// counts, enforcing the passive model at the boundary.
    pub fn from_opinions(opinions: &[Opinion]) -> Self {
        let ones = opinions.iter().filter(|o| o.is_one()).count() as u32;
        Observation {
            ones,
            sample_size: opinions.len() as u32,
        }
    }

    /// Number of sampled agents holding opinion 1 (the paper's `COUNT`).
    pub fn ones(&self) -> u32 {
        self.ones
    }

    /// Number of sampled agents holding opinion 0.
    pub fn zeros(&self) -> u32 {
        self.sample_size - self.ones
    }

    /// Total number of sampled agents this round.
    pub fn sample_size(&self) -> u32 {
        self.sample_size
    }

    /// Fraction of ones in the sample; 0 for an empty sample.
    pub fn fraction_ones(&self) -> f64 {
        if self.sample_size == 0 {
            0.0
        } else {
            f64::from(self.ones) / f64::from(self.sample_size)
        }
    }

    /// `true` when every sampled opinion was 1.
    pub fn unanimous_one(&self) -> bool {
        self.sample_size > 0 && self.ones == self.sample_size
    }

    /// `true` when every sampled opinion was 0.
    pub fn unanimous_zero(&self) -> bool {
        self.sample_size > 0 && self.ones == 0
    }

    /// The observation with the `0 ↔ 1` labels exchanged; used by the
    /// symmetry property tests.
    #[must_use]
    pub fn relabeled(&self) -> Self {
        Observation {
            ones: self.sample_size - self.ones,
            sample_size: self.sample_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_counts() {
        assert!(Observation::new(5, 4).is_err());
        let obs = Observation::new(4, 4).unwrap();
        assert_eq!(obs.zeros(), 0);
        assert!(obs.unanimous_one());
    }

    #[test]
    fn from_opinions_counts_ones() {
        use Opinion::*;
        let obs = Observation::from_opinions(&[One, Zero, One, One]);
        assert_eq!(obs.ones(), 3);
        assert_eq!(obs.sample_size(), 4);
        assert!((obs.fraction_ones() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_degenerate_but_valid() {
        let obs = Observation::from_opinions(&[]);
        assert_eq!(obs.sample_size(), 0);
        assert_eq!(obs.fraction_ones(), 0.0);
        assert!(!obs.unanimous_one());
        assert!(!obs.unanimous_zero());
    }

    #[test]
    fn relabeled_swaps_counts() {
        let obs = Observation::new(3, 10).unwrap();
        let flipped = obs.relabeled();
        assert_eq!(flipped.ones(), 7);
        assert_eq!(flipped.zeros(), 3);
        assert_eq!(flipped.relabeled(), obs);
    }

    #[test]
    fn unanimity_flags() {
        assert!(Observation::new(0, 5).unwrap().unanimous_zero());
        assert!(Observation::new(5, 5).unwrap().unanimous_one());
        assert!(!Observation::new(2, 5).unwrap().unanimous_zero());
        assert!(!Observation::new(2, 5).unwrap().unanimous_one());
    }
}
