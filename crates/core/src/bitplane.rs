//! Bit-plane packed populations: 1 bit/agent opinion storage.
//!
//! The paper's regime is huge anonymous populations with a few bits of
//! state per agent — at `n = 10⁸`–`10⁹` even one byte per opinion is the
//! memory-bandwidth bottleneck (see `docs/BENCHMARKS.md`). This module
//! packs the public opinion plane 64 agents per `u64` word
//! ([`BitPlane`]), with a protocol's remaining per-agent state — FET's
//! stored `count″ ∈ [0, ℓ]` — in a parallel byte plane, behind the same
//! [`Population`] trait every engine already drives.
//!
//! # Packability contract
//!
//! A protocol opts in by returning a non-`Unpacked`
//! [`StatePlanes`] descriptor and
//! implementing [`Protocol::pack_state`]/[`Protocol::unpack_state`] as
//! mutual inverses whose packed opinion bit **is** the state's
//! [`Protocol::output`]. Packing is restricted to *passive* protocols
//! (decision ≡ output), which is what lets the container answer both the
//! global 1-count and the correct-decision count by popcount.
//!
//! # Trajectory identity
//!
//! [`BitPopulation`] steps each agent by unpack → [`Protocol::step`] →
//! repack, drawing observations and randomness in exactly the per-agent
//! order the kernel contract pins for every other representation. A
//! bit-plane run is therefore **bit-identical** to the typed, boxed, and
//! population-erased runs of the same `(seed, shard count)` — the
//! property `tests/erasure_equivalence.rs` extends to 4-way.
//!
//! # Word-aligned sharding
//!
//! The parallel fused round carves the opinion plane with
//! `split_at_mut`, so shard boundaries must not split a `u64` word.
//! [`ShardPlan::shard_range`](crate::shard::ShardPlan::shard_range)
//! guarantees word-aligned range starts for every population size and
//! shard count; [`BitPopulation::step_fused_parallel_inplace`] relies on
//! it.

use crate::memory::MemoryFootprint;
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::population::{DynPopulation, Population};
use crate::protocol::{FusedCounters, ObservationSource, Protocol, RoundContext, StatePlanes};
use crate::shard::{ShardPlan, ShardSourceFactory};
use rand::RngCore;
use std::fmt;

/// Bits per plane word.
pub const WORD_BITS: usize = 64;

/// A dense bit vector packed 64 bits per `u64` word — the opinion plane.
///
/// Invariant: bits at positions `len()..` in the trailing word are zero,
/// so [`BitPlane::count_ones`] is a straight popcount over the words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitPlane {
    words: Vec<u64>,
    len: usize,
}

impl BitPlane {
    /// An empty plane.
    pub fn new() -> Self {
        BitPlane::default()
    }

    /// An empty plane with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitPlane {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    /// A plane of `bits` zero bits.
    pub fn zeroed(bits: usize) -> Self {
        BitPlane {
            words: vec![0; bits.div_ceil(WORD_BITS)],
            len: bits,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-allocates room for `additional` more bits.
    pub fn reserve(&mut self, additional: usize) {
        let want = (self.len + additional).div_ceil(WORD_BITS);
        self.words.reserve(want.saturating_sub(self.words.len()));
    }

    /// Appends one bit.
    pub fn push(&mut self, opinion: Opinion) {
        let bit = self.len % WORD_BITS;
        if bit == 0 {
            self.words.push(0);
        }
        let word = self.words.last_mut().expect("word pushed above");
        *word |= u64::from(opinion.is_one()) << bit;
        self.len += 1;
    }

    /// The bit at `idx` as an [`Opinion`].
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> Opinion {
        assert!(idx < self.len, "bit index {idx} out of {}", self.len);
        Opinion::from(((self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1) == 1)
    }

    /// Sets the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    #[inline]
    pub fn set(&mut self, idx: usize, opinion: Opinion) {
        assert!(idx < self.len, "bit index {idx} out of {}", self.len);
        let mask = 1u64 << (idx % WORD_BITS);
        let word = &mut self.words[idx / WORD_BITS];
        *word = (*word & !mask) | (u64::from(opinion.is_one()) * mask);
    }

    /// Number of 1-bits — one popcount per word, no per-bit walk.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The packed words, read-only. The trailing word's bits past
    /// [`BitPlane::len`] are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The packed words, mutable. Callers must preserve the
    /// trailing-bits-zero invariant.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Heap bytes the word storage holds (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Steps agents `0..len` of a packed slice pair through the protocol's
/// per-agent update, drawing observations from `source`: the single
/// kernel behind every `BitPopulation` round entry point.
///
/// Each word is read once, rebuilt in a register, and written once
/// (word-at-a-time updates); observations and randomness are drawn in
/// per-agent index order, so the stream is identical to every other
/// representation's kernel. `outputs`, when present, receives the new
/// opinions index-aligned (`None` on the in-place paths — the plane
/// itself is the output store).
#[allow(clippy::too_many_arguments)]
fn step_packed_slice<P: Protocol>(
    protocol: &P,
    words: &mut [u64],
    aux: &mut [u8],
    len: usize,
    source: &mut dyn ObservationSource,
    ctx: &RoundContext,
    rng: &mut dyn RngCore,
    correct: Opinion,
    mut outputs: Option<&mut [Opinion]>,
) -> FusedCounters {
    debug_assert!(words.len() >= len.div_ceil(WORD_BITS));
    debug_assert!(aux.is_empty() || aux.len() == len);
    if let Some(out) = outputs.as_deref() {
        assert_eq!(out.len(), len, "one output slot per agent");
    }
    let has_aux = !aux.is_empty();
    let mut counters = FusedCounters::default();
    let mut idx = 0usize;
    for word_slot in words.iter_mut() {
        if idx >= len {
            break;
        }
        let in_word = (len - idx).min(WORD_BITS);
        let mut word = *word_slot;
        for bit in 0..in_word {
            let opinion = Opinion::from(((word >> bit) & 1) == 1);
            let aux_byte = if has_aux { aux[idx] } else { 0 };
            let mut state = protocol.unpack_state(opinion, aux_byte);
            let obs = source.next_observation(rng);
            let new_opinion = protocol.step(&mut state, &obs, ctx, rng);
            let (packed_opinion, packed_aux) = protocol.pack_state(&state);
            debug_assert_eq!(
                packed_opinion, new_opinion,
                "pack_state's opinion bit must be the state's output"
            );
            let mask = 1u64 << bit;
            word = (word & !mask) | (u64::from(new_opinion.is_one()) * mask);
            if has_aux {
                aux[idx] = packed_aux;
            }
            if let Some(out) = outputs.as_deref_mut() {
                out[idx] = new_opinion;
            }
            counters.ones += u64::from(new_opinion.is_one());
            counters.correct += u64::from(new_opinion == correct);
            idx += 1;
        }
        *word_slot = word;
    }
    counters
}

/// A [`Population`] storing its agents as packed planes: one opinion bit
/// per agent in a [`BitPlane`] plus (for
/// [`StatePlanes::OpinionPlusByte`] protocols) one auxiliary byte per
/// agent.
///
/// Construction requires a packable protocol — see the
/// [module docs](self) for the contract. Every [`Population`] entry
/// point is implemented, so the container drops into byte-addressed
/// engines unchanged; the in-place fused rounds
/// ([`Population::step_fused_inplace`] /
/// [`Population::step_fused_parallel_inplace`]) additionally let
/// bit-aware engines skip the per-agent output buffer entirely.
#[derive(Clone)]
pub struct BitPopulation<P: Protocol> {
    protocol: P,
    planes: StatePlanes,
    opinions: BitPlane,
    aux: Vec<u8>,
}

impl<P: Protocol + fmt::Debug> fmt::Debug for BitPopulation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitPopulation")
            .field("protocol", &self.protocol)
            .field("planes", &self.planes)
            .field("len", &self.opinions.len())
            .finish()
    }
}

impl<P: Protocol> BitPopulation<P> {
    /// An empty bit-plane population running `protocol`.
    ///
    /// # Panics
    ///
    /// Panics when the protocol is not packable: its
    /// [`Protocol::state_planes`] is [`StatePlanes::Unpacked`], or it is
    /// not passive ([`Protocol::is_passive`]). Callers selecting storage
    /// at runtime should gate on those first (the erased layer's
    /// [`bit_population`](crate::erased::ErasedProtocol::bit_population)
    /// does, returning `None`).
    pub fn new(protocol: P) -> Self {
        let planes = protocol.state_planes();
        assert!(
            planes != StatePlanes::Unpacked,
            "protocol `{}` declares no packed state layout",
            protocol.name()
        );
        assert!(
            protocol.is_passive(),
            "protocol `{}` is not passive; bit-plane storage equates decisions with the packed \
             opinion bit",
            protocol.name()
        );
        BitPopulation {
            protocol,
            planes,
            opinions: BitPlane::new(),
            aux: Vec::new(),
        }
    }

    /// A population packing explicitly provided states — the adversarial
    /// entry point, mirroring
    /// [`TypedPopulation::from_states`](crate::population::TypedPopulation::from_states).
    ///
    /// # Panics
    ///
    /// Panics when the protocol is not packable (see
    /// [`BitPopulation::new`]) or when a state does not survive
    /// [`Protocol::pack_state`].
    pub fn from_states(protocol: P, states: &[P::State]) -> Self {
        let mut pop = BitPopulation::new(protocol);
        pop.opinions.reserve(states.len());
        if pop.has_aux() {
            pop.aux.reserve(states.len());
        }
        for state in states {
            let (opinion, aux) = pop.protocol.pack_state(state);
            pop.opinions.push(opinion);
            if pop.has_aux() {
                pop.aux.push(aux);
            }
        }
        pop
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The packed plane layout this container uses.
    pub fn planes(&self) -> StatePlanes {
        self.planes
    }

    /// The packed opinion plane, read-only.
    pub fn opinion_plane(&self) -> &BitPlane {
        &self.opinions
    }

    /// The auxiliary byte plane, read-only (empty for
    /// [`StatePlanes::OpinionOnly`] protocols).
    pub fn aux_plane(&self) -> &[u8] {
        &self.aux
    }

    fn has_aux(&self) -> bool {
        self.planes == StatePlanes::OpinionPlusByte
    }

    fn unpack(&self, idx: usize) -> P::State {
        let aux = if self.has_aux() { self.aux[idx] } else { 0 };
        self.protocol.unpack_state(self.opinions.get(idx), aux)
    }

    fn repack(&mut self, idx: usize, state: &P::State) {
        let (opinion, aux) = self.protocol.pack_state(state);
        self.opinions.set(idx, opinion);
        if self.has_aux() {
            self.aux[idx] = aux;
        }
    }

    /// One shard's job for the parallel rounds: shard index, agent
    /// range, word slice, aux slice, and (outputs path only) the output
    /// slice.
    fn run_parallel<'a>(
        &'a mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
        mut outputs: Option<&'a mut [Opinion]>,
    ) -> FusedCounters
    where
        P: Sync,
    {
        type ShardJob<'b> = (
            u32,
            std::ops::Range<usize>,
            &'b mut [u64],
            &'b mut [u8],
            Option<&'b mut [Opinion]>,
        );
        let n = self.opinions.len();
        if let Some(out) = outputs.as_deref() {
            assert_eq!(out.len(), n, "one output slot per agent");
        }
        let shards = plan.shards();
        let has_aux = self.has_aux();
        // Carve the planes into per-shard slices once. The plan's ranges
        // start on word boundaries (see `ShardPlan::shard_range`), so the
        // word splits below land exactly between shards and the slices
        // are disjoint — which is what lets them run concurrently.
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(shards as usize);
        let mut words_rest = self.opinions.words_mut();
        let mut aux_rest = &mut self.aux[..];
        let mut outputs_rest = outputs.take();
        for s in 0..shards {
            let range = plan.shard_range(n, s);
            if range.is_empty() {
                continue;
            }
            debug_assert!(
                range.start.is_multiple_of(WORD_BITS),
                "shard range {range:?} splits a word"
            );
            let word_count = range.end.div_ceil(WORD_BITS) - range.start / WORD_BITS;
            let (w, w_rest) = words_rest.split_at_mut(word_count);
            words_rest = w_rest;
            let aux_slice = if has_aux {
                let (a, a_rest) = aux_rest.split_at_mut(range.len());
                aux_rest = a_rest;
                a
            } else {
                &mut []
            };
            let out_slice = outputs_rest.take().map(|o| {
                let (head, tail) = o.split_at_mut(range.len());
                outputs_rest = Some(tail);
                head
            });
            jobs.push((s, range, w, aux_slice, out_slice));
        }
        let protocol = &self.protocol;
        let run_shard = |(s, range, words, aux, out): ShardJob<'_>| {
            let mut rng = plan.rng_for_shard(s);
            let mut source = factory.shard_source(range.clone());
            step_packed_slice(
                protocol,
                words,
                aux,
                range.len(),
                source.as_mut(),
                ctx,
                &mut rng,
                correct,
                out,
            )
        };
        // Reduce per-shard counters into fixed slots in shard order —
        // exactly the discipline `TypedPopulation::step_fused_parallel`
        // documents, so totals never depend on worker scheduling.
        let workers = (plan.workers() as usize).min(jobs.len());
        let mut totals = FusedCounters::default();
        if workers <= 1 {
            for job in jobs {
                totals += run_shard(job);
            }
        } else {
            let mut groups: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                groups[i % workers].push(job);
            }
            let run_shard = &run_shard;
            let per_shard = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|group| {
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|job| {
                                    let s = job.0;
                                    (s, run_shard(job))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut per_shard = vec![FusedCounters::default(); shards as usize];
                for handle in handles {
                    for (s, c) in handle.join().expect("shard worker panicked") {
                        per_shard[s as usize] = c;
                    }
                }
                per_shard
            });
            for c in per_shard {
                totals += c;
            }
        }
        totals
    }
}

impl<P> Population for BitPopulation<P>
where
    P: Protocol + fmt::Debug + Send + Sync,
{
    fn protocol_name(&self) -> &str {
        self.protocol.name()
    }

    fn samples_per_round(&self) -> u32 {
        self.protocol.samples_per_round()
    }

    fn is_passive(&self) -> bool {
        self.protocol.is_passive()
    }

    fn parallel_eligible(&self) -> bool {
        self.protocol.parallel_eligible()
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        self.protocol.memory_footprint()
    }

    fn len(&self) -> usize {
        self.opinions.len()
    }

    fn reserve(&mut self, additional: usize) {
        self.opinions.reserve(additional);
        if self.has_aux() {
            self.aux.reserve(additional);
        }
    }

    fn push_agent(&mut self, opinion: Opinion, rng: &mut dyn RngCore) -> Opinion {
        let state = self.protocol.init_state(opinion, rng);
        let output = self.protocol.output(&state);
        let (packed_opinion, packed_aux) = self.protocol.pack_state(&state);
        debug_assert_eq!(packed_opinion, output);
        self.opinions.push(packed_opinion);
        if self.has_aux() {
            self.aux.push(packed_aux);
        }
        output
    }

    fn corrupt_agent(&mut self, idx: usize, opinion: Opinion, rng: &mut dyn RngCore) {
        // Same protocol draw stream as the typed container, then repack:
        // corruption events stay bit-identical across representations.
        let state = self.protocol.init_state(opinion, rng);
        self.repack(idx, &state);
    }

    fn step_batch(
        &mut self,
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        let n = self.opinions.len();
        assert_eq!(observations.len(), n, "one observation per agent");
        assert_eq!(outputs.len(), n, "one output slot per agent");
        for i in 0..n {
            let mut state = self.unpack(i);
            let new = self.protocol.step(&mut state, &observations[i], ctx, rng);
            self.repack(i, &state);
            outputs[i] = new;
        }
    }

    fn step_fused(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        let len = self.opinions.len();
        let BitPopulation {
            protocol,
            opinions,
            aux,
            ..
        } = self;
        step_packed_slice(
            protocol,
            opinions.words_mut(),
            aux,
            len,
            source,
            ctx,
            rng,
            correct,
            Some(outputs),
        )
    }

    fn step_fused_parallel(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        self.run_parallel(factory, ctx, plan, correct, Some(outputs))
    }

    fn step_agent(
        &mut self,
        idx: usize,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        let mut state = self.unpack(idx);
        let new = self.protocol.step(&mut state, obs, ctx, rng);
        self.repack(idx, &state);
        new
    }

    fn output_of(&self, idx: usize) -> Opinion {
        self.opinions.get(idx)
    }

    fn decision_of(&self, idx: usize) -> Opinion {
        // Packing is restricted to passive protocols: decision ≡ output
        // ≡ the stored bit.
        self.opinions.get(idx)
    }

    fn count_correct_decisions(&self, correct: Opinion) -> u64 {
        let ones = self.opinions.count_ones();
        if correct.is_one() {
            ones
        } else {
            self.opinions.len() as u64 - ones
        }
    }

    fn write_outputs(&self, out: &mut [Opinion]) {
        assert_eq!(out.len(), self.opinions.len(), "one output slot per agent");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.opinions.get(i);
        }
    }

    fn count_output_ones(&self) -> u64 {
        self.opinions.count_ones()
    }

    fn resident_bytes(&self) -> usize {
        self.opinions.resident_bytes() + self.aux.capacity()
    }

    fn supports_inplace_rounds(&self) -> bool {
        true
    }

    fn step_fused_inplace(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
    ) -> FusedCounters {
        let len = self.opinions.len();
        let BitPopulation {
            protocol,
            opinions,
            aux,
            ..
        } = self;
        step_packed_slice(
            protocol,
            opinions.words_mut(),
            aux,
            len,
            source,
            ctx,
            rng,
            correct,
            None,
        )
    }

    fn step_fused_parallel_inplace(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
    ) -> FusedCounters {
        self.run_parallel(factory, ctx, plan, correct, None)
    }

    fn write_opinion_words(&self, snapshot: &mut [u64]) {
        snapshot.copy_from_slice(self.opinions.words());
    }
}

impl<P> DynPopulation for BitPopulation<P>
where
    P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    fn clone_box(&self) -> Box<dyn DynPopulation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fet::FetProtocol;
    use crate::population::TypedPopulation;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(0xB17)
    }

    fn filled_pair(n: usize) -> (TypedPopulation<FetProtocol>, BitPopulation<FetProtocol>) {
        let proto = FetProtocol::new(8).unwrap();
        let mut typed = TypedPopulation::new(proto.clone());
        let mut bits = BitPopulation::new(proto);
        let mut rt = rng();
        let mut rb = rng();
        for i in 0..n {
            let opinion = Opinion::from(i % 3 == 0);
            assert_eq!(
                typed.push_agent(opinion, &mut rt),
                bits.push_agent(opinion, &mut rb)
            );
        }
        (typed, bits)
    }

    #[test]
    fn plane_push_get_set_count() {
        let mut plane = BitPlane::new();
        for i in 0..130 {
            plane.push(Opinion::from(i % 5 == 0));
        }
        assert_eq!(plane.len(), 130);
        assert_eq!(plane.words().len(), 3);
        for i in 0..130 {
            assert_eq!(plane.get(i), Opinion::from(i % 5 == 0));
        }
        let scalar = (0..130).filter(|i| i % 5 == 0).count() as u64;
        assert_eq!(plane.count_ones(), scalar);
        plane.set(129, Opinion::One);
        plane.set(0, Opinion::Zero);
        assert_eq!(plane.get(129), Opinion::One);
        assert_eq!(plane.get(0), Opinion::Zero);
        // Trailing bits stay zero: the popcount matches a scalar recount.
        let recount = (0..130).filter(|&i| plane.get(i).is_one()).count() as u64;
        assert_eq!(plane.count_ones(), recount);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn plane_get_bounds_checked() {
        let plane = BitPlane::zeroed(64);
        let _ = plane.get(64);
    }

    #[test]
    fn push_agent_matches_typed_stream() {
        let (typed, bits) = filled_pair(97);
        for i in 0..97 {
            assert_eq!(typed.output_of(i), bits.output_of(i));
            assert_eq!(
                typed.states()[i],
                bits.protocol()
                    .unpack_state(bits.opinion_plane().get(i), bits.aux_plane()[i]),
                "agent {i} state diverged through pack/unpack"
            );
        }
        assert_eq!(typed.count_output_ones(), bits.count_output_ones());
    }

    #[test]
    fn fused_round_matches_typed_population() {
        use crate::population::Population;
        struct Uniform {
            m: u32,
        }
        impl ObservationSource for Uniform {
            fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
                Observation::new(rng.next_u32() % (self.m + 1), self.m).unwrap()
            }
        }
        let (mut typed, mut bits) = filled_pair(77);
        let m = typed.samples_per_round();
        let ctx = RoundContext::new(3);
        let mut rt = rand::rngs::SmallRng::seed_from_u64(42);
        let mut rb = rand::rngs::SmallRng::seed_from_u64(42);
        let mut out_t = vec![Opinion::Zero; 77];
        let mut out_b = vec![Opinion::Zero; 77];
        let ct = typed.step_fused(&mut Uniform { m }, &ctx, &mut rt, Opinion::One, &mut out_t);
        let cb = bits.step_fused(&mut Uniform { m }, &ctx, &mut rb, Opinion::One, &mut out_b);
        assert_eq!(out_t, out_b);
        assert_eq!(ct, cb);
        // And the in-place variant walks the very same stream.
        let (_, mut bits2) = filled_pair(77);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(42);
        let c2 = bits2.step_fused_inplace(&mut Uniform { m }, &ctx, &mut r2, Opinion::One);
        assert_eq!(c2, cb);
        for (i, &out) in out_b.iter().enumerate() {
            assert_eq!(bits2.output_of(i), out);
        }
    }

    #[test]
    fn correct_decision_popcount_matches_scalar() {
        let (typed, bits) = filled_pair(130);
        for correct in [Opinion::Zero, Opinion::One] {
            assert_eq!(
                typed.count_correct_decisions(correct),
                bits.count_correct_decisions(correct)
            );
        }
    }

    #[test]
    #[should_panic(expected = "declares no packed state layout")]
    fn unpackable_protocol_is_rejected() {
        // ℓ = 300 overflows the byte plane, so FET falls back to Unpacked.
        let _ = BitPopulation::new(FetProtocol::new(300).unwrap());
    }

    #[test]
    fn resident_bytes_counts_both_planes() {
        let (_, bits) = filled_pair(200);
        let want = bits.opinion_plane().resident_bytes() + bits.aux_plane().len();
        assert!(bits.resident_bytes() >= want);
        // ~1 bit + 1 byte per agent, not 8 bytes per state.
        assert!(bits.resident_bytes() < 200 * std::mem::size_of::<crate::fet::FetState>());
    }
}
