//! Bit-plane packed populations: 1 bit/agent opinion storage plus a
//! packed auxiliary plane.
//!
//! The paper's regime is huge anonymous populations with a few bits of
//! state per agent — at `n = 10⁸`–`10⁹` even one byte per opinion is the
//! memory-bandwidth bottleneck (see `docs/BENCHMARKS.md`). This module
//! packs the public opinion plane 64 agents per `u64` word
//! ([`BitPlane`]), with a protocol's remaining per-agent state — FET's
//! stored `count″ ∈ [0, ℓ]` — in a parallel auxiliary plane whose width
//! tracks the protocol's declared layout ([`StatePlanes`]):
//!
//! * [`StatePlanes::OpinionOnly`] — no aux plane at all (voter,
//!   3-majority);
//! * [`StatePlanes::OpinionPlusPacked`]`{ bits }` — exactly `bits` bits
//!   per agent: a [`NibblePlane`] (16 agents/word) when `bits = 4`, an
//!   interleaved [`BitSlicedPlane`] otherwise. For FET with `ℓ = 5` this
//!   is 3 bits/agent — ~375 MB at `n = 10⁹` instead of the byte plane's
//!   1 GB;
//! * [`StatePlanes::OpinionPlusByte`] — one byte per agent, the 8-bit
//!   fast path (direct byte addressing, same memory as an 8-bit sliced
//!   plane).
//!
//! When `bits < 4` the bit-sliced plane is strictly smaller than a
//! nibble plane, so the nibble fast path is taken only when it is free
//! (`bits = 4`, FET's `ℓ ∈ [8, 15]`): exact width wins whenever the two
//! layouts differ in memory.
//!
//! # Packability contract
//!
//! A protocol opts in by returning a non-`Unpacked`
//! [`StatePlanes`] descriptor and
//! implementing [`Protocol::pack_state`]/[`Protocol::unpack_state`] as
//! mutual inverses whose packed opinion bit **is** the state's
//! [`Protocol::output`]. Packing is restricted to *passive* protocols
//! (decision ≡ output), which is what lets the container answer both the
//! global 1-count and the correct-decision count by popcount. Protocols
//! declaring a packed aux width promise `aux < 2^bits` for every
//! reachable state — the planes store only the low `bits` bits.
//!
//! # Word-at-a-time kernels
//!
//! [`StatePlanes::OpinionOnly`] protocols whose update is a pure
//! threshold on the observation ([`Protocol::opinion_threshold`] is
//! `Some`) skip the per-agent unpack → step → repack walk entirely: the
//! fused round asks the source for one *threshold word* per 64 agents
//! ([`ObservationSource::next_threshold_word`]) and writes it straight
//! into the opinion plane, counting by popcount. The mean-field source
//! overrides the word draw to hoist its per-draw virtual dispatch,
//! sampler match, and fault check out of the loop, which is where the
//! measured ≥ 2× per-round win over the per-agent packed loop comes from
//! (`fet-bench`'s `word_kernel`).
//!
//! # Trajectory identity
//!
//! [`BitPopulation`] steps each agent by unpack → [`Protocol::step`] →
//! repack, drawing observations and randomness in exactly the per-agent
//! order the kernel contract pins for every other representation; the
//! word-at-a-time kernel draws the very same observation stream 64
//! agents at a time (see the contract on
//! [`ObservationSource::next_threshold_word`]). A bit-plane run is
//! therefore **bit-identical** to the typed, boxed, and
//! population-erased runs of the same `(seed, shard count)` — the
//! property `tests/erasure_equivalence.rs` extends to 4-way — and the
//! aux-plane layout (byte, nibble, bit-sliced) never enters the stream.
//!
//! # Word-aligned sharding
//!
//! The parallel fused round carves the planes with `split_at_mut`, so
//! shard boundaries must not split a plane word.
//! [`ShardPlan::shard_range`](crate::shard::ShardPlan::shard_range)
//! guarantees range starts that are multiples of 64 agents for every
//! population size and shard count, which is word-aligned for **every**
//! plane width at once: 64 agents are 1 opinion word, 4 nibble words,
//! and exactly `bits` interleaved sliced words.
//! [`BitPopulation::step_fused_parallel_inplace`] relies on it.

use crate::memory::MemoryFootprint;
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::population::{DynPopulation, Population};
use crate::protocol::{FusedCounters, ObservationSource, Protocol, RoundContext, StatePlanes};
use crate::shard::{ShardPlan, ShardSourceFactory};
use rand::RngCore;
use std::fmt;

/// Bits per plane word.
pub const WORD_BITS: usize = 64;

/// Nibbles (4-bit values) per [`NibblePlane`] word.
pub const NIBBLES_PER_WORD: usize = 16;

/// A dense bit vector packed 64 bits per `u64` word — the opinion plane.
///
/// Invariant: bits at positions `len()..` in the trailing word are zero,
/// so [`BitPlane::count_ones`] is a straight popcount over the words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitPlane {
    words: Vec<u64>,
    len: usize,
}

impl BitPlane {
    /// An empty plane.
    pub fn new() -> Self {
        BitPlane::default()
    }

    /// An empty plane with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitPlane {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    /// A plane of `bits` zero bits.
    pub fn zeroed(bits: usize) -> Self {
        BitPlane {
            words: vec![0; bits.div_ceil(WORD_BITS)],
            len: bits,
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-allocates room for `additional` more bits.
    pub fn reserve(&mut self, additional: usize) {
        let want = (self.len + additional).div_ceil(WORD_BITS);
        self.words.reserve(want.saturating_sub(self.words.len()));
    }

    /// Appends one bit.
    pub fn push(&mut self, opinion: Opinion) {
        let bit = self.len % WORD_BITS;
        if bit == 0 {
            self.words.push(0);
        }
        let word = self.words.last_mut().expect("word pushed above");
        *word |= u64::from(opinion.is_one()) << bit;
        self.len += 1;
    }

    /// The bit at `idx` as an [`Opinion`].
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> Opinion {
        assert!(idx < self.len, "bit index {idx} out of {}", self.len);
        Opinion::from(((self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1) == 1)
    }

    /// Sets the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    #[inline]
    pub fn set(&mut self, idx: usize, opinion: Opinion) {
        assert!(idx < self.len, "bit index {idx} out of {}", self.len);
        let mask = 1u64 << (idx % WORD_BITS);
        let word = &mut self.words[idx / WORD_BITS];
        *word = (*word & !mask) | (u64::from(opinion.is_one()) * mask);
    }

    /// Number of 1-bits — one popcount per word, no per-bit walk.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The packed words, read-only. The trailing word's bits past
    /// [`BitPlane::len`] are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The packed words, mutable. Callers must preserve the
    /// trailing-bits-zero invariant.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Heap bytes the word storage holds (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// A dense vector of 4-bit values packed 16 per `u64` word — the
/// `bits = 4` fast path of the packed aux plane (FET's clock for
/// `ℓ ∈ [8, 15]`).
///
/// Nibble `i` occupies bits `4·(i mod 16) .. 4·(i mod 16)+4` of word
/// `i / 16`: one shift-and-mask per access, against the bit-sliced
/// layout's one access per bit. Invariant: nibbles at positions
/// `len()..` of the trailing word are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NibblePlane {
    words: Vec<u64>,
    len: usize,
}

impl NibblePlane {
    /// An empty plane.
    pub fn new() -> Self {
        NibblePlane::default()
    }

    /// A plane of `len` zero nibbles.
    pub fn zeroed(len: usize) -> Self {
        NibblePlane {
            words: vec![0; len.div_ceil(NIBBLES_PER_WORD)],
            len,
        }
    }

    /// Number of nibbles stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no nibbles are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-allocates room for `additional` more nibbles.
    pub fn reserve(&mut self, additional: usize) {
        let want = (self.len + additional).div_ceil(NIBBLES_PER_WORD);
        self.words.reserve(want.saturating_sub(self.words.len()));
    }

    /// Appends one value.
    ///
    /// # Panics
    ///
    /// Panics when `value ≥ 16` (debug builds assert; release builds
    /// store the low nibble).
    pub fn push(&mut self, value: u8) {
        debug_assert!(value < 16, "nibble value {value} out of range");
        if self.len.is_multiple_of(NIBBLES_PER_WORD) {
            self.words.push(0);
        }
        let shift = (self.len % NIBBLES_PER_WORD) * 4;
        let word = self.words.last_mut().expect("word pushed above");
        *word |= u64::from(value & 0xF) << shift;
        self.len += 1;
    }

    /// The value at `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> u8 {
        assert!(idx < self.len, "nibble index {idx} out of {}", self.len);
        ((self.words[idx / NIBBLES_PER_WORD] >> ((idx % NIBBLES_PER_WORD) * 4)) & 0xF) as u8
    }

    /// Sets the value at `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()` (and, in debug builds, when
    /// `value ≥ 16`).
    #[inline]
    pub fn set(&mut self, idx: usize, value: u8) {
        assert!(idx < self.len, "nibble index {idx} out of {}", self.len);
        debug_assert!(value < 16, "nibble value {value} out of range");
        let shift = (idx % NIBBLES_PER_WORD) * 4;
        let word = &mut self.words[idx / NIBBLES_PER_WORD];
        *word = (*word & !(0xFu64 << shift)) | (u64::from(value & 0xF) << shift);
    }

    /// The packed words, read-only.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes the word storage holds (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// A dense vector of `bits`-bit values (`1 ≤ bits ≤ 8`) in an
/// **interleaved bit-sliced** layout — the exact-width packed aux plane
/// (FET's clock at `⌈log₂(ℓ+1)⌉` bits).
///
/// Agents are grouped 64 per word-group; group `g` occupies words
/// `g·bits .. (g+1)·bits`, and word `g·bits + j` holds **bit `j`** of
/// the values of agents `g·64 .. g·64+64` (agent `a`'s slice lives at
/// bit position `a mod 64` of each of its group's words). Interleaving
/// keeps a group's words adjacent in memory — sequential kernel walks
/// touch one cache line pair per group — and makes the plane carve at
/// any 64-agent boundary with a single `split_at_mut`, exactly like the
/// opinion plane.
///
/// Invariant: bit positions for agents `len()..` of the trailing group
/// are zero in every slice word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSlicedPlane {
    bits: u8,
    words: Vec<u64>,
    len: usize,
}

impl BitSlicedPlane {
    /// An empty plane of `bits`-bit values.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 8` (wider aux values do not fit
    /// [`Protocol::pack_state`]'s byte).
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "bit-sliced plane width {bits} out of 1..=8"
        );
        BitSlicedPlane {
            bits,
            words: Vec::new(),
            len: 0,
        }
    }

    /// A plane of `len` zero values at `bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 8`.
    pub fn zeroed(bits: u8, len: usize) -> Self {
        let mut plane = BitSlicedPlane::new(bits);
        plane.words = vec![0; len.div_ceil(WORD_BITS) * bits as usize];
        plane.len = len;
        plane
    }

    /// Bits per stored value.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-allocates room for `additional` more values.
    pub fn reserve(&mut self, additional: usize) {
        let want = (self.len + additional).div_ceil(WORD_BITS) * self.bits as usize;
        self.words.reserve(want.saturating_sub(self.words.len()));
    }

    /// Appends one value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `value ≥ 2^bits`; release builds
    /// store the low `bits` bits.
    pub fn push(&mut self, value: u8) {
        debug_assert!(
            u32::from(value) < (1u32 << self.bits),
            "value {value} out of {} bits",
            self.bits
        );
        if self.len.is_multiple_of(WORD_BITS) {
            self.words
                .extend(std::iter::repeat_n(0, self.bits as usize));
        }
        let idx = self.len;
        self.len += 1;
        self.set(idx, value);
    }

    /// The value at `idx`, gathered one bit per slice word.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> u8 {
        assert!(idx < self.len, "sliced index {idx} out of {}", self.len);
        let base = (idx / WORD_BITS) * self.bits as usize;
        let bit = idx % WORD_BITS;
        let mut value = 0u8;
        for j in 0..self.bits as usize {
            value |= (((self.words[base + j] >> bit) & 1) as u8) << j;
        }
        value
    }

    /// Sets the value at `idx`, one read-modify-write per slice word.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()` (and, in debug builds, when
    /// `value ≥ 2^bits`).
    #[inline]
    pub fn set(&mut self, idx: usize, value: u8) {
        assert!(idx < self.len, "sliced index {idx} out of {}", self.len);
        debug_assert!(
            u32::from(value) < (1u32 << self.bits),
            "value {value} out of {} bits",
            self.bits
        );
        let base = (idx / WORD_BITS) * self.bits as usize;
        let mask = 1u64 << (idx % WORD_BITS);
        for j in 0..self.bits as usize {
            let word = &mut self.words[base + j];
            *word = (*word & !mask) | (u64::from((value >> j) & 1) * mask);
        }
    }

    /// The interleaved slice words, read-only (see the type docs for the
    /// layout).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes the word storage holds (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// The auxiliary plane of a [`BitPopulation`]: whichever packed layout
/// the protocol's [`StatePlanes`] descriptor selects.
#[derive(Debug, Clone)]
pub enum AuxPlane {
    /// No auxiliary state ([`StatePlanes::OpinionOnly`]).
    None,
    /// One byte per agent ([`StatePlanes::OpinionPlusByte`]).
    Bytes(Vec<u8>),
    /// Four bits per agent
    /// ([`StatePlanes::OpinionPlusPacked`]` { bits: 4 }`).
    Nibbles(NibblePlane),
    /// Exactly `bits ≠ 4` bits per agent
    /// ([`StatePlanes::OpinionPlusPacked`]).
    Sliced(BitSlicedPlane),
}

impl AuxPlane {
    /// The plane layout for a protocol's declared [`StatePlanes`].
    ///
    /// # Panics
    ///
    /// Panics for [`StatePlanes::Unpacked`] (no packed layout exists) and
    /// for packed widths outside `1..=8`.
    pub fn for_planes(planes: StatePlanes) -> AuxPlane {
        match planes {
            StatePlanes::Unpacked => panic!("Unpacked states have no aux plane"),
            StatePlanes::OpinionOnly => AuxPlane::None,
            StatePlanes::OpinionPlusByte => AuxPlane::Bytes(Vec::new()),
            StatePlanes::OpinionPlusPacked { bits: 4 } => AuxPlane::Nibbles(NibblePlane::new()),
            StatePlanes::OpinionPlusPacked { bits } => AuxPlane::Sliced(BitSlicedPlane::new(bits)),
        }
    }

    /// The value at `idx` (0 when there is no aux plane).
    #[inline]
    pub fn get(&self, idx: usize) -> u8 {
        match self {
            AuxPlane::None => 0,
            AuxPlane::Bytes(b) => b[idx],
            AuxPlane::Nibbles(p) => p.get(idx),
            AuxPlane::Sliced(p) => p.get(idx),
        }
    }

    /// Sets the value at `idx` (no-op when there is no aux plane).
    #[inline]
    pub fn set(&mut self, idx: usize, value: u8) {
        match self {
            AuxPlane::None => {}
            AuxPlane::Bytes(b) => b[idx] = value,
            AuxPlane::Nibbles(p) => p.set(idx, value),
            AuxPlane::Sliced(p) => p.set(idx, value),
        }
    }

    /// Appends one value (no-op when there is no aux plane).
    pub fn push(&mut self, value: u8) {
        match self {
            AuxPlane::None => {}
            AuxPlane::Bytes(b) => b.push(value),
            AuxPlane::Nibbles(p) => p.push(value),
            AuxPlane::Sliced(p) => p.push(value),
        }
    }

    /// Pre-allocates room for `additional` more values.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            AuxPlane::None => {}
            AuxPlane::Bytes(b) => b.reserve(additional),
            AuxPlane::Nibbles(p) => p.reserve(additional),
            AuxPlane::Sliced(p) => p.reserve(additional),
        }
    }

    /// Heap bytes the plane holds (capacity, not length).
    pub fn resident_bytes(&self) -> usize {
        match self {
            AuxPlane::None => 0,
            AuxPlane::Bytes(b) => b.capacity(),
            AuxPlane::Nibbles(p) => p.resident_bytes(),
            AuxPlane::Sliced(p) => p.resident_bytes(),
        }
    }

    /// A mutable whole-plane view for the round kernels.
    fn slice_mut(&mut self) -> AuxSliceMut<'_> {
        match self {
            AuxPlane::None => AuxSliceMut::None,
            AuxPlane::Bytes(b) => AuxSliceMut::Bytes(b),
            AuxPlane::Nibbles(p) => AuxSliceMut::Nibbles(&mut p.words),
            AuxPlane::Sliced(p) => AuxSliceMut::Sliced {
                bits: p.bits,
                words: &mut p.words,
            },
        }
    }
}

/// A mutable view of (part of) an aux plane, indexed relative to the
/// view's first agent — the per-shard unit the parallel round hands each
/// worker.
enum AuxSliceMut<'a> {
    /// No aux plane.
    None,
    /// Byte plane slice.
    Bytes(&'a mut [u8]),
    /// Nibble plane words (16 agents per word).
    Nibbles(&'a mut [u64]),
    /// Interleaved bit-sliced plane words (64 agents per `bits` words).
    Sliced { bits: u8, words: &'a mut [u64] },
}

impl<'a> AuxSliceMut<'a> {
    /// Splits off the view of the first `agents` agents, returning
    /// `(head, tail)`.
    ///
    /// When the tail is non-empty, `agents` must be a multiple of 64 —
    /// the word-group alignment every plane width shares, which
    /// [`ShardPlan::shard_range`] guarantees for shard boundaries.
    fn split_for_agents(self, agents: usize) -> (AuxSliceMut<'a>, AuxSliceMut<'a>) {
        match self {
            AuxSliceMut::None => (AuxSliceMut::None, AuxSliceMut::None),
            AuxSliceMut::Bytes(b) => {
                let (head, tail) = b.split_at_mut(agents);
                (AuxSliceMut::Bytes(head), AuxSliceMut::Bytes(tail))
            }
            AuxSliceMut::Nibbles(w) => {
                let at = agents.div_ceil(NIBBLES_PER_WORD);
                debug_assert!(at == w.len() || agents.is_multiple_of(WORD_BITS));
                let (head, tail) = w.split_at_mut(at);
                (AuxSliceMut::Nibbles(head), AuxSliceMut::Nibbles(tail))
            }
            AuxSliceMut::Sliced { bits, words } => {
                let at = agents.div_ceil(WORD_BITS) * bits as usize;
                debug_assert!(at == words.len() || agents.is_multiple_of(WORD_BITS));
                let (head, tail) = words.split_at_mut(at);
                (
                    AuxSliceMut::Sliced { bits, words: head },
                    AuxSliceMut::Sliced { bits, words: tail },
                )
            }
        }
    }
}

/// Monomorphized per-agent aux access for the packed round kernel: one
/// instantiation per plane layout, so the hot loop carries no per-agent
/// layout dispatch.
trait AuxAccess {
    fn get(&self, idx: usize) -> u8;
    fn set(&mut self, idx: usize, value: u8);
}

/// No aux plane: reads 0, writes vanish.
struct NoAux;

impl AuxAccess for NoAux {
    #[inline(always)]
    fn get(&self, _idx: usize) -> u8 {
        0
    }
    #[inline(always)]
    fn set(&mut self, _idx: usize, _value: u8) {}
}

struct ByteAux<'a>(&'a mut [u8]);

impl AuxAccess for ByteAux<'_> {
    #[inline(always)]
    fn get(&self, idx: usize) -> u8 {
        self.0[idx]
    }
    #[inline(always)]
    fn set(&mut self, idx: usize, value: u8) {
        self.0[idx] = value;
    }
}

struct NibbleAux<'a>(&'a mut [u64]);

impl AuxAccess for NibbleAux<'_> {
    #[inline(always)]
    fn get(&self, idx: usize) -> u8 {
        ((self.0[idx / NIBBLES_PER_WORD] >> ((idx % NIBBLES_PER_WORD) * 4)) & 0xF) as u8
    }
    #[inline(always)]
    fn set(&mut self, idx: usize, value: u8) {
        let shift = (idx % NIBBLES_PER_WORD) * 4;
        let word = &mut self.0[idx / NIBBLES_PER_WORD];
        *word = (*word & !(0xFu64 << shift)) | (u64::from(value & 0xF) << shift);
    }
}

struct SlicedAux<'a> {
    bits: u8,
    words: &'a mut [u64],
}

impl AuxAccess for SlicedAux<'_> {
    #[inline(always)]
    fn get(&self, idx: usize) -> u8 {
        let base = (idx / WORD_BITS) * self.bits as usize;
        let bit = idx % WORD_BITS;
        let mut value = 0u8;
        for j in 0..self.bits as usize {
            value |= (((self.words[base + j] >> bit) & 1) as u8) << j;
        }
        value
    }
    #[inline(always)]
    fn set(&mut self, idx: usize, value: u8) {
        let base = (idx / WORD_BITS) * self.bits as usize;
        let mask = 1u64 << (idx % WORD_BITS);
        for j in 0..self.bits as usize {
            let word = &mut self.words[base + j];
            *word = (*word & !mask) | (u64::from((value >> j) & 1) * mask);
        }
    }
}

/// The per-agent packed kernel, monomorphized per aux layout: unpack →
/// [`Protocol::step`] → repack, each opinion word read once, rebuilt in
/// a register, and written once. Observations and randomness are drawn
/// in per-agent index order, so the stream is identical to every other
/// representation's kernel.
#[allow(clippy::too_many_arguments)]
fn step_packed_words<P: Protocol, A: AuxAccess>(
    protocol: &P,
    words: &mut [u64],
    aux: &mut A,
    len: usize,
    source: &mut dyn ObservationSource,
    ctx: &RoundContext,
    rng: &mut dyn RngCore,
    correct: Opinion,
    mut outputs: Option<&mut [Opinion]>,
) -> FusedCounters {
    let mut counters = FusedCounters::default();
    let mut idx = 0usize;
    for word_slot in words.iter_mut() {
        if idx >= len {
            break;
        }
        let in_word = (len - idx).min(WORD_BITS);
        let mut word = *word_slot;
        for bit in 0..in_word {
            let opinion = Opinion::from(((word >> bit) & 1) == 1);
            let mut state = protocol.unpack_state(opinion, aux.get(idx));
            let obs = source.next_observation(rng);
            let new_opinion = protocol.step(&mut state, &obs, ctx, rng);
            let (packed_opinion, packed_aux) = protocol.pack_state(&state);
            debug_assert_eq!(
                packed_opinion, new_opinion,
                "pack_state's opinion bit must be the state's output"
            );
            let mask = 1u64 << bit;
            word = (word & !mask) | (u64::from(new_opinion.is_one()) * mask);
            aux.set(idx, packed_aux);
            if let Some(out) = outputs.as_deref_mut() {
                out[idx] = new_opinion;
            }
            counters.ones += u64::from(new_opinion.is_one());
            counters.correct += u64::from(new_opinion == correct);
            idx += 1;
        }
        *word_slot = word;
    }
    counters
}

/// The word-at-a-time fused kernel for opinion-only threshold protocols
/// (voter, 3-majority): one
/// [`ObservationSource::next_threshold_word`] draw and one plane-word
/// write per 64 agents, counters by popcount. Stream-identical to
/// [`step_packed_words`] by the source contract (the same observations
/// are drawn in the same per-agent order; the protocols consume no step
/// randomness).
///
/// The popcount/store reduction here is deliberately *not* routed
/// through `fet_stats::isa`'s explicit-SIMD tiers: it is one
/// `count_ones` + one store per 64 agents against ≥ 64 sampler draws
/// for the same agents, and the `word_kernel` bench's `plane_popcount`
/// row measures the whole reduction at well under 1% of a round — the
/// vectorized-sampling PR measured it and dropped this leg (see
/// docs/BENCHMARKS.md, "SIMD sampling kernels").
fn step_threshold_words(
    words: &mut [u64],
    len: usize,
    source: &mut dyn ObservationSource,
    rng: &mut dyn RngCore,
    threshold: u32,
    correct: Opinion,
    mut outputs: Option<&mut [Opinion]>,
) -> FusedCounters {
    let mut counters = FusedCounters::default();
    let mut idx = 0usize;
    for word_slot in words.iter_mut() {
        if idx >= len {
            break;
        }
        let in_word = (len - idx).min(WORD_BITS);
        let word = source.next_threshold_word(rng, in_word as u32, threshold);
        debug_assert!(
            in_word == WORD_BITS || word >> in_word == 0,
            "threshold word has bits past the drawn count"
        );
        *word_slot = word;
        let ones = u64::from(word.count_ones());
        counters.ones += ones;
        counters.correct += if correct.is_one() {
            ones
        } else {
            in_word as u64 - ones
        };
        if let Some(out) = outputs.as_deref_mut() {
            for bit in 0..in_word {
                out[idx + bit] = Opinion::from(((word >> bit) & 1) == 1);
            }
        }
        idx += in_word;
    }
    counters
}

/// Steps agents `0..len` of a packed plane slice pair through the
/// protocol's update, drawing observations from `source`: the single
/// dispatcher behind every `BitPopulation` round entry point. Opinion-
/// only threshold protocols take the word-at-a-time kernel; everything
/// else takes the per-agent kernel monomorphized for its aux layout.
/// `outputs`, when present, receives the new opinions index-aligned
/// (`None` on the in-place paths — the plane itself is the output
/// store).
#[allow(clippy::too_many_arguments)]
fn step_packed_slice<P: Protocol>(
    protocol: &P,
    words: &mut [u64],
    aux: AuxSliceMut<'_>,
    len: usize,
    source: &mut dyn ObservationSource,
    ctx: &RoundContext,
    rng: &mut dyn RngCore,
    correct: Opinion,
    outputs: Option<&mut [Opinion]>,
) -> FusedCounters {
    debug_assert!(words.len() >= len.div_ceil(WORD_BITS));
    if let Some(out) = outputs.as_deref() {
        assert_eq!(out.len(), len, "one output slot per agent");
    }
    match aux {
        AuxSliceMut::None => {
            if let Some(threshold) = protocol.opinion_threshold() {
                return step_threshold_words(words, len, source, rng, threshold, correct, outputs);
            }
            step_packed_words(
                protocol, words, &mut NoAux, len, source, ctx, rng, correct, outputs,
            )
        }
        AuxSliceMut::Bytes(b) => {
            debug_assert_eq!(b.len(), len);
            step_packed_words(
                protocol,
                words,
                &mut ByteAux(b),
                len,
                source,
                ctx,
                rng,
                correct,
                outputs,
            )
        }
        AuxSliceMut::Nibbles(w) => {
            debug_assert!(w.len() >= len.div_ceil(NIBBLES_PER_WORD));
            step_packed_words(
                protocol,
                words,
                &mut NibbleAux(w),
                len,
                source,
                ctx,
                rng,
                correct,
                outputs,
            )
        }
        AuxSliceMut::Sliced { bits, words: w } => {
            debug_assert!(w.len() >= len.div_ceil(WORD_BITS) * bits as usize);
            step_packed_words(
                protocol,
                words,
                &mut SlicedAux { bits, words: w },
                len,
                source,
                ctx,
                rng,
                correct,
                outputs,
            )
        }
    }
}

/// A [`Population`] storing its agents as packed planes: one opinion bit
/// per agent in a [`BitPlane`] plus the protocol's auxiliary plane
/// ([`AuxPlane`] — none, byte, nibble, or bit-sliced, per the declared
/// [`StatePlanes`] layout).
///
/// Construction requires a packable protocol — see the
/// [module docs](self) for the contract. Every [`Population`] entry
/// point is implemented, so the container drops into byte-addressed
/// engines unchanged; the in-place fused rounds
/// ([`Population::step_fused_inplace`] /
/// [`Population::step_fused_parallel_inplace`]) additionally let
/// bit-aware engines skip the per-agent output buffer entirely.
#[derive(Clone)]
pub struct BitPopulation<P: Protocol> {
    protocol: P,
    planes: StatePlanes,
    opinions: BitPlane,
    aux: AuxPlane,
}

impl<P: Protocol + fmt::Debug> fmt::Debug for BitPopulation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitPopulation")
            .field("protocol", &self.protocol)
            .field("planes", &self.planes)
            .field("len", &self.opinions.len())
            .finish()
    }
}

impl<P: Protocol> BitPopulation<P> {
    /// An empty bit-plane population running `protocol`.
    ///
    /// # Panics
    ///
    /// Panics when the protocol is not packable: its
    /// [`Protocol::state_planes`] is [`StatePlanes::Unpacked`], or it is
    /// not passive ([`Protocol::is_passive`]), or it declares a packed
    /// aux width outside `1..=8`. Callers selecting storage at runtime
    /// should gate on those first (the erased layer's
    /// [`bit_population`](crate::erased::ErasedProtocol::bit_population)
    /// does, returning `None`).
    pub fn new(protocol: P) -> Self {
        let planes = protocol.state_planes();
        assert!(
            planes != StatePlanes::Unpacked,
            "protocol `{}` declares no packed state layout",
            protocol.name()
        );
        assert!(
            protocol.is_passive(),
            "protocol `{}` is not passive; bit-plane storage equates decisions with the packed \
             opinion bit",
            protocol.name()
        );
        let aux = AuxPlane::for_planes(planes);
        BitPopulation {
            protocol,
            planes,
            opinions: BitPlane::new(),
            aux,
        }
    }

    /// A population packing explicitly provided states — the adversarial
    /// entry point, mirroring
    /// [`TypedPopulation::from_states`](crate::population::TypedPopulation::from_states).
    ///
    /// # Panics
    ///
    /// Panics when the protocol is not packable (see
    /// [`BitPopulation::new`]) or when a state does not survive
    /// [`Protocol::pack_state`].
    pub fn from_states(protocol: P, states: &[P::State]) -> Self {
        let mut pop = BitPopulation::new(protocol);
        pop.opinions.reserve(states.len());
        pop.aux.reserve(states.len());
        for state in states {
            let (opinion, aux) = pop.protocol.pack_state(state);
            pop.opinions.push(opinion);
            pop.aux.push(aux);
        }
        pop
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The packed plane layout this container uses.
    pub fn planes(&self) -> StatePlanes {
        self.planes
    }

    /// The packed opinion plane, read-only.
    pub fn opinion_plane(&self) -> &BitPlane {
        &self.opinions
    }

    /// The auxiliary plane, read-only ([`AuxPlane::None`] for
    /// [`StatePlanes::OpinionOnly`] protocols).
    pub fn aux_plane(&self) -> &AuxPlane {
        &self.aux
    }

    /// Agent `idx`'s packed auxiliary value (0 for opinion-only
    /// layouts) — the byte [`Protocol::unpack_state`] receives.
    pub fn aux_value(&self, idx: usize) -> u8 {
        self.aux.get(idx)
    }

    fn unpack(&self, idx: usize) -> P::State {
        self.protocol
            .unpack_state(self.opinions.get(idx), self.aux.get(idx))
    }

    fn repack(&mut self, idx: usize, state: &P::State) {
        let (opinion, aux) = self.protocol.pack_state(state);
        self.opinions.set(idx, opinion);
        self.aux.set(idx, aux);
    }

    /// One shard's job for the parallel rounds: shard index, agent
    /// range, opinion word slice, aux plane view, and (outputs path
    /// only) the output slice.
    fn run_parallel<'a>(
        &'a mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
        mut outputs: Option<&'a mut [Opinion]>,
    ) -> FusedCounters
    where
        P: Sync,
    {
        type ShardJob<'b> = (
            u32,
            std::ops::Range<usize>,
            &'b mut [u64],
            AuxSliceMut<'b>,
            Option<&'b mut [Opinion]>,
        );
        let n = self.opinions.len();
        if let Some(out) = outputs.as_deref() {
            assert_eq!(out.len(), n, "one output slot per agent");
        }
        let shards = plan.shards();
        // Carve the planes into per-shard slices once. The plan's ranges
        // start on 64-agent boundaries (see `ShardPlan::shard_range`),
        // which is a whole-word boundary for every plane width — opinion
        // words, nibble words, and interleaved slice groups alike — so
        // the splits below land exactly between shards and the slices
        // are disjoint, which is what lets them run concurrently.
        let mut jobs: Vec<ShardJob<'_>> = Vec::with_capacity(shards as usize);
        let mut words_rest = self.opinions.words_mut();
        let mut aux_rest = self.aux.slice_mut();
        let mut outputs_rest = outputs.take();
        for s in 0..shards {
            let range = plan.shard_range(n, s);
            if range.is_empty() {
                continue;
            }
            debug_assert!(
                range.start.is_multiple_of(WORD_BITS),
                "shard range {range:?} splits a word"
            );
            let word_count = range.end.div_ceil(WORD_BITS) - range.start / WORD_BITS;
            let (w, w_rest) = words_rest.split_at_mut(word_count);
            words_rest = w_rest;
            let (aux_slice, a_rest) = aux_rest.split_for_agents(range.len());
            aux_rest = a_rest;
            let out_slice = outputs_rest.take().map(|o| {
                let (head, tail) = o.split_at_mut(range.len());
                outputs_rest = Some(tail);
                head
            });
            jobs.push((s, range, w, aux_slice, out_slice));
        }
        let protocol = &self.protocol;
        let run_shard = |(s, range, words, aux, out): ShardJob<'_>| {
            let mut rng = plan.rng_for_shard(s);
            let mut source = factory.shard_source(range.clone());
            step_packed_slice(
                protocol,
                words,
                aux,
                range.len(),
                source.as_mut(),
                ctx,
                &mut rng,
                correct,
                out,
            )
        };
        // Reduce per-shard counters into fixed slots in shard order —
        // exactly the discipline `TypedPopulation::step_fused_parallel`
        // documents, so totals never depend on worker scheduling.
        let workers = (plan.workers() as usize).min(jobs.len());
        let mut totals = FusedCounters::default();
        if workers <= 1 {
            for job in jobs {
                totals += run_shard(job);
            }
        } else {
            let mut groups: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                groups[i % workers].push(job);
            }
            let run_shard = &run_shard;
            let per_shard = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|group| {
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|job| {
                                    let s = job.0;
                                    (s, run_shard(job))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut per_shard = vec![FusedCounters::default(); shards as usize];
                for handle in handles {
                    for (s, c) in handle.join().expect("shard worker panicked") {
                        per_shard[s as usize] = c;
                    }
                }
                per_shard
            });
            for c in per_shard {
                totals += c;
            }
        }
        totals
    }
}

impl<P> Population for BitPopulation<P>
where
    P: Protocol + fmt::Debug + Send + Sync,
{
    fn protocol_name(&self) -> &str {
        self.protocol.name()
    }

    fn samples_per_round(&self) -> u32 {
        self.protocol.samples_per_round()
    }

    fn is_passive(&self) -> bool {
        self.protocol.is_passive()
    }

    fn parallel_eligible(&self) -> bool {
        self.protocol.parallel_eligible()
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        self.protocol.memory_footprint()
    }

    fn len(&self) -> usize {
        self.opinions.len()
    }

    fn reserve(&mut self, additional: usize) {
        self.opinions.reserve(additional);
        self.aux.reserve(additional);
    }

    fn push_agent(&mut self, opinion: Opinion, rng: &mut dyn RngCore) -> Opinion {
        let state = self.protocol.init_state(opinion, rng);
        let output = self.protocol.output(&state);
        let (packed_opinion, packed_aux) = self.protocol.pack_state(&state);
        debug_assert_eq!(packed_opinion, output);
        self.opinions.push(packed_opinion);
        self.aux.push(packed_aux);
        output
    }

    fn corrupt_agent(&mut self, idx: usize, opinion: Opinion, rng: &mut dyn RngCore) {
        // Same protocol draw stream as the typed container, then repack:
        // corruption events stay bit-identical across representations.
        let state = self.protocol.init_state(opinion, rng);
        self.repack(idx, &state);
    }

    fn step_batch(
        &mut self,
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        let n = self.opinions.len();
        assert_eq!(observations.len(), n, "one observation per agent");
        assert_eq!(outputs.len(), n, "one output slot per agent");
        for i in 0..n {
            let mut state = self.unpack(i);
            let new = self.protocol.step(&mut state, &observations[i], ctx, rng);
            self.repack(i, &state);
            outputs[i] = new;
        }
    }

    fn step_fused(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        let len = self.opinions.len();
        let BitPopulation {
            protocol,
            opinions,
            aux,
            ..
        } = self;
        step_packed_slice(
            protocol,
            opinions.words_mut(),
            aux.slice_mut(),
            len,
            source,
            ctx,
            rng,
            correct,
            Some(outputs),
        )
    }

    fn step_fused_parallel(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        self.run_parallel(factory, ctx, plan, correct, Some(outputs))
    }

    fn step_agent(
        &mut self,
        idx: usize,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        let mut state = self.unpack(idx);
        let new = self.protocol.step(&mut state, obs, ctx, rng);
        self.repack(idx, &state);
        new
    }

    fn output_of(&self, idx: usize) -> Opinion {
        self.opinions.get(idx)
    }

    fn decision_of(&self, idx: usize) -> Opinion {
        // Packing is restricted to passive protocols: decision ≡ output
        // ≡ the stored bit.
        self.opinions.get(idx)
    }

    fn count_correct_decisions(&self, correct: Opinion) -> u64 {
        let ones = self.opinions.count_ones();
        if correct.is_one() {
            ones
        } else {
            self.opinions.len() as u64 - ones
        }
    }

    fn write_outputs(&self, out: &mut [Opinion]) {
        assert_eq!(out.len(), self.opinions.len(), "one output slot per agent");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.opinions.get(i);
        }
    }

    fn count_output_ones(&self) -> u64 {
        self.opinions.count_ones()
    }

    fn resident_bytes(&self) -> usize {
        self.opinions.resident_bytes() + self.aux.resident_bytes()
    }

    fn supports_inplace_rounds(&self) -> bool {
        true
    }

    fn step_fused_inplace(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
    ) -> FusedCounters {
        let len = self.opinions.len();
        let BitPopulation {
            protocol,
            opinions,
            aux,
            ..
        } = self;
        step_packed_slice(
            protocol,
            opinions.words_mut(),
            aux.slice_mut(),
            len,
            source,
            ctx,
            rng,
            correct,
            None,
        )
    }

    fn step_fused_parallel_inplace(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
    ) -> FusedCounters {
        self.run_parallel(factory, ctx, plan, correct, None)
    }

    fn write_opinion_words(&self, snapshot: &mut [u64]) {
        snapshot.copy_from_slice(self.opinions.words());
    }
}

impl<P> DynPopulation for BitPopulation<P>
where
    P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    fn clone_box(&self) -> Box<dyn DynPopulation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fet::FetProtocol;
    use crate::population::TypedPopulation;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(0xB17)
    }

    fn filled_pair(
        ell: u32,
        n: usize,
    ) -> (TypedPopulation<FetProtocol>, BitPopulation<FetProtocol>) {
        let proto = FetProtocol::new(ell).unwrap();
        let mut typed = TypedPopulation::new(proto.clone());
        let mut bits = BitPopulation::new(proto);
        let mut rt = rng();
        let mut rb = rng();
        for i in 0..n {
            let opinion = Opinion::from(i % 3 == 0);
            assert_eq!(
                typed.push_agent(opinion, &mut rt),
                bits.push_agent(opinion, &mut rb)
            );
        }
        (typed, bits)
    }

    #[test]
    fn plane_push_get_set_count() {
        let mut plane = BitPlane::new();
        for i in 0..130 {
            plane.push(Opinion::from(i % 5 == 0));
        }
        assert_eq!(plane.len(), 130);
        assert_eq!(plane.words().len(), 3);
        for i in 0..130 {
            assert_eq!(plane.get(i), Opinion::from(i % 5 == 0));
        }
        let scalar = (0..130).filter(|i| i % 5 == 0).count() as u64;
        assert_eq!(plane.count_ones(), scalar);
        plane.set(129, Opinion::One);
        plane.set(0, Opinion::Zero);
        assert_eq!(plane.get(129), Opinion::One);
        assert_eq!(plane.get(0), Opinion::Zero);
        // Trailing bits stay zero: the popcount matches a scalar recount.
        let recount = (0..130).filter(|&i| plane.get(i).is_one()).count() as u64;
        assert_eq!(plane.count_ones(), recount);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn plane_get_bounds_checked() {
        let plane = BitPlane::zeroed(64);
        let _ = plane.get(64);
    }

    #[test]
    fn nibble_plane_push_get_set() {
        let mut plane = NibblePlane::new();
        for i in 0..45 {
            plane.push((i % 16) as u8);
        }
        assert_eq!(plane.len(), 45);
        assert_eq!(plane.words().len(), 3);
        for i in 0..45 {
            assert_eq!(plane.get(i), (i % 16) as u8, "nibble {i}");
        }
        plane.set(44, 9);
        plane.set(0, 15);
        assert_eq!(plane.get(44), 9);
        assert_eq!(plane.get(0), 15);
        // Neighbors survive a set.
        assert_eq!(plane.get(1), 1);
        assert_eq!(plane.get(43), 11);
    }

    #[test]
    fn sliced_plane_push_get_set_all_widths() {
        for bits in 1..=8u8 {
            let max = (1u32 << bits) as usize;
            let mut plane = BitSlicedPlane::new(bits);
            for i in 0..131 {
                plane.push((i % max) as u8);
            }
            assert_eq!(plane.len(), 131);
            assert_eq!(plane.words().len(), 3 * bits as usize);
            for i in 0..131 {
                assert_eq!(plane.get(i), (i % max) as u8, "bits={bits} idx={i}");
            }
            plane.set(130, (max - 1) as u8);
            plane.set(64, 0);
            assert_eq!(plane.get(130), (max - 1) as u8);
            assert_eq!(plane.get(64), 0);
            assert_eq!(plane.get(65), (65 % max) as u8, "bits={bits} neighbor");
        }
    }

    #[test]
    #[should_panic(expected = "out of 1..=8")]
    fn sliced_plane_rejects_wide_values() {
        let _ = BitSlicedPlane::new(9);
    }

    #[test]
    fn aux_plane_layout_selection() {
        assert!(matches!(
            AuxPlane::for_planes(StatePlanes::OpinionOnly),
            AuxPlane::None
        ));
        assert!(matches!(
            AuxPlane::for_planes(StatePlanes::OpinionPlusByte),
            AuxPlane::Bytes(_)
        ));
        assert!(matches!(
            AuxPlane::for_planes(StatePlanes::OpinionPlusPacked { bits: 4 }),
            AuxPlane::Nibbles(_)
        ));
        for bits in [1, 2, 3, 5, 6, 7, 8] {
            assert!(matches!(
                AuxPlane::for_planes(StatePlanes::OpinionPlusPacked { bits }),
                AuxPlane::Sliced(_)
            ));
        }
    }

    #[test]
    fn push_agent_matches_typed_stream() {
        // ℓ = 8 → 4-bit clock → nibble plane; ℓ = 5 → 3-bit sliced
        // plane; ℓ = 200 → byte plane. All three walk the typed stream.
        for ell in [5, 8, 200] {
            let (typed, bits) = filled_pair(ell, 97);
            for i in 0..97 {
                assert_eq!(typed.output_of(i), bits.output_of(i));
                assert_eq!(
                    typed.states()[i],
                    bits.protocol()
                        .unpack_state(bits.opinion_plane().get(i), bits.aux_value(i)),
                    "ell={ell} agent {i} state diverged through pack/unpack"
                );
            }
            assert_eq!(typed.count_output_ones(), bits.count_output_ones());
        }
    }

    #[test]
    fn fused_round_matches_typed_population() {
        use crate::population::Population;
        struct Uniform {
            m: u32,
        }
        impl ObservationSource for Uniform {
            fn next_observation(&mut self, rng: &mut dyn RngCore) -> Observation {
                Observation::new(rng.next_u32() % (self.m + 1), self.m).unwrap()
            }
        }
        for ell in [5, 8, 200] {
            let (mut typed, mut bits) = filled_pair(ell, 77);
            let m = typed.samples_per_round();
            let ctx = RoundContext::new(3);
            let mut rt = rand::rngs::SmallRng::seed_from_u64(42);
            let mut rb = rand::rngs::SmallRng::seed_from_u64(42);
            let mut out_t = vec![Opinion::Zero; 77];
            let mut out_b = vec![Opinion::Zero; 77];
            let ct = typed.step_fused(&mut Uniform { m }, &ctx, &mut rt, Opinion::One, &mut out_t);
            let cb = bits.step_fused(&mut Uniform { m }, &ctx, &mut rb, Opinion::One, &mut out_b);
            assert_eq!(out_t, out_b, "ell={ell}");
            assert_eq!(ct, cb, "ell={ell}");
            // And the in-place variant walks the very same stream.
            let (_, mut bits2) = filled_pair(ell, 77);
            let mut r2 = rand::rngs::SmallRng::seed_from_u64(42);
            let c2 = bits2.step_fused_inplace(&mut Uniform { m }, &ctx, &mut r2, Opinion::One);
            assert_eq!(c2, cb, "ell={ell}");
            for (i, &out) in out_b.iter().enumerate() {
                assert_eq!(bits2.output_of(i), out, "ell={ell}");
            }
        }
    }

    #[test]
    fn correct_decision_popcount_matches_scalar() {
        let (typed, bits) = filled_pair(8, 130);
        for correct in [Opinion::Zero, Opinion::One] {
            assert_eq!(
                typed.count_correct_decisions(correct),
                bits.count_correct_decisions(correct)
            );
        }
    }

    #[test]
    #[should_panic(expected = "declares no packed state layout")]
    fn unpackable_protocol_is_rejected() {
        // ℓ = 300 overflows the byte-valued pack, so FET falls back to
        // Unpacked.
        let _ = BitPopulation::new(FetProtocol::new(300).unwrap());
    }

    #[test]
    fn resident_bytes_counts_packed_planes() {
        // ℓ = 5 → 1-bit opinion + 3-bit sliced clock: 4 bits/agent.
        let (_, bits) = filled_pair(5, 200);
        let want = bits.opinion_plane().resident_bytes();
        assert!(bits.resident_bytes() >= want);
        // Strictly under a byte per agent, far under the typed state.
        assert!(bits.resident_bytes() < 200);
        assert!(bits.resident_bytes() < 200 * std::mem::size_of::<crate::fet::FetState>());
    }
}
