//! Object-safe protocol erasure: run any [`Protocol`] behind one type.
//!
//! [`Protocol`] has an associated `State` type, so `dyn Protocol` does not
//! exist — yet runtime protocol selection (the CLI's `--protocol` flag, the
//! registry in `fet-protocols`, the `Simulation` facade in `fet-sim`) needs
//! exactly that. This module provides the bridge:
//!
//! * [`DynProtocol`] — an object-safe mirror of [`Protocol`] whose per-agent
//!   state is a boxed [`DynState`]. Every `Protocol` implements it through a
//!   blanket impl (state downcast via `Any`).
//! * [`ErasedProtocol`] — a cheaply clonable handle (`Arc<dyn DynProtocol>`)
//!   that implements [`Protocol`] *again*, with `State = Box<dyn DynState>`,
//!   so all engines accept runtime-selected protocols unchanged.
//!
//! The erasure costs one virtual call per agent step plus a per-agent box;
//! the batched entry point ([`Protocol::step_batch`]) still dispatches once
//! per *round* into the underlying typed kernel, so the round loop keeps a
//! single indirect call per agent rather than three.
//!
//! # `ErasedProtocol` vs [`DynPopulation`]: which erasure to use
//!
//! There are two ways to run a runtime-selected protocol, erased at
//! different granularities:
//!
//! | | [`ErasedProtocol`] (per-agent) | [`DynPopulation`] (population) |
//! |---|---|---|
//! | state layout | `n` separately boxed states | one contiguous `Vec<P::State>` |
//! | per-round cost | `O(n)` buffer alloc + 2 clones/agent (boxes are not contiguous, so [`DynProtocol::step_batch_erased`] materializes a typed buffer and writes back) | zero-copy: one virtual dispatch into the typed kernel |
//! | per-agent state access | yes — states are first-class `Box<dyn DynState>` values you can hold, swap, and move between containers | through the population only (indices, not owned values) |
//! | drop-in for `Engine<P>` | yes — implements [`Protocol`] itself | no — engines need a population-aware entry point |
//!
//! **Default to the population container**: every facade/registry run does
//! (`ErasedProtocol::population` is the bridge), and at `n = 1024` the
//! boxed path measured ~25% slower than the typed kernel while the
//! population path is within noise of it. Reach for `ErasedProtocol`'s
//! per-agent states only when code genuinely needs owned, individually
//! boxed states — e.g. adversarial surgery that moves single states across
//! engines, or generic code written against `Protocol` that cannot be made
//! population-aware. The boxed representation also remains reachable as
//! `TypedPopulation<ErasedProtocol>` (erasing twice), which is what keeps
//! old call sites working unchanged.
//!
//! [`DynPopulation`]: crate::population::DynPopulation
//! [`TypedPopulation<ErasedProtocol>`]: crate::population::TypedPopulation

use crate::bitplane::BitPopulation;
use crate::memory::MemoryFootprint;
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::population::{DynPopulation, TypedPopulation};
use crate::protocol::{Protocol, RoundContext, StatePlanes};
use rand::RngCore;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A type-erased per-agent protocol state.
///
/// Blanket-implemented for every `Clone + Debug + Send + 'static` type, so
/// any [`Protocol::State`] qualifies automatically.
pub trait DynState: fmt::Debug + Send {
    /// Clones the state behind the box.
    fn clone_box(&self) -> Box<dyn DynState>;
    /// Upcast for downcasting back to the concrete state type.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for downcasting back to the concrete state type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Clone + fmt::Debug + Send + 'static> DynState for T {
    fn clone_box(&self) -> Box<dyn DynState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Clone for Box<dyn DynState> {
    fn clone(&self) -> Self {
        // Explicit deref: `self.clone_box()` would resolve against the
        // blanket `DynState for Box<dyn DynState>` impl and recurse.
        (**self).clone_box()
    }
}

/// Object-safe mirror of [`Protocol`] over boxed states.
///
/// Obtain one by coercion from any protocol value (`&p`, `Box::new(p)`,
/// `Arc::new(p)`); the blanket impl covers every [`Protocol`]. Use
/// [`ErasedProtocol`] to feed it back into engines.
pub trait DynProtocol: fmt::Debug + Send + Sync {
    /// See [`Protocol::name`].
    fn name_erased(&self) -> &str;
    /// See [`Protocol::samples_per_round`].
    fn samples_per_round_erased(&self) -> u32;
    /// See [`Protocol::init_state`].
    fn init_state_erased(&self, opinion: Opinion, rng: &mut dyn RngCore) -> Box<dyn DynState>;
    /// See [`Protocol::step`].
    fn step_erased(
        &self,
        state: &mut dyn DynState,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion;
    /// See [`Protocol::step_batch`]. Dispatches into the typed batch kernel
    /// once per round.
    fn step_batch_erased(
        &self,
        states: &mut [Box<dyn DynState>],
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    );
    /// See [`Protocol::output`].
    fn output_erased(&self, state: &dyn DynState) -> Opinion;
    /// See [`Protocol::decision`].
    fn decision_erased(&self, state: &dyn DynState) -> Opinion;
    /// See [`Protocol::is_passive`].
    fn is_passive_erased(&self) -> bool;
    /// See [`Protocol::has_fused_kernel`].
    fn has_fused_kernel_erased(&self) -> bool;
    /// See [`Protocol::parallel_eligible`].
    fn parallel_eligible_erased(&self) -> bool;
    /// See [`Protocol::aggregate_ell`].
    fn aggregate_ell_erased(&self) -> Option<u32>;
    /// See [`Protocol::memory_footprint`].
    fn memory_footprint_erased(&self) -> MemoryFootprint;
    /// Creates an empty contiguous population container for this protocol
    /// — the zero-copy alternative to boxing each agent's state (see the
    /// [module docs](self) for the trade-off). The container owns a clone
    /// of the protocol configuration, so the handle and the population can
    /// live independently.
    fn fresh_population_erased(&self) -> Box<dyn DynPopulation>;
    /// See [`Protocol::state_planes`] — the *underlying* protocol's packed
    /// layout (the erased wrapper's own boxed states never pack).
    fn state_planes_erased(&self) -> StatePlanes;
    /// Creates an empty **bit-plane** population container
    /// ([`BitPopulation`]) for this
    /// protocol, or `None` when the protocol does not pack
    /// ([`Protocol::state_planes`] is [`StatePlanes::Unpacked`], or the
    /// protocol is not passive).
    fn fresh_bit_population_erased(&self) -> Option<Box<dyn DynPopulation>>;
}

fn downcast<'a, S: 'static>(state: &'a dyn DynState, name: &str) -> &'a S {
    state
        .as_any()
        .downcast_ref::<S>()
        .unwrap_or_else(|| panic!("state type mismatch: protocol `{name}` handed a foreign state"))
}

fn downcast_mut<'a, S: 'static>(state: &'a mut dyn DynState, name: &str) -> &'a mut S {
    match state.as_any_mut().downcast_mut::<S>() {
        Some(s) => s,
        None => panic!("state type mismatch: protocol `{name}` handed a foreign state"),
    }
}

impl<P> DynProtocol for P
where
    P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    fn name_erased(&self) -> &str {
        Protocol::name(self)
    }

    fn samples_per_round_erased(&self) -> u32 {
        Protocol::samples_per_round(self)
    }

    fn init_state_erased(&self, opinion: Opinion, rng: &mut dyn RngCore) -> Box<dyn DynState> {
        Box::new(self.init_state(opinion, rng))
    }

    fn step_erased(
        &self,
        state: &mut dyn DynState,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        self.step(
            downcast_mut::<P::State>(state, Protocol::name(self)),
            obs,
            ctx,
            rng,
        )
    }

    fn step_batch_erased(
        &self,
        states: &mut [Box<dyn DynState>],
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        // Boxed states are not contiguous, so the typed batch kernel
        // cannot run over them in place. Materialize them into a
        // contiguous buffer, run the kernel, write back: two clones per
        // agent (states are small — FET's is 8 bytes) buy the kernel's
        // hoisted validation and precomputed sampling tables.
        let name = Protocol::name(self);
        let mut typed: Vec<P::State> = states
            .iter()
            .map(|s| downcast::<P::State>(s.as_ref(), name).clone())
            .collect();
        self.step_batch(&mut typed, observations, ctx, rng, outputs);
        for (boxed, fresh) in states.iter_mut().zip(typed) {
            *downcast_mut::<P::State>(boxed.as_mut(), name) = fresh;
        }
    }

    fn output_erased(&self, state: &dyn DynState) -> Opinion {
        self.output(downcast::<P::State>(state, Protocol::name(self)))
    }

    fn decision_erased(&self, state: &dyn DynState) -> Opinion {
        self.decision(downcast::<P::State>(state, Protocol::name(self)))
    }

    fn is_passive_erased(&self) -> bool {
        Protocol::is_passive(self)
    }

    fn has_fused_kernel_erased(&self) -> bool {
        Protocol::has_fused_kernel(self)
    }

    fn parallel_eligible_erased(&self) -> bool {
        Protocol::parallel_eligible(self)
    }

    fn aggregate_ell_erased(&self) -> Option<u32> {
        Protocol::aggregate_ell(self)
    }

    fn memory_footprint_erased(&self) -> MemoryFootprint {
        Protocol::memory_footprint(self)
    }

    fn fresh_population_erased(&self) -> Box<dyn DynPopulation> {
        Box::new(TypedPopulation::new(self.clone()))
    }

    fn state_planes_erased(&self) -> StatePlanes {
        Protocol::state_planes(self)
    }

    fn fresh_bit_population_erased(&self) -> Option<Box<dyn DynPopulation>> {
        if Protocol::state_planes(self) != StatePlanes::Unpacked && Protocol::is_passive(self) {
            Some(Box::new(BitPopulation::new(self.clone())))
        } else {
            None
        }
    }
}

/// A runtime-selected protocol usable wherever a typed [`Protocol`] is:
/// `ErasedProtocol` implements [`Protocol`] with `State = Box<dyn
/// DynState>`, forwarding every call through the erased vtable.
///
/// # Example
///
/// ```
/// use fet_core::erased::ErasedProtocol;
/// use fet_core::fet::FetProtocol;
/// use fet_core::protocol::Protocol;
///
/// let erased = ErasedProtocol::new(FetProtocol::new(16)?);
/// assert_eq!(erased.name(), "fet");
/// assert_eq!(erased.samples_per_round(), 32);
/// assert_eq!(erased.aggregate_ell(), Some(16));
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Clone)]
pub struct ErasedProtocol {
    inner: Arc<dyn DynProtocol>,
}

impl fmt::Debug for ErasedProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ErasedProtocol").field(&self.inner).finish()
    }
}

impl ErasedProtocol {
    /// Erases a typed protocol.
    pub fn new<P>(protocol: P) -> Self
    where
        P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
        P::State: 'static,
    {
        ErasedProtocol {
            inner: Arc::new(protocol),
        }
    }

    /// Wraps an already-erased protocol handle.
    pub fn from_arc(inner: Arc<dyn DynProtocol>) -> Self {
        ErasedProtocol { inner }
    }

    /// The underlying erased protocol.
    pub fn as_dyn(&self) -> &dyn DynProtocol {
        self.inner.as_ref()
    }

    /// Creates an empty contiguous population container for the underlying
    /// *typed* protocol — the zero-copy execution path for runtime-selected
    /// protocols (see the [module docs](self) for the trade-off against
    /// per-agent boxed states).
    ///
    /// The call routes through the erased handle's inner protocol, so the
    /// resulting container holds a `Vec` of the original concrete states —
    /// not boxes — even though `self` is erased.
    pub fn population(&self) -> Box<dyn DynPopulation> {
        self.inner.fresh_population_erased()
    }

    /// The underlying *typed* protocol's packed plane layout. Distinct
    /// from [`Protocol::state_planes`] on `self` (which reports
    /// [`StatePlanes::Unpacked`] — boxed `dyn` states never pack): this
    /// is the layout a bit-plane container would use.
    pub fn packed_planes(&self) -> StatePlanes {
        self.inner.state_planes_erased()
    }

    /// Creates an empty bit-plane population container
    /// ([`BitPopulation`]) for the
    /// underlying typed protocol — 1 bit/agent opinion storage — or
    /// `None` when the protocol does not pack. Engines selecting storage
    /// at runtime call this first and fall back to
    /// [`ErasedProtocol::population`].
    pub fn bit_population(&self) -> Option<Box<dyn DynPopulation>> {
        self.inner.fresh_bit_population_erased()
    }
}

impl Protocol for ErasedProtocol {
    type State = Box<dyn DynState>;

    fn name(&self) -> &str {
        self.inner.name_erased()
    }

    fn samples_per_round(&self) -> u32 {
        self.inner.samples_per_round_erased()
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> Box<dyn DynState> {
        self.inner.init_state_erased(opinion, rng)
    }

    fn step(
        &self,
        state: &mut Box<dyn DynState>,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        self.inner.step_erased(state.as_mut(), obs, ctx, rng)
    }

    fn step_batch(
        &self,
        states: &mut [Box<dyn DynState>],
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        self.inner
            .step_batch_erased(states, observations, ctx, rng, outputs)
    }

    fn output(&self, state: &Box<dyn DynState>) -> Opinion {
        self.inner.output_erased(state.as_ref())
    }

    fn decision(&self, state: &Box<dyn DynState>) -> Opinion {
        self.inner.decision_erased(state.as_ref())
    }

    fn is_passive(&self) -> bool {
        self.inner.is_passive_erased()
    }

    // `step_fused` is intentionally *not* overridden: the trait default
    // loops over `step`, which forwards through the erased vtable into the
    // typed update (cached split tables included), so the boxed fallback
    // walks the same fused stream as every typed representation with O(1)
    // auxiliary memory — at its usual per-agent-dispatch price.

    fn has_fused_kernel(&self) -> bool {
        self.inner.has_fused_kernel_erased()
    }

    fn parallel_eligible(&self) -> bool {
        self.inner.parallel_eligible_erased()
    }

    fn aggregate_ell(&self) -> Option<u32> {
        self.inner.aggregate_ell_erased()
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        self.inner.memory_footprint_erased()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fet::FetProtocol;
    use crate::simple_trend::SimpleTrendProtocol;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(0xE7A5)
    }

    #[test]
    fn erased_fet_steps_like_typed_fet() {
        let typed = FetProtocol::new(8).unwrap();
        let erased = ErasedProtocol::new(typed.clone());
        let mut rng_typed = rng();
        let mut rng_erased = rng();
        let mut st = typed.init_state(Opinion::Zero, &mut rng_typed);
        let mut se = erased.init_state(Opinion::Zero, &mut rng_erased);
        let ctx = RoundContext::new(0);
        for ones in [0u32, 4, 9, 16, 13, 2] {
            let obs = Observation::new(ones, 16).unwrap();
            let a = typed.step(&mut st, &obs, &ctx, &mut rng_typed);
            let b = erased.step(&mut se, &obs, &ctx, &mut rng_erased);
            assert_eq!(a, b);
            assert_eq!(erased.output(&se), typed.output(&st));
        }
        assert_eq!(erased.name(), "fet");
        assert!(erased.is_passive());
        assert_eq!(erased.memory_footprint(), typed.memory_footprint());
    }

    #[test]
    fn erased_batch_matches_erased_loop() {
        let erased = ErasedProtocol::new(SimpleTrendProtocol::new(6).unwrap());
        let ctx = RoundContext::new(0);
        let mut r = rng();
        let mut a: Vec<_> = (0..10)
            .map(|_| erased.init_state(Opinion::Zero, &mut r))
            .collect();
        let mut b: Vec<_> = a.clone();
        let obs: Vec<_> = (0..10)
            .map(|i| Observation::new(i % 7, 6).unwrap())
            .collect();
        let looped: Vec<Opinion> = a
            .iter_mut()
            .zip(&obs)
            .map(|(s, o)| erased.step(s, o, &ctx, &mut r))
            .collect();
        let mut batched = vec![Opinion::Zero; 10];
        erased.step_batch(&mut b, &obs, &ctx, &mut r, &mut batched);
        assert_eq!(looped, batched);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(erased.output(x), erased.output(y));
        }
    }

    #[test]
    #[should_panic(expected = "state type mismatch")]
    fn foreign_state_is_rejected() {
        let fet = ErasedProtocol::new(FetProtocol::new(4).unwrap());
        let other = ErasedProtocol::new(SimpleTrendProtocol::new(4).unwrap());
        let mut r = rng();
        let mut foreign = other.init_state(Opinion::Zero, &mut r);
        let obs = Observation::new(2, 8).unwrap();
        let _ = fet.step(&mut foreign, &obs, &RoundContext::new(0), &mut r);
    }

    #[test]
    fn clones_share_the_protocol() {
        let erased = ErasedProtocol::new(FetProtocol::new(4).unwrap());
        let clone = erased.clone();
        assert_eq!(erased.name(), clone.name());
        assert_eq!(erased.samples_per_round(), clone.samples_per_round());
    }
}
