//! Work-stealing execution over independent jobs.
//!
//! [`shard`](crate::shard) parallelizes *within* one round; this module
//! parallelizes *across* independent pieces of work — replicate batches
//! (`fet_sim::batch`) and episode sweeps (`fet-sweep`) both run on it. The
//! design is the classic three-tier work-stealing scheme, built on `std`
//! only:
//!
//! * a **shared injector** holds work nobody has claimed yet;
//! * each worker owns a **local deque** and pops from its back;
//! * an idle worker first refills from the injector (a small batch, so
//!   the injector lock is cold), then **steals** from the front of a
//!   sibling's deque (half the victim's backlog at once).
//!
//! Determinism contract: the pool schedules *when* jobs run, never *what*
//! they compute — each job is keyed by its index and writes only its own
//! result slot, so the output of [`run_indexed`] is a pure function of the
//! job closure, independent of worker count, stealing order, and OS
//! scheduling. This is the same "only the key derives the stream"
//! discipline the split-RNG sharding in [`shard`](crate::shard) follows.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The shared tail of unclaimed work: a locked queue every worker refills
/// from. Pushes go to the back; claims come off the front in small batches
/// so that job order stays roughly FIFO and the lock stays cold.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Adds one job.
    pub fn push(&self, job: T) {
        self.lock().push_back(job);
    }

    /// Adds a batch of jobs in order.
    pub fn push_all(&self, jobs: impl IntoIterator<Item = T>) {
        self.lock().extend(jobs);
    }

    /// Claims up to `max` jobs off the front.
    pub fn claim(&self, max: usize) -> Vec<T> {
        let mut q = self.lock();
        let take = max.min(q.len());
        q.drain(..take).collect()
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().expect("injector lock poisoned")
    }
}

/// One worker's local job deque. The owner pops from the back (LIFO keeps
/// its cache warm); thieves steal from the front (FIFO hands them the
/// oldest — and for sweeps, the lowest-indexed — backlog).
#[derive(Debug, Default)]
pub struct WorkerDeque<T> {
    jobs: Mutex<VecDeque<T>>,
}

impl<T> WorkerDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        WorkerDeque {
            jobs: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner side: queues freshly claimed jobs at the back.
    pub fn extend(&self, jobs: impl IntoIterator<Item = T>) {
        self.lock().extend(jobs);
    }

    /// Owner side: takes the most recently queued job.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// Thief side: takes roughly half the victim's backlog off the front.
    /// Returns an empty vec when there is nothing to steal.
    pub fn steal_half(&self) -> Vec<T> {
        let mut q = self.lock();
        let take = q.len().div_ceil(2);
        q.drain(..take).collect()
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.jobs.lock().expect("worker deque lock poisoned")
    }
}

/// How many jobs a worker claims from the injector per refill: enough to
/// amortize the lock, few enough that siblings can still steal a fair
/// share of a `jobs`-sized backlog split `workers` ways.
pub fn refill_batch(pending: usize, workers: usize) -> usize {
    (pending / (workers.max(1) * 4)).clamp(1, 64)
}

/// Runs `jobs` index-keyed jobs on up to `workers` threads via
/// injector + per-worker deques + stealing, returning results in index
/// order.
///
/// The closure receives the job index and must derive everything it needs
/// (seeds included) from it; the pool guarantees the result vector is
/// identical for every `workers` value.
///
/// # Panics
///
/// Propagates a panicking job (the scope joins all workers first).
pub fn run_indexed<R, F>(jobs: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1);
    if jobs == 0 {
        return Vec::new();
    }
    if workers == 1 || jobs == 1 {
        return (0..jobs).map(f).collect();
    }
    let injector: Injector<usize> = Injector::new();
    injector.push_all(0..jobs);
    let deques: Vec<WorkerDeque<usize>> = (0..workers).map(|_| WorkerDeque::new()).collect();
    let mut out: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    // Hand each worker a raw pointer-free view of its own output slots:
    // collect per-job slot references up front by splitting the vec into
    // one-element chunks, then let each completed job fill its slot
    // through a lock (results are written once per index; the lock only
    // serializes the cheap slot write, not the job itself).
    let out_slots = Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for me in 0..workers {
            let injector = &injector;
            let deques = &deques;
            let out_slots = &out_slots;
            let f = &f;
            scope.spawn(move || loop {
                let job = next_job(me, injector, deques);
                let Some(index) = job else { break };
                let result = f(index);
                out_slots.lock().expect("result slots lock poisoned")[index] = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect()
}

/// One scheduling decision for worker `me`: local pop, else injector
/// refill, else steal. `None` means the whole job set is exhausted (the
/// closed-world case — [`run_indexed`] — where no new work ever appears).
fn next_job(me: usize, injector: &Injector<usize>, deques: &[WorkerDeque<usize>]) -> Option<usize> {
    loop {
        if let Some(job) = deques[me].pop() {
            return Some(job);
        }
        let batch = injector.claim(refill_batch(injector.len(), deques.len()));
        if !batch.is_empty() {
            deques[me].extend(batch);
            continue;
        }
        // Injector dry: steal the oldest half of the fullest sibling.
        let victim = (0..deques.len())
            .filter(|&w| w != me)
            .max_by_key(|&w| deques[w].len())?;
        let stolen = deques[victim].steal_half();
        if stolen.is_empty() {
            // Everyone's deque is empty and the injector is closed-world:
            // any job still running belongs to another worker.
            return None;
        }
        deques[me].extend(stolen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_indexed_preserves_index_order() {
        let out = run_indexed(257, 4, |i| i * 3);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        let reference = run_indexed(100, 1, |i| (i as u64 * 0x9E37) ^ 0xabc);
        for workers in [2, 3, 7, 16] {
            assert_eq!(
                run_indexed(100, workers, |i| (i as u64 * 0x9E37) ^ 0xabc),
                reference
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(1000, 8, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_and_single_job_sets() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn stealing_moves_backlog_between_deques() {
        let d: WorkerDeque<usize> = WorkerDeque::new();
        d.extend(0..10);
        let stolen = d.steal_half();
        assert_eq!(
            stolen,
            (0..5).collect::<Vec<_>>(),
            "thief takes the front half"
        );
        assert_eq!(d.pop(), Some(9), "owner still pops from the back");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn injector_claims_are_fifo_batches() {
        let inj: Injector<usize> = Injector::new();
        inj.push_all(0..10);
        assert_eq!(inj.claim(4), vec![0, 1, 2, 3]);
        assert_eq!(inj.len(), 6);
        inj.push(10);
        assert_eq!(inj.claim(100), vec![4, 5, 6, 7, 8, 9, 10]);
        assert!(inj.is_empty());
    }

    #[test]
    fn refill_batch_is_bounded() {
        assert_eq!(refill_batch(0, 4), 1);
        assert_eq!(refill_batch(16, 4), 1);
        assert_eq!(refill_batch(1000, 4), 62);
        assert_eq!(refill_batch(1_000_000, 4), 64);
    }
}
