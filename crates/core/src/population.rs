//! Type-erased *population containers*: the zero-copy erased hot path.
//!
//! [`crate::erased::ErasedProtocol`] erases a protocol by boxing every
//! per-agent state (`Vec<Box<dyn DynState>>`). That keeps runtime protocol
//! selection fully general, but the batched round kernel cannot run over a
//! slice of boxes: each round it must materialize a contiguous typed buffer
//! and write it back — an `O(n)` allocation plus two clones per agent, per
//! round, measured at ~25% over the typed kernel at `n = 1024`.
//!
//! This module erases at a coarser granularity — the **population**, not the
//! agent. A [`TypedPopulation<P>`] owns one contiguous `Vec<P::State>` next
//! to its protocol configuration; the object-safe [`Population`] /
//! [`DynPopulation`] traits expose exactly the operations the round loop
//! needs (initialize agents, step the whole slice, read outputs and
//! decisions, account memory, clone for snapshots). A runtime-selected
//! protocol therefore pays **one** virtual dispatch per round — straight
//! into the typed [`Protocol::step_batch`] kernel — with zero per-round
//! allocation or cloning. The states stay tiny and uniform (FET's is 8
//! bytes), exactly the regime the 3-bit/noisy-PULL literature optimizes
//! for, so one contiguous buffer is also the cache-friendly layout.
//!
//! Two traits split the interface by what callers need:
//!
//! * [`Population`] — the round-loop surface, object-safe, with minimal
//!   bounds so fully generic engines can drive any `P: Protocol` without
//!   extra `where` clauses.
//! * [`DynPopulation`] — adds [`DynPopulation::clone_box`] (engines and
//!   trajectory snapshots are `Clone`), and is the type protocol factories
//!   hand out: `Box<dyn DynPopulation>`.
//!
//! The per-agent boxed representation remains available — erasing an
//! [`ErasedProtocol`](crate::erased::ErasedProtocol) *again* yields a
//! `TypedPopulation<ErasedProtocol>` whose "typed" state is `Box<dyn
//! DynState>` — but it is a compatibility fallback, not the hot path. See
//! the [`crate::erased`] module docs for the full trade-off discussion.
//!
//! # Example
//!
//! ```
//! use fet_core::erased::ErasedProtocol;
//! use fet_core::fet::FetProtocol;
//! use fet_core::observation::Observation;
//! use fet_core::opinion::Opinion;
//! use fet_core::population::Population;
//! use fet_core::protocol::RoundContext;
//! use rand::SeedableRng;
//!
//! // A runtime-selected protocol hands out a contiguous population…
//! let erased = ErasedProtocol::new(FetProtocol::new(8)?);
//! let mut population = erased.population();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! for _ in 0..100 {
//!     population.push_agent(Opinion::Zero, &mut rng);
//! }
//!
//! // …and one round is a single dispatch into the typed batch kernel.
//! let obs = vec![Observation::new(12, 16)?; 100];
//! let mut out = vec![Opinion::Zero; 100];
//! population.step_batch(&obs, &RoundContext::new(0), &mut rng, &mut out);
//! assert_eq!(population.len(), 100);
//! # Ok::<(), fet_core::CoreError>(())
//! ```

use crate::memory::MemoryFootprint;
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::protocol::{FusedCounters, ObservationSource, Protocol, RoundContext};
use crate::shard::{ShardPlan, ShardSourceFactory};
use rand::RngCore;
use std::fmt;

/// The object-safe round-loop view of a set of agents running one protocol.
///
/// Agents are indexed `0..len()` in insertion order ([`push_agent`]); a
/// simulation engine keeps sources outside the population and maps indices
/// itself. All batch methods preserve the *sequential RNG semantics* of
/// [`Protocol::step_batch`]: stepping the population in one call draws the
/// same random stream as stepping agent by agent in index order.
///
/// Bounds are deliberately minimal (`Debug + Send + Sync`, no `Clone` —
/// `Sync` because the parallel fused round shares the protocol
/// configuration read-only across shard workers), so that a fully generic
/// engine can drive any `P: Protocol` through [`TypedPopulation`] without
/// inheriting clonability requirements; see [`DynPopulation`] for the
/// clonable, factory-facing extension.
///
/// [`push_agent`]: Population::push_agent
pub trait Population: fmt::Debug + Send {
    /// The protocol's name (see [`Protocol::name`]).
    fn protocol_name(&self) -> &str;

    /// Agents sampled per agent per round (see
    /// [`Protocol::samples_per_round`]).
    fn samples_per_round(&self) -> u32;

    /// `true` when the protocol communicates passively (see
    /// [`Protocol::is_passive`]).
    fn is_passive(&self) -> bool;

    /// `true` when the protocol may run the work-sharded parallel fused
    /// round (see [`Protocol::parallel_eligible`]).
    fn parallel_eligible(&self) -> bool;

    /// Per-agent memory accounting (see [`Protocol::memory_footprint`]).
    fn memory_footprint(&self) -> MemoryFootprint;

    /// Number of agents currently in the population.
    fn len(&self) -> usize;

    /// `true` when the population holds no agents.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-allocates room for `additional` more agents.
    fn reserve(&mut self, additional: usize);

    /// Appends one agent initialized with the given public opinion and
    /// randomized internals (see [`Protocol::init_state`]), returning the
    /// new agent's public output.
    fn push_agent(&mut self, opinion: Opinion, rng: &mut dyn RngCore) -> Opinion;

    /// Executes one round for every agent: agent `i` consumes
    /// `observations[i]` and its new public opinion is written to
    /// `outputs[i]`. One dispatch into the typed
    /// [`Protocol::step_batch`] kernel — no per-round allocation.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ from [`Population::len`], or
    /// when an observation's sample size does not match
    /// [`Population::samples_per_round`].
    fn step_batch(
        &mut self,
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    );

    /// Executes one *fused* round for every agent: observations are drawn
    /// from `source` on demand, each agent's new public opinion is written
    /// to `outputs[i]`, and the round counters come back accumulated — one
    /// dispatch into the typed [`Protocol::step_fused`] kernel, `O(1)`
    /// auxiliary memory (no observation buffer exists anywhere). This is
    /// the mean-field hot path; see the engine docs in `fet-sim` for when
    /// it is selected over [`Population::step_batch`].
    ///
    /// # Panics
    ///
    /// Panics when `outputs.len() != len()`, or when `source` yields an
    /// observation whose sample size does not match
    /// [`Population::samples_per_round`].
    fn step_fused(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters;

    /// Executes one **work-sharded parallel** fused round: the agents are
    /// split into `plan.shards()` balanced contiguous ranges, each shard
    /// runs the fused kernel over its own slice with its own
    /// counter-derived RNG ([`ShardPlan::rng_for_shard`]) and its own
    /// observation source ([`ShardSourceFactory::shard_source`]), and the
    /// per-shard [`FusedCounters`] are reduced into the round totals. Up
    /// to `plan.workers()` scoped OS threads execute the shards.
    ///
    /// # Determinism contract
    ///
    /// The resulting states, outputs, and counters are a pure function of
    /// the agent states, the source configuration, and the plan's
    /// `(stream, round, shard count)` — **never** of `plan.workers()`,
    /// thread scheduling, or how a shard's range is sub-chunked (each
    /// shard is one sequential kernel pass). All representations of one
    /// protocol (typed, boxed, population-erased) walk identical parallel
    /// streams because they all dispatch into the same typed kernel per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics when `outputs.len() != len()`, when a source yields an
    /// observation whose sample size does not match
    /// [`Population::samples_per_round`], or when a shard worker panics.
    fn step_fused_parallel(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters;

    /// Executes one round for the single agent `idx` (the sleepy-agent
    /// fallback, where some agents skip their update entirely).
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    fn step_agent(
        &mut self,
        idx: usize,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion;

    /// Rewrites agent `idx` to a fresh protocol-initial state holding
    /// `opinion`, drawing any initialization randomness from `rng` — the
    /// fault-schedule state-corruption hook. Every container draws the
    /// same stream for the same protocol, so a corruption event is
    /// bit-identical across storage representations.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    fn corrupt_agent(&mut self, idx: usize, opinion: Opinion, rng: &mut dyn RngCore);

    /// The public output of agent `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    fn output_of(&self, idx: usize) -> Opinion;

    /// The decision of agent `idx` (see [`Protocol::decision`]).
    ///
    /// # Panics
    ///
    /// Panics when `idx ≥ len()`.
    fn decision_of(&self, idx: usize) -> Opinion;

    /// Number of agents whose decision equals `correct` — one typed loop
    /// behind a single dispatch, so engines keep their per-round virtual
    /// call count constant.
    fn count_correct_decisions(&self, correct: Opinion) -> u64;

    /// Writes every agent's public output into `out` (index-aligned).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != len()`.
    fn write_outputs(&self, out: &mut [Opinion]);

    /// Number of agents whose public output is `One`. The default walks
    /// [`Population::output_of`]; bit-plane containers answer by popcount.
    fn count_output_ones(&self) -> u64 {
        (0..self.len())
            .filter(|&i| self.output_of(i).is_one())
            .count() as u64
    }

    /// Resident heap bytes of the agent state storage (capacity, not
    /// length — what the allocator actually holds). `0` when the
    /// container does not account for itself.
    fn resident_bytes(&self) -> usize {
        0
    }

    /// `true` when this container supports the *in-place* fused rounds
    /// ([`Population::step_fused_inplace`] /
    /// [`Population::step_fused_parallel_inplace`]) that skip the
    /// engine-side `outputs` buffer entirely. Only bit-plane containers
    /// do: their opinion plane *is* the output store.
    fn supports_inplace_rounds(&self) -> bool {
        false
    }

    /// Like [`Population::step_fused`], but without an `outputs` slice:
    /// the container's own opinion storage is the output store. Only
    /// meaningful when [`Population::supports_inplace_rounds`] is `true`.
    ///
    /// # Panics
    ///
    /// The default panics — byte-addressed containers have no in-place
    /// representation.
    fn step_fused_inplace(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
    ) -> FusedCounters {
        let _ = (source, ctx, rng, correct);
        panic!(
            "population `{}` has no in-place fused round",
            self.protocol_name()
        );
    }

    /// Like [`Population::step_fused_parallel`], but without an `outputs`
    /// slice. The plan's shard ranges must be word-aligned
    /// ([`ShardPlan::shard_range`] guarantees it) so the opinion plane
    /// splits at `u64` boundaries.
    ///
    /// # Panics
    ///
    /// The default panics — byte-addressed containers have no in-place
    /// representation.
    fn step_fused_parallel_inplace(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
    ) -> FusedCounters {
        let _ = (factory, ctx, plan, correct);
        panic!(
            "population `{}` has no in-place fused round",
            self.protocol_name()
        );
    }

    /// Copies the opinion plane word-for-word into `snapshot`, which must
    /// hold exactly `len().div_ceil(64)` words. Only meaningful when
    /// [`Population::supports_inplace_rounds`] is `true`; the default
    /// panics.
    fn write_opinion_words(&self, snapshot: &mut [u64]) {
        let _ = snapshot;
        panic!(
            "population `{}` has no packed opinion plane",
            self.protocol_name()
        );
    }
}

/// A clonable [`Population`] — the type protocol factories hand out.
///
/// Splitting `clone_box` into a subtrait keeps [`Population`] free of
/// `Clone` bounds for fully generic engine code while letting runtime
/// containers (`Box<dyn DynPopulation>`) participate in `Clone` engines and
/// trajectory snapshots.
pub trait DynPopulation: Population {
    /// Clones the population (protocol configuration and all agent states)
    /// behind a box.
    fn clone_box(&self) -> Box<dyn DynPopulation>;
}

impl Clone for Box<dyn DynPopulation> {
    fn clone(&self) -> Self {
        // Explicit deref: resolve against the underlying population, not a
        // (hypothetical) blanket impl on the box itself.
        (**self).clone_box()
    }
}

/// One contiguous `Vec<P::State>` next to its protocol configuration — the
/// canonical [`Population`] implementation.
///
/// This is the representation behind every execution path: typed engines
/// own one directly (monomorphized, zero dispatch), while runtime-selected
/// protocols hold the same struct behind `Box<dyn DynPopulation>` (one
/// dispatch per round). Typed accessors ([`TypedPopulation::states`],
/// [`TypedPopulation::states_mut`], …) remain available for adversarial
/// state surgery.
#[derive(Debug, Clone)]
pub struct TypedPopulation<P: Protocol> {
    protocol: P,
    states: Vec<P::State>,
}

impl<P: Protocol> TypedPopulation<P> {
    /// An empty population running `protocol`.
    pub fn new(protocol: P) -> Self {
        TypedPopulation {
            protocol,
            states: Vec::new(),
        }
    }

    /// A population over explicitly provided states — the adversarial
    /// entry point.
    pub fn from_states(protocol: P, states: Vec<P::State>) -> Self {
        TypedPopulation { protocol, states }
    }

    /// The protocol configuration.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The contiguous agent states, read-only.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Mutable access to the agent states for adversarial surgery. Engine
    /// callers must refresh their cached counters afterwards.
    pub fn states_mut(&mut self) -> &mut [P::State] {
        &mut self.states
    }

    /// Replaces the state of agent `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn set_state(&mut self, idx: usize, state: P::State) {
        self.states[idx] = state;
    }
}

impl<P> Population for TypedPopulation<P>
where
    P: Protocol + fmt::Debug + Send + Sync,
{
    fn protocol_name(&self) -> &str {
        self.protocol.name()
    }

    fn samples_per_round(&self) -> u32 {
        self.protocol.samples_per_round()
    }

    fn is_passive(&self) -> bool {
        self.protocol.is_passive()
    }

    fn parallel_eligible(&self) -> bool {
        self.protocol.parallel_eligible()
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        self.protocol.memory_footprint()
    }

    fn len(&self) -> usize {
        self.states.len()
    }

    fn reserve(&mut self, additional: usize) {
        self.states.reserve(additional);
    }

    fn push_agent(&mut self, opinion: Opinion, rng: &mut dyn RngCore) -> Opinion {
        let state = self.protocol.init_state(opinion, rng);
        let output = self.protocol.output(&state);
        self.states.push(state);
        output
    }

    fn corrupt_agent(&mut self, idx: usize, opinion: Opinion, rng: &mut dyn RngCore) {
        self.states[idx] = self.protocol.init_state(opinion, rng);
    }

    fn step_batch(
        &mut self,
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        self.protocol
            .step_batch(&mut self.states, observations, ctx, rng, outputs);
    }

    fn step_fused(
        &mut self,
        source: &mut dyn ObservationSource,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        self.protocol
            .step_fused(&mut self.states, source, ctx, rng, correct, outputs)
    }

    fn step_fused_parallel(
        &mut self,
        factory: &dyn ShardSourceFactory,
        ctx: &RoundContext,
        plan: &ShardPlan,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        /// One shard's work item: its index, its agent range (so the
        /// factory can build a range-aligned source), and its disjoint
        /// state and output slices.
        type ShardJob<'a, S> = (u32, std::ops::Range<usize>, &'a mut [S], &'a mut [Opinion]);
        let n = self.states.len();
        assert_eq!(outputs.len(), n, "one output slot per agent");
        let shards = plan.shards();
        // Carve the state and output buffers into per-shard slices once;
        // disjointness is what lets the shards run concurrently without
        // any synchronization on the hot path.
        let mut jobs: Vec<ShardJob<'_, P::State>> = Vec::with_capacity(shards as usize);
        let mut states_rest = &mut self.states[..];
        let mut outputs_rest = outputs;
        for s in 0..shards {
            let range = plan.shard_range(n, s);
            let (st, st_rest) = states_rest.split_at_mut(range.len());
            let (out, out_rest) = outputs_rest.split_at_mut(range.len());
            states_rest = st_rest;
            outputs_rest = out_rest;
            if !st.is_empty() {
                jobs.push((s, range, st, out));
            }
        }
        let protocol = &self.protocol;
        let run_shard = |(s, range, st, out): (
            u32,
            std::ops::Range<usize>,
            &mut [P::State],
            &mut [Opinion],
        )| {
            let mut rng = plan.rng_for_shard(s);
            let mut source = factory.shard_source(range);
            protocol.step_fused(st, source.as_mut(), ctx, &mut rng, correct, out)
        };
        // Per-shard counters are accumulated into fixed slots and reduced
        // in shard order, so the totals cannot depend on which worker
        // finished first (u64 sums are order-free anyway; the slots keep
        // the reduction obviously deterministic).
        let workers = (plan.workers() as usize).min(jobs.len());
        let mut totals = FusedCounters::default();
        if workers <= 1 {
            for job in jobs {
                totals += run_shard(job);
            }
        } else {
            // Round-robin shard-to-worker striping; any assignment yields
            // identical results (see the determinism contract), and the
            // striping balances the remainder-carrying early shards
            // across workers.
            let mut groups: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                groups[i % workers].push(job);
            }
            let run_shard = &run_shard;
            let per_shard = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|group| {
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|job| {
                                    let s = job.0;
                                    (s, run_shard(job))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut per_shard = vec![FusedCounters::default(); shards as usize];
                for handle in handles {
                    for (s, c) in handle.join().expect("shard worker panicked") {
                        per_shard[s as usize] = c;
                    }
                }
                per_shard
            });
            for c in per_shard {
                totals += c;
            }
        }
        totals
    }

    fn step_agent(
        &mut self,
        idx: usize,
        obs: &Observation,
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        self.protocol.step(&mut self.states[idx], obs, ctx, rng)
    }

    fn output_of(&self, idx: usize) -> Opinion {
        self.protocol.output(&self.states[idx])
    }

    fn decision_of(&self, idx: usize) -> Opinion {
        self.protocol.decision(&self.states[idx])
    }

    fn count_correct_decisions(&self, correct: Opinion) -> u64 {
        self.states
            .iter()
            .filter(|s| self.protocol.decision(s) == correct)
            .count() as u64
    }

    fn write_outputs(&self, out: &mut [Opinion]) {
        assert_eq!(out.len(), self.states.len(), "one output slot per agent");
        for (slot, state) in out.iter_mut().zip(&self.states) {
            *slot = self.protocol.output(state);
        }
    }

    fn count_output_ones(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| self.protocol.output(s).is_one())
            .count() as u64
    }

    fn resident_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<P::State>()
    }
}

impl<P> DynPopulation for TypedPopulation<P>
where
    P: Protocol + Clone + fmt::Debug + Send + Sync + 'static,
    P::State: 'static,
{
    fn clone_box(&self) -> Box<dyn DynPopulation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erased::ErasedProtocol;
    use crate::fet::FetProtocol;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(0x90B)
    }

    fn filled(n: usize) -> (TypedPopulation<FetProtocol>, rand::rngs::SmallRng) {
        let mut pop = TypedPopulation::new(FetProtocol::new(8).unwrap());
        let mut r = rng();
        pop.reserve(n);
        for _ in 0..n {
            pop.push_agent(Opinion::Zero, &mut r);
        }
        (pop, r)
    }

    #[test]
    fn push_agent_matches_init_state_stream() {
        let proto = FetProtocol::new(8).unwrap();
        let mut r1 = rng();
        let mut r2 = rng();
        let (pop, _) = {
            let mut pop = TypedPopulation::new(proto);
            for _ in 0..5 {
                pop.push_agent(Opinion::One, &mut r1);
            }
            (pop, ())
        };
        let direct: Vec<_> = (0..5)
            .map(|_| {
                FetProtocol::new(8)
                    .unwrap()
                    .init_state(Opinion::One, &mut r2)
            })
            .collect();
        assert_eq!(pop.states(), &direct[..]);
    }

    #[test]
    fn batch_equals_per_agent_loop() {
        let (mut a, mut ra) = filled(16);
        let (mut b, mut rb) = filled(16);
        let ctx = RoundContext::new(0);
        let obs: Vec<_> = (0..16)
            .map(|i| Observation::new(i % 17, 16).unwrap())
            .collect();
        let mut batched = vec![Opinion::Zero; 16];
        a.step_batch(&obs, &ctx, &mut ra, &mut batched);
        let looped: Vec<_> = obs
            .iter()
            .enumerate()
            .map(|(i, o)| b.step_agent(i, o, &ctx, &mut rb))
            .collect();
        assert_eq!(batched, looped);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn counters_and_outputs_agree() {
        let (pop, _) = filled(12);
        let mut out = vec![Opinion::One; 12];
        pop.write_outputs(&mut out);
        let ones = out.iter().filter(|o| o.is_one()).count() as u64;
        assert_eq!(pop.count_correct_decisions(Opinion::One), ones);
        assert_eq!(
            pop.count_correct_decisions(Opinion::Zero),
            12 - ones,
            "FET decisions are its outputs"
        );
        for (i, o) in out.iter().enumerate() {
            assert_eq!(pop.output_of(i), *o);
            assert_eq!(pop.decision_of(i), *o);
        }
    }

    #[test]
    fn clone_box_is_independent() {
        let (pop, mut r) = filled(6);
        let boxed: Box<dyn DynPopulation> = pop.clone_box();
        let mut copy = boxed.clone();
        let obs = vec![Observation::new(16, 16).unwrap(); 6];
        let mut out = vec![Opinion::Zero; 6];
        copy.step_batch(&obs, &RoundContext::new(0), &mut r, &mut out);
        // The original is untouched by stepping the clone.
        let mut orig_out = vec![Opinion::Zero; 6];
        pop.write_outputs(&mut orig_out);
        let mut boxed_out = vec![Opinion::Zero; 6];
        boxed.write_outputs(&mut boxed_out);
        assert_eq!(orig_out, boxed_out);
        assert_eq!(copy.len(), 6);
    }

    /// Draws uniform observations from the shard RNG, so any stream
    /// perturbation shows up in states and outputs.
    struct UniformSourceFactory {
        m: u32,
    }

    struct UniformSource {
        m: u32,
    }

    impl crate::protocol::ObservationSource for UniformSource {
        fn next_observation(&mut self, rng: &mut dyn rand::RngCore) -> Observation {
            Observation::new(rng.next_u32() % (self.m + 1), self.m).unwrap()
        }
    }

    impl crate::shard::ShardSourceFactory for UniformSourceFactory {
        fn shard_source(
            &self,
            _range: std::ops::Range<usize>,
        ) -> Box<dyn crate::protocol::ObservationSource + '_> {
            Box::new(UniformSource { m: self.m })
        }
    }

    #[test]
    fn parallel_fused_is_worker_invariant_and_matches_sequential_shards() {
        let ctx = RoundContext::new(0);
        let m = FetProtocol::new(8).unwrap().samples_per_round();
        let factory = UniformSourceFactory { m };
        for n in [0usize, 1, 5, 97] {
            for shards in [1u32, 2, 3, 7, 16] {
                // Reference: process the shards sequentially, each with its
                // plan-derived RNG and a fresh source — the stream the
                // parallel dispatch must reproduce under any worker count.
                let (mut reference, _) = filled(n);
                let plan1 = crate::shard::ShardPlan::new(shards, 1, 0xDEAD, 9);
                let mut ref_out = vec![Opinion::Zero; n];
                let mut ref_counters = crate::protocol::FusedCounters::default();
                for s in 0..shards {
                    let range = plan1.shard_range(n, s);
                    let mut rng = plan1.rng_for_shard(s);
                    let mut source = UniformSource { m };
                    let c = reference.protocol.clone().step_fused(
                        &mut reference.states[range.clone()],
                        &mut source,
                        &ctx,
                        &mut rng,
                        Opinion::One,
                        &mut ref_out[range],
                    );
                    ref_counters += c;
                }
                for workers in [1u32, 2, 5] {
                    let (mut pop, _) = filled(n);
                    let plan = crate::shard::ShardPlan::new(shards, workers, 0xDEAD, 9);
                    let mut out = vec![Opinion::Zero; n];
                    let counters =
                        pop.step_fused_parallel(&factory, &ctx, &plan, Opinion::One, &mut out);
                    assert_eq!(
                        pop.states(),
                        reference.states(),
                        "n={n} shards={shards} workers={workers}: states diverged"
                    );
                    assert_eq!(out, ref_out, "n={n} shards={shards} workers={workers}");
                    assert_eq!(counters, ref_counters);
                    assert_eq!(
                        counters.ones,
                        out.iter().filter(|o| o.is_one()).count() as u64
                    );
                }
            }
        }
    }

    #[test]
    fn double_erasure_is_the_boxed_fallback() {
        // Erasing an already-erased protocol yields the legacy per-agent
        // boxed representation — supported, just not the hot path.
        let erased = ErasedProtocol::new(FetProtocol::new(4).unwrap());
        let mut pop = TypedPopulation::new(erased);
        let mut r = rng();
        pop.push_agent(Opinion::Zero, &mut r);
        assert_eq!(pop.protocol_name(), "fet");
        assert_eq!(pop.len(), 1);
        let obs = [Observation::new(3, 8).unwrap()];
        let mut out = [Opinion::Zero];
        pop.step_batch(&obs, &RoundContext::new(0), &mut r, &mut out);
    }
}
