//! Parameterized FET variants for design ablations.
//!
//! Protocol 1 makes two specific design choices whose necessity the paper
//! does not isolate:
//!
//! 1. **keep-on-tie** — `count′_t = count″_{t−1} ⇒ Y_{t+1} = Y_t`. The
//!    absorbing consensus depends on it: at unanimity every comparison
//!    ties, and *keeping* is what pins the population.
//! 2. **sample splitting** — comparing a fresh half against a *stored
//!    stale half* rather than two fresh halves of the same round.
//!
//! [`FetVariant`] exposes both choices as parameters so the ablation
//! experiment (E16) can measure what breaks when they change. The paper's
//! FET is `FetVariant::new(ell, TieBreak::Keep, Memory::StaleHalf)`;
//! [`crate::fet::FetProtocol`] remains the canonical implementation (the
//! variant reproduces it bit-for-bit in distribution, which is tested).

use crate::error::CoreError;
use crate::memory::{bits_for_count, MemoryFootprint};
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::protocol::{Protocol, RoundContext};
use fet_stats::hypergeometric::split_sample;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// What to do when the two compared counts are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TieBreak {
    /// Keep the current opinion (the paper's rule; preserves absorption).
    Keep,
    /// Flip a fair coin (destroys the absorbing consensus — agents at
    /// unanimity keep re-randomizing).
    Random,
    /// Always adopt 1 on ties (biased; breaks the 0↔1 symmetry).
    AdoptOne,
    /// Always adopt 0 on ties (biased the other way).
    AdoptZero,
}

impl TieBreak {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            TieBreak::Keep => "keep",
            TieBreak::Random => "random",
            TieBreak::AdoptOne => "adopt-1",
            TieBreak::AdoptZero => "adopt-0",
        }
    }
}

/// Which quantity the fresh count is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Memory {
    /// The stored second half of the *previous* round's sample (the
    /// paper's rule: a genuine trend estimate across rounds).
    StaleHalf,
    /// The second half of the *same* round's sample (memoryless: compares
    /// two i.i.d. counts, so there is no trend signal at all — a control
    /// arm showing that cross-round memory is the essential ingredient).
    FreshHalf,
}

impl Memory {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Memory::StaleHalf => "stale-half",
            Memory::FreshHalf => "fresh-half",
        }
    }
}

/// A parameterized FET-family protocol.
///
/// # Example
///
/// ```
/// use fet_core::variants::{FetVariant, TieBreak, Memory};
/// use fet_core::protocol::Protocol;
///
/// let canonical = FetVariant::new(16, TieBreak::Keep, Memory::StaleHalf)?;
/// assert_eq!(canonical.samples_per_round(), 32);
/// assert!(canonical.is_canonical());
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetVariant {
    ell: u32,
    tie_break: TieBreak,
    memory: Memory,
}

/// State of a [`FetVariant`] agent (same shape as the canonical
/// [`crate::fet::FetState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetVariantState {
    /// Current public opinion.
    pub opinion: Opinion,
    /// Stored count (unused under [`Memory::FreshHalf`] but kept so the
    /// memory footprint comparison is honest).
    pub stored_count: u32,
}

impl FetVariant {
    /// Creates a variant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroSampleSize`] when `ell == 0`.
    pub fn new(ell: u32, tie_break: TieBreak, memory: Memory) -> Result<Self, CoreError> {
        if ell == 0 {
            return Err(CoreError::ZeroSampleSize);
        }
        Ok(FetVariant {
            ell,
            tie_break,
            memory,
        })
    }

    /// The half-sample size `ℓ`.
    pub fn ell(&self) -> u32 {
        self.ell
    }

    /// The tie-breaking rule.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// The memory rule.
    pub fn memory(&self) -> Memory {
        self.memory
    }

    /// `true` when the variant coincides with the paper's Protocol 1.
    pub fn is_canonical(&self) -> bool {
        self.tie_break == TieBreak::Keep && self.memory == Memory::StaleHalf
    }

    /// Human-readable variant id, e.g. `fet[keep/stale-half]`.
    pub fn variant_label(&self) -> String {
        format!("fet[{}/{}]", self.tie_break.label(), self.memory.label())
    }
}

impl Protocol for FetVariant {
    type State = FetVariantState;

    fn name(&self) -> &str {
        "fet-variant"
    }

    fn samples_per_round(&self) -> u32 {
        2 * self.ell
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> FetVariantState {
        let stored = (rng.next_u64() % u64::from(self.ell + 1)) as u32;
        FetVariantState {
            opinion,
            stored_count: stored,
        }
    }

    fn step(
        &self,
        state: &mut FetVariantState,
        obs: &Observation,
        _ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            self.samples_per_round(),
            "fet-variant(ℓ={}) expects {} samples, observation has {}",
            self.ell,
            self.samples_per_round(),
            obs.sample_size()
        );
        let (count_prime, count_second) =
            split_sample(u64::from(obs.ones()), u64::from(self.ell), rng);
        let reference = match self.memory {
            Memory::StaleHalf => u64::from(state.stored_count),
            Memory::FreshHalf => count_second,
        };
        let new_opinion = match count_prime.cmp(&reference) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => match self.tie_break {
                TieBreak::Keep => state.opinion,
                TieBreak::Random => {
                    if rng.next_u64() & 1 == 1 {
                        Opinion::One
                    } else {
                        Opinion::Zero
                    }
                }
                TieBreak::AdoptOne => Opinion::One,
                TieBreak::AdoptZero => Opinion::Zero,
            },
        };
        state.opinion = new_opinion;
        state.stored_count = count_second as u32;
        new_opinion
    }

    fn output(&self, state: &FetVariantState) -> Opinion {
        state.opinion
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        let count_bits = bits_for_count(self.ell);
        match self.memory {
            Memory::StaleHalf => MemoryFootprint::new(1, count_bits, count_bits),
            // Fresh-half needs no persistent count at all.
            Memory::FreshHalf => MemoryFootprint::new(1, 0, 2 * count_bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fet::{FetProtocol, FetState};
    use fet_stats::rng::SeedTree;

    fn ctx() -> RoundContext {
        RoundContext::new(0)
    }

    #[test]
    fn construction_and_labels() {
        assert!(FetVariant::new(0, TieBreak::Keep, Memory::StaleHalf).is_err());
        let v = FetVariant::new(8, TieBreak::Random, Memory::FreshHalf).unwrap();
        assert_eq!(v.variant_label(), "fet[random/fresh-half]");
        assert!(!v.is_canonical());
        assert!(FetVariant::new(8, TieBreak::Keep, Memory::StaleHalf)
            .unwrap()
            .is_canonical());
    }

    #[test]
    fn canonical_variant_matches_fet_in_distribution() {
        // Identical seeds, identical observation streams: the canonical
        // variant and FetProtocol consume randomness identically, so their
        // trajectories coincide exactly.
        let ell = 8u32;
        let variant = FetVariant::new(ell, TieBreak::Keep, Memory::StaleHalf).unwrap();
        let fet = FetProtocol::new(ell).unwrap();
        let mut rng_a = SeedTree::new(42).child("a").rng();
        let mut rng_b = SeedTree::new(42).child("a").rng();
        let mut sa = FetVariantState {
            opinion: Opinion::Zero,
            stored_count: 3,
        };
        let mut sb = FetState {
            opinion: Opinion::Zero,
            prev_count_second_half: 3,
        };
        for ones in [0u32, 5, 9, 16, 12, 3, 8, 8, 1, 15] {
            let obs = Observation::new(ones, 16).unwrap();
            let oa = variant.step(&mut sa, &obs, &ctx(), &mut rng_a);
            let ob = fet.step(&mut sb, &obs, &ctx(), &mut rng_b);
            assert_eq!(oa, ob);
            assert_eq!(sa.stored_count, sb.prev_count_second_half);
        }
    }

    #[test]
    fn random_tie_break_leaves_unanimity() {
        // At unanimity with TieBreak::Random, agents re-randomize: the
        // all-ones configuration is NOT absorbing.
        let v = FetVariant::new(8, TieBreak::Random, Memory::StaleHalf).unwrap();
        let mut rng = SeedTree::new(7).child("rand").rng();
        let mut zeros = 0;
        for _ in 0..200 {
            let mut s = FetVariantState {
                opinion: Opinion::One,
                stored_count: 8,
            };
            let obs = Observation::new(16, 16).unwrap(); // unanimous ones
            if v.step(&mut s, &obs, &ctx(), &mut rng) == Opinion::Zero {
                zeros += 1;
            }
        }
        assert!(
            zeros > 50,
            "random tie-break should flip ~half: {zeros}/200"
        );
    }

    #[test]
    fn adopt_one_tie_break_pins_ones() {
        let v = FetVariant::new(4, TieBreak::AdoptOne, Memory::StaleHalf).unwrap();
        let mut rng = SeedTree::new(8).child("a1").rng();
        let mut s = FetVariantState {
            opinion: Opinion::Zero,
            stored_count: 4,
        };
        let obs = Observation::new(8, 8).unwrap();
        assert_eq!(v.step(&mut s, &obs, &ctx(), &mut rng), Opinion::One);
    }

    #[test]
    fn fresh_half_is_memoryless_in_effect() {
        // Under FreshHalf the comparison uses only this round's halves —
        // the stored count from the previous round must not influence the
        // outcome. Feed identical rng streams and observations with
        // different stored counts: outcomes coincide.
        let v = FetVariant::new(8, TieBreak::Keep, Memory::FreshHalf).unwrap();
        let obs = Observation::new(9, 16).unwrap();
        let mut rng_a = SeedTree::new(9).child("x").rng();
        let mut rng_b = SeedTree::new(9).child("x").rng();
        let mut sa = FetVariantState {
            opinion: Opinion::One,
            stored_count: 0,
        };
        let mut sb = FetVariantState {
            opinion: Opinion::One,
            stored_count: 8,
        };
        for _ in 0..20 {
            let oa = v.step(&mut sa, &obs, &ctx(), &mut rng_a);
            let ob = v.step(&mut sb, &obs, &ctx(), &mut rng_b);
            assert_eq!(oa, ob, "stored count leaked into a fresh-half comparison");
        }
    }

    #[test]
    fn memory_footprints_reflect_the_rule() {
        let stale = FetVariant::new(32, TieBreak::Keep, Memory::StaleHalf).unwrap();
        let fresh = FetVariant::new(32, TieBreak::Keep, Memory::FreshHalf).unwrap();
        assert_eq!(stale.memory_footprint().persistent_bits(), 6);
        assert_eq!(fresh.memory_footprint().persistent_bits(), 0);
    }
}
