//! **Protocol 1 — Follow the Emerging Trend (FET).**
//!
//! The paper's main algorithm, verbatim from §1.3:
//!
//! ```text
//! Input: S_t(J_t)                       // opinions of 2ℓ sampled agents
//! Partition S_t(J_t) into two sets S′_t, S″_t of equal size u.a.r.
//! count′_t ← COUNT(S′_t) ; count″_t ← COUNT(S″_t)
//! if      count′_t > count″_{t−1} then Y_{t+1} ← 1
//! else if count′_t < count″_{t−1} then Y_{t+1} ← 0
//! else                                 Y_{t+1} ← Y_t
//! ```
//!
//! The partition decorrelates consecutive decisions: `count″_{t−1}` is
//! compared against `count′_t` while `count″_t` is reserved for round
//! `t+1`, so `Y_{t+1}` and `Y_{t+2}` are conditionally independent given
//! `(x_t, x_{t+1})` — the property Observation 1 and the whole Markov-chain
//! analysis rest on. (The unpartitioned variant that reuses one count both
//! ways is [`crate::simple_trend::SimpleTrendProtocol`].)
//!
//! ## Implementation note: the partition as a hypergeometric split
//!
//! Under passive communication an agent only ever learns *counts*. A
//! uniformly random partition of the `2ℓ` observed opinions into equal
//! halves sends, conditionally on the total count `c`, exactly
//! `Hypergeometric(2ℓ, c, ℓ)` ones into `S′_t`. Drawing that split from the
//! count is therefore *literally* the protocol's partition step — not an
//! approximation — while keeping the observation interface count-only.

use crate::error::CoreError;
use crate::memory::{bits_for_count, MemoryFootprint};
use crate::observation::Observation;
use crate::opinion::Opinion;
use crate::protocol::{FusedCounters, ObservationSource, Protocol, RoundContext, StatePlanes};
use fet_stats::hypergeometric::SplitTable;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide cache of [`SplitTable`]s keyed by `ℓ`.
///
/// The table is deterministic in `ℓ`, so all `FetProtocol` values with the
/// same `ℓ` share one `Arc`'d table. The lock is taken once per protocol
/// *construction* — never on the step/batch/fused hot paths, which read
/// the `Arc` cached inside the protocol value.
fn split_table(ell: u64) -> Arc<SplitTable> {
    static TABLES: OnceLock<Mutex<HashMap<u64, Arc<SplitTable>>>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = tables.lock().expect("split-table cache poisoned");
    Arc::clone(
        guard
            .entry(ell)
            .or_insert_with(|| Arc::new(SplitTable::new(ell))),
    )
}

/// Configuration of the FET protocol: the half-sample size `ℓ`, plus the
/// shared precomputed partition-split table for that `ℓ`.
///
/// Each agent observes `2ℓ` agents per round. The paper's Theorem 1 takes
/// `ℓ = c·log n` for a sufficiently large constant `c`; use
/// [`FetProtocol::for_population`] to apply that rule.
///
/// Equality, hashing, and serialization consider only `ℓ` — the table is
/// a deterministic function of it, cached at construction so the kernels
/// never touch the process-wide table cache (and its lock) mid-run.
///
/// # Example
///
/// ```
/// use fet_core::fet::FetProtocol;
/// use fet_core::protocol::Protocol;
///
/// let p = FetProtocol::for_population(10_000, 4.0)?;
/// assert_eq!(p.samples_per_round(), 2 * p.ell());
/// # Ok::<(), fet_core::CoreError>(())
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct FetProtocol {
    ell: u32,
    table: Arc<SplitTable>,
}

impl fmt::Debug for FetProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The table is derived data; printing its O(ℓ²) CDF entries would
        // drown every engine debug dump.
        f.debug_struct("FetProtocol")
            .field("ell", &self.ell)
            .finish()
    }
}

impl PartialEq for FetProtocol {
    fn eq(&self, other: &Self) -> bool {
        self.ell == other.ell
    }
}

impl Eq for FetProtocol {}

impl Hash for FetProtocol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.ell.hash(state);
    }
}

/// Per-agent FET state.
///
/// Fields are public so the adversary crate can construct *worst-case*
/// initial states directly (the self-stabilizing setting places internal
/// variables entirely under adversarial control at time 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetState {
    /// Current public opinion `Y_t`.
    pub opinion: Opinion,
    /// `count″_{t−1}`: ones observed in the stored half of the previous
    /// round's sample. In `[0, ℓ]`.
    pub prev_count_second_half: u32,
}

impl FetProtocol {
    /// Creates FET with half-sample size `ell` (total `2·ell` samples per
    /// round).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroSampleSize`] when `ell == 0`.
    pub fn new(ell: u32) -> Result<Self, CoreError> {
        if ell == 0 {
            return Err(CoreError::ZeroSampleSize);
        }
        Ok(FetProtocol {
            ell,
            table: split_table(u64::from(ell)),
        })
    }

    /// Creates FET with the paper's parameterization `ℓ = ⌈c·ln n⌉` for a
    /// population of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPopulation`] when `n < 2` or `c ≤ 0`.
    pub fn for_population(n: u64, c: f64) -> Result<Self, CoreError> {
        if n < 2 {
            return Err(CoreError::InvalidPopulation {
                detail: format!("population must have at least 2 agents, got {n}"),
            });
        }
        if c.is_nan() || c <= 0.0 {
            return Err(CoreError::InvalidPopulation {
                detail: format!("sample constant c must be positive, got {c}"),
            });
        }
        FetProtocol::new(crate::config::ell_for_population(n, c))
    }

    /// The half-sample size `ℓ`.
    pub fn ell(&self) -> u32 {
        self.ell
    }
}

impl Protocol for FetProtocol {
    type State = FetState;

    fn name(&self) -> &str {
        "fet"
    }

    fn samples_per_round(&self) -> u32 {
        2 * self.ell
    }

    fn init_state(&self, opinion: Opinion, rng: &mut dyn RngCore) -> FetState {
        // Self-stabilization: the stored count is arbitrary at time 0.
        // Default initialization draws it uniformly; adversaries construct
        // specific values directly through the public fields.
        let prev = (rng.next_u64() % u64::from(self.ell + 1)) as u32;
        FetState {
            opinion,
            prev_count_second_half: prev,
        }
    }

    fn step(
        &self,
        state: &mut FetState,
        obs: &Observation,
        _ctx: &RoundContext,
        rng: &mut dyn RngCore,
    ) -> Opinion {
        assert_eq!(
            obs.sample_size(),
            self.samples_per_round(),
            "FET(ℓ={}) expects {} samples, observation has {}",
            self.ell,
            self.samples_per_round(),
            obs.sample_size()
        );
        // Partition the 2ℓ-sample uniformly into S′ and S″ (hypergeometric
        // split of the observed count; see module docs). The cached table
        // is stream-compatible with `split_sample`, so this draws exactly
        // what the sequential sampler would.
        let (count_prime, count_second) = self.table.split(u64::from(obs.ones()), rng);
        let stale = u64::from(state.prev_count_second_half);
        let new_opinion = match count_prime.cmp(&stale) {
            std::cmp::Ordering::Greater => Opinion::One,
            std::cmp::Ordering::Less => Opinion::Zero,
            std::cmp::Ordering::Equal => state.opinion,
        };
        state.opinion = new_opinion;
        state.prev_count_second_half = count_second as u32;
        new_opinion
    }

    fn step_batch(
        &self,
        states: &mut [FetState],
        observations: &[Observation],
        ctx: &RoundContext,
        rng: &mut dyn RngCore,
        outputs: &mut [Opinion],
    ) {
        assert_eq!(
            states.len(),
            observations.len(),
            "one observation per agent"
        );
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        let m = self.samples_per_round();
        if let Some(bad) = observations.iter().find(|o| o.sample_size() != m) {
            panic!(
                "FET(ℓ={}) expects {} samples, observation has {}",
                self.ell,
                m,
                bad.sample_size()
            );
        }
        // Same decision rule as `step`, with the sample-size validation
        // hoisted out of the loop and the state updates running straight
        // over the contiguous slice. The partition split runs off the
        // inverse-CDF table cached at construction — stream-compatible
        // with `split_sample`, so batch size never changes the draws.
        for ((state, obs), out) in states.iter_mut().zip(observations).zip(outputs.iter_mut()) {
            let ones = u64::from(obs.ones());
            let (count_prime, count_second) = self.table.split(ones, rng);
            let stale = u64::from(state.prev_count_second_half);
            let new_opinion = match count_prime.cmp(&stale) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => state.opinion,
            };
            state.opinion = new_opinion;
            state.prev_count_second_half = count_second as u32;
            *out = new_opinion;
        }
        let _ = ctx;
    }

    fn step_fused(
        &self,
        states: &mut [FetState],
        source: &mut dyn ObservationSource,
        _ctx: &RoundContext,
        rng: &mut dyn RngCore,
        correct: Opinion,
        outputs: &mut [Opinion],
    ) -> FusedCounters {
        assert_eq!(states.len(), outputs.len(), "one output slot per agent");
        let m = self.samples_per_round();
        // One pass, O(1) auxiliary memory: draw the observation, split it
        // through the cached table, decide, write the output, count — no
        // observation or scratch buffers anywhere. Stream-identical to the
        // default per-`step` loop because `step` draws through the same
        // table with the same per-agent interleaving.
        let mut counters = FusedCounters::default();
        for (state, out) in states.iter_mut().zip(outputs.iter_mut()) {
            let obs = source.next_observation(rng);
            assert_eq!(
                obs.sample_size(),
                m,
                "FET(ℓ={}) expects {} samples, observation has {}",
                self.ell,
                m,
                obs.sample_size()
            );
            let (count_prime, count_second) = self.table.split(u64::from(obs.ones()), rng);
            let stale = u64::from(state.prev_count_second_half);
            let new_opinion = match count_prime.cmp(&stale) {
                std::cmp::Ordering::Greater => Opinion::One,
                std::cmp::Ordering::Less => Opinion::Zero,
                std::cmp::Ordering::Equal => state.opinion,
            };
            state.opinion = new_opinion;
            state.prev_count_second_half = count_second as u32;
            *out = new_opinion;
            counters.ones += u64::from(new_opinion.is_one());
            counters.correct += u64::from(new_opinion == correct);
        }
        counters
    }

    fn has_fused_kernel(&self) -> bool {
        true
    }

    fn output(&self, state: &FetState) -> Opinion {
        state.opinion
    }

    fn aggregate_ell(&self) -> Option<u32> {
        Some(self.ell)
    }

    fn memory_footprint(&self) -> MemoryFootprint {
        // Persisted between rounds: count″ ∈ [0, ℓ]. Within a round the
        // agent also holds the fresh count′ ∈ [0, ℓ].
        let count_bits = bits_for_count(self.ell);
        MemoryFootprint::new(1, count_bits, count_bits)
    }

    fn state_planes(&self) -> StatePlanes {
        // The stored count″ ∈ [0, ℓ] packs to ⌈log₂(ℓ+1)⌉ bits per agent.
        // At exactly 8 bits (ℓ ∈ [128, 255]) the direct byte plane is the
        // same memory with cheaper addressing, so it stays the 8-bit fast
        // path; clocks past a byte fall back to typed storage.
        let bits = bits_for_count(self.ell);
        if bits < 8 {
            StatePlanes::OpinionPlusPacked { bits: bits as u8 }
        } else if self.ell <= u32::from(u8::MAX) {
            StatePlanes::OpinionPlusByte
        } else {
            StatePlanes::Unpacked
        }
    }

    fn pack_state(&self, state: &FetState) -> (Opinion, u8) {
        debug_assert!(
            self.ell <= u32::from(u8::MAX) && state.prev_count_second_half <= self.ell,
            "FET state {state:?} does not fit the byte plane (ell = {})",
            self.ell
        );
        (state.opinion, state.prev_count_second_half as u8)
    }

    fn unpack_state(&self, opinion: Opinion, aux: u8) -> FetState {
        FetState {
            opinion,
            prev_count_second_half: u32::from(aux),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_stats::rng::SeedTree;

    fn rng(label: &str) -> rand::rngs::SmallRng {
        SeedTree::new(0xFE7).child(label).rng()
    }

    fn ctx() -> RoundContext {
        RoundContext::new(0)
    }

    #[test]
    fn construction_validates() {
        assert!(FetProtocol::new(0).is_err());
        assert!(FetProtocol::new(1).is_ok());
        assert!(FetProtocol::for_population(1, 4.0).is_err());
        assert!(FetProtocol::for_population(100, 0.0).is_err());
        let p = FetProtocol::for_population(1 << 16, 4.0).unwrap();
        // ℓ = ⌈4 · ln 2^16⌉ = ⌈44.36⌉ = 45.
        assert_eq!(p.ell(), 45);
    }

    #[test]
    fn rising_trend_adopts_one() {
        let p = FetProtocol::new(8).unwrap();
        let mut rng = rng("rise");
        let mut s = FetState {
            opinion: Opinion::Zero,
            prev_count_second_half: 0,
        };
        // All 16 samples are ones: count′ = 8 > 0 = count″_{t−1}.
        let obs = Observation::new(16, 16).unwrap();
        let out = p.step(&mut s, &obs, &ctx(), &mut rng);
        assert_eq!(out, Opinion::One);
        assert_eq!(s.prev_count_second_half, 8);
    }

    #[test]
    fn falling_trend_adopts_zero() {
        let p = FetProtocol::new(8).unwrap();
        let mut rng = rng("fall");
        let mut s = FetState {
            opinion: Opinion::One,
            prev_count_second_half: 8,
        };
        // All-zero sample: count′ = 0 < 8.
        let obs = Observation::new(0, 16).unwrap();
        let out = p.step(&mut s, &obs, &ctx(), &mut rng);
        assert_eq!(out, Opinion::Zero);
        assert_eq!(s.prev_count_second_half, 0);
    }

    #[test]
    fn tie_keeps_current_opinion() {
        let p = FetProtocol::new(4).unwrap();
        let mut rng = rng("tie");
        for keep in [Opinion::Zero, Opinion::One] {
            // Unanimous sample forces count′ = 4; stale count equals it.
            let mut s = FetState {
                opinion: keep,
                prev_count_second_half: 4,
            };
            let obs = Observation::new(8, 8).unwrap();
            let out = p.step(&mut s, &obs, &ctx(), &mut rng);
            assert_eq!(out, keep, "tie must keep Y_t");
        }
    }

    #[test]
    fn unanimous_zero_population_stays_zero() {
        // From (x_t, x_{t+1}) = (0, 0) the only non-absorbing escape is the
        // source; a non-source agent seeing only zeros with stale count 0
        // ties and keeps its opinion.
        let p = FetProtocol::new(8).unwrap();
        let mut rng = rng("stay");
        let mut s = FetState {
            opinion: Opinion::Zero,
            prev_count_second_half: 0,
        };
        for _ in 0..50 {
            let out = p.step(&mut s, &Observation::new(0, 16).unwrap(), &ctx(), &mut rng);
            assert_eq!(out, Opinion::Zero);
        }
    }

    #[test]
    fn partition_split_preserves_total() {
        let p = FetProtocol::new(16).unwrap();
        let mut rng = rng("split");
        let mut s = p.init_state(Opinion::Zero, &mut rng);
        for ones in [0u32, 5, 16, 27, 32] {
            let obs = Observation::new(ones, 32).unwrap();
            let before = s;
            p.step(&mut s, &obs, &ctx(), &mut rng);
            // count″ is at most min(ones, ℓ) and at least ones − ℓ.
            assert!(s.prev_count_second_half <= ones.min(16));
            assert!(u64::from(s.prev_count_second_half) >= u64::from(ones.saturating_sub(16)));
            let _ = before;
        }
    }

    #[test]
    #[should_panic(expected = "expects 16 samples")]
    fn wrong_sample_size_panics() {
        let p = FetProtocol::new(8).unwrap();
        let mut rng = rng("panic");
        let mut s = p.init_state(Opinion::Zero, &mut rng);
        let obs = Observation::new(3, 8).unwrap();
        let _ = p.step(&mut s, &obs, &ctx(), &mut rng);
    }

    #[test]
    fn init_state_prev_count_in_range() {
        let p = FetProtocol::new(10).unwrap();
        let mut rng = rng("init");
        for _ in 0..200 {
            let s = p.init_state(Opinion::One, &mut rng);
            assert!(s.prev_count_second_half <= 10);
            assert_eq!(s.opinion, Opinion::One);
        }
    }

    #[test]
    fn memory_matches_theorem1_accounting() {
        // ℓ = 32: counts in [0, 32] need 6 bits; 1 output + 6 persistent.
        let p = FetProtocol::new(32).unwrap();
        let m = p.memory_footprint();
        assert_eq!(m.output_bits(), 1);
        assert_eq!(m.persistent_bits(), 6);
        assert_eq!(m.between_rounds_bits(), 7);
    }

    #[test]
    fn protocol_is_passive() {
        let p = FetProtocol::new(4).unwrap();
        assert!(p.is_passive());
        let mut rng = rng("passive");
        let s = p.init_state(Opinion::One, &mut rng);
        assert_eq!(p.decision(&s), p.output(&s));
    }

    #[test]
    fn step_batch_matches_sequential_steps_bit_for_bit() {
        // The batch kernel must preserve the sequential RNG semantics: the
        // same seed must produce identical states and outputs either way.
        let p = FetProtocol::new(8).unwrap();
        let m = p.samples_per_round();
        let ctx = ctx();
        let mut init_rng = rng("batch-init");
        let mut states_loop: Vec<FetState> = (0..64)
            .map(|i| {
                p.init_state(
                    if i % 2 == 0 {
                        Opinion::Zero
                    } else {
                        Opinion::One
                    },
                    &mut init_rng,
                )
            })
            .collect();
        let mut states_batch = states_loop.clone();
        let observations: Vec<Observation> = (0..64)
            .map(|i| Observation::new((i * 7) % (m + 1), m).unwrap())
            .collect();
        let mut rng_loop = rng("batch-stream");
        let mut rng_batch = rng("batch-stream");
        let outputs_loop: Vec<Opinion> = states_loop
            .iter_mut()
            .zip(&observations)
            .map(|(s, o)| p.step(s, o, &ctx, &mut rng_loop))
            .collect();
        let mut outputs_batch = vec![Opinion::Zero; 64];
        p.step_batch(
            &mut states_batch,
            &observations,
            &ctx,
            &mut rng_batch,
            &mut outputs_batch,
        );
        assert_eq!(states_loop, states_batch);
        assert_eq!(outputs_loop, outputs_batch);
    }

    #[test]
    fn aggregate_ell_exposed() {
        assert_eq!(FetProtocol::new(12).unwrap().aggregate_ell(), Some(12));
    }

    /// Replays a fixed observation sequence, consuming no RNG itself.
    struct SliceSource<'a> {
        obs: std::slice::Iter<'a, Observation>,
    }

    impl ObservationSource for SliceSource<'_> {
        fn next_observation(&mut self, _rng: &mut dyn RngCore) -> Observation {
            *self.obs.next().expect("one observation per agent")
        }
    }

    #[test]
    fn step_fused_matches_sequential_steps_bit_for_bit() {
        // The specialized fused kernel must stay stream-identical to the
        // default per-`step` loop: same states, same outputs, same RNG
        // consumption, and counters that match a recount.
        let p = FetProtocol::new(8).unwrap();
        let m = p.samples_per_round();
        let ctx = ctx();
        let mut init_rng = rng("fused-init");
        let mut states_loop: Vec<FetState> = (0..48)
            .map(|i| {
                p.init_state(
                    if i % 3 == 0 {
                        Opinion::One
                    } else {
                        Opinion::Zero
                    },
                    &mut init_rng,
                )
            })
            .collect();
        let mut states_fused = states_loop.clone();
        let observations: Vec<Observation> = (0..48)
            .map(|i| Observation::new((i * 5) % (m + 1), m).unwrap())
            .collect();
        let mut rng_loop = rng("fused-stream");
        let mut rng_fused = rng("fused-stream");
        let outputs_loop: Vec<Opinion> = states_loop
            .iter_mut()
            .zip(&observations)
            .map(|(s, o)| p.step(s, o, &ctx, &mut rng_loop))
            .collect();
        let mut outputs_fused = vec![Opinion::Zero; 48];
        let counters = p.step_fused(
            &mut states_fused,
            &mut SliceSource {
                obs: observations.iter(),
            },
            &ctx,
            &mut rng_fused,
            Opinion::One,
            &mut outputs_fused,
        );
        assert_eq!(states_loop, states_fused);
        assert_eq!(outputs_loop, outputs_fused);
        assert_eq!(
            counters.ones,
            outputs_loop.iter().filter(|o| o.is_one()).count() as u64
        );
        assert_eq!(counters.correct, counters.ones, "correct is One here");
        // Both paths must have consumed the same stream.
        assert_eq!(rng_loop.next_u64(), rng_fused.next_u64());
        assert!(p.has_fused_kernel());
    }

    #[test]
    #[should_panic(expected = "expects 16 samples")]
    fn step_batch_rejects_wrong_sample_size() {
        let p = FetProtocol::new(8).unwrap();
        let mut rng = rng("batch-panic");
        let mut states = vec![p.init_state(Opinion::Zero, &mut rng)];
        let obs = vec![Observation::new(3, 8).unwrap()];
        let mut out = vec![Opinion::Zero];
        p.step_batch(&mut states, &obs, &ctx(), &mut rng, &mut out);
    }

    #[test]
    fn zero_one_symmetry_in_distribution() {
        // Relabeling opinions 0↔1 (state and observation mirrored) must
        // mirror the outcome *distribution*: P(Y=1 | original) should match
        // P(Y=0 | mirrored) up to Monte-Carlo error.
        let p = FetProtocol::new(6).unwrap();
        let mut rng = rng("sym");
        let obs = Observation::new(9, 12).unwrap();
        let reps = 60_000;
        let mut ones_a = 0u32;
        let mut zeros_b = 0u32;
        for _ in 0..reps {
            let mut s_a = FetState {
                opinion: Opinion::Zero,
                prev_count_second_half: 3,
            };
            let mut s_b = FetState {
                opinion: Opinion::One,
                prev_count_second_half: 6 - 3,
            };
            if p.step(&mut s_a, &obs, &ctx(), &mut rng) == Opinion::One {
                ones_a += 1;
            }
            if p.step(&mut s_b, &obs.relabeled(), &ctx(), &mut rng) == Opinion::Zero {
                zeros_b += 1;
            }
        }
        let fa = f64::from(ones_a) / f64::from(reps);
        let fb = f64::from(zeros_b) / f64::from(reps);
        assert!((fa - fb).abs() < 0.01, "symmetry violated: {fa} vs {fb}");
    }
}
